#!/usr/bin/env bash
# Repository CI: formatting, lints, the tier-1 test suite, and a traced
# ping-pong smoke test proving the observability path works end to end.
#
#   ./ci.sh          # everything
#   ./ci.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (default features)"
cargo clippy --workspace -- -D warnings

step "cargo clippy (trace feature)"
cargo clippy --workspace --features trace -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test (tier-1, default features)"
cargo test --workspace -q

step "cargo test (trace feature)"
cargo test --workspace -q --features trace

step "cargo test (lossy suite)"
# Chaos stage: the substrate robustness suite (seeded fault injection,
# vanished-peer detection) in both build modes.
cargo test -q -p sockets-emp --test lossy
cargo test -q -p sockets-emp --test lossy --features sockets-emp/trace

step "event-loop webserver smoke"
# Readiness stage: one single-process poll()-driven server, 32 concurrent
# clients, byte-exact responses asserted inside every client — on both
# stacks, in both build modes.
cargo test -q -p emp-apps --test event_loop
cargo test -q -p emp-apps --test event_loop --features emp-apps/trace

step "completion-smoke"
# Completion-model stage: the SQ/CQ ring servers (webserver + kvstore +
# raw echo) serve 32 concurrent clients byte-exact on both stacks, in
# both build modes; `ring_reads_avoid_copies_on_the_substrate` asserts
# `copies_avoided > 0` on the ring read path (registered buffers
# completing directly from NIC slots). Ring-depth gauges themselves are
# checked by the empstat self-check below (`ring.*` series required).
cargo test -q -p emp-apps --test completion_model
cargo test -q -p emp-apps --test completion_model --features emp-apps/trace

step "async-smoke"
# Async-model stage: straight-line async/await handlers on the
# deterministic sim-driven executor serve the 32-connection webserver and
# kvstore workloads byte-exact on both stacks, in both build modes. The
# suite also pins the contracts the futures stand on: same-seed runs are
# byte-identical (`deterministic_text` equality, `exec.*` telemetry
# included), a ring-op future dropped mid-read leaks no registered
# buffer, and the readiness layer's check-then-arm survives spurious
# wakes, interest changes, and registration after readiness fired.
cargo test -q -p emp-apps --test async_model
cargo test -q -p emp-apps --test async_model --features emp-apps/trace

step "traced ping-pong smoke"
# Must print a latency budget and a non-empty Chrome trace.
out=$(cargo run -q --release -p emp-bench --bin figures --features trace -- --trace)
echo "$out"
echo "$out" | grep -q "latency breakdown over" \
    || { echo "FAIL: no breakdown report in traced run"; exit 1; }
events=$(echo "$out" | sed -n 's/^(\([0-9]\+\) events.*/\1/p')
[[ -n "$events" && "$events" -gt 0 ]] \
    || { echo "FAIL: traced run recorded no events"; exit 1; }
[[ -s target/figures/pingpong_trace.json ]] \
    || { echo "FAIL: chrome trace file missing or empty"; exit 1; }
echo "$out" | grep -q "fault counters: wire_drops=" \
    || { echo "FAIL: no fault-counter report in traced run"; exit 1; }

step "data-path fast-path perf smoke"
# Perf stage: the two fast-path figures must show coalescing collapsing
# the 64-byte substrate message count (and with it a bandwidth win) and
# direct delivery actually skipping temp-buffer copies — in the default
# build and, because trace hooks ride the same code paths, the traced one.
perf_smoke() {
    local features=() label="$1"
    [[ "$label" == trace ]] && features=(--features emp-bench/trace)
    local out
    out=$(cargo run -q --release -p emp-bench --bin figures "${features[@]}" \
        -- --quick small-message-throughput copy-avoidance)
    echo "$out" | grep -E '^(small-message-throughput|copy-avoidance):'
    echo "$out" | awk -v label="$label" '
        /^small-message-throughput: 64B/ {
            split($0, f); smt = 1
            for (i in f) {
                if (f[i] ~ /^coalesce_off=/) { sub(/.*=/, "", f[i]); off = f[i] + 0 }
                if (f[i] ~ /^coalesce_on=/)  { sub(/.*=/, "", f[i]); on  = f[i] + 0 }
            }
            if (!(on > 0 && on < off)) {
                printf "FAIL(%s): coalescing did not cut 64B msgs_sent (off=%d on=%d)\n", label, off, on
                bad = 1
            }
        }
        /^copy-avoidance:/ {
            ca = 1
            for (i = 1; i <= NF; i++) {
                if ($i ~ /^copies_avoided=/) { v = $i; sub(/.*=/, "", v); avoided += v + 0 }
                if ($i ~ /^bytes_direct=/)   { v = $i; sub(/.*=/, "", v); direct += v + 0 }
                if ($i ~ /^bytes_received=/) { v = $i; sub(/.*=/, "", v); recvd += v + 0 }
            }
        }
        END {
            if (!smt) { printf "FAIL(%s): no 64B small-message summary line\n", label; bad = 1 }
            if (!ca)  { printf "FAIL(%s): no copy-avoidance summary lines\n", label; bad = 1 }
            if (ca && !(avoided > 0)) { printf "FAIL(%s): copies_avoided == 0\n", label; bad = 1 }
            if (ca && direct != recvd) {
                printf "FAIL(%s): posted-reader sweep still copied %d bytes\n", label, recvd - direct
                bad = 1
            }
            exit bad
        }' || { echo "FAIL: perf smoke ($label build)"; exit 1; }
}
perf_smoke default
perf_smoke trace

step "telemetry smoke (empstat)"
# Observability stage: the always-on stats registry must fill with real
# data — non-zero latency histograms and sampled time series — in the
# default build and the traced one, and the JSON export must parse.
mkdir -p target/figures
telemetry_smoke() {
    local features=() label="$1"
    [[ "$label" == trace ]] && features=(--features emp-bench/trace)
    local err
    err=$(cargo run -q --release -p emp-bench --bin empstat "${features[@]}" \
        -- --json 2>&1 >target/figures/empstat.json) \
        || { echo "FAIL: empstat self-check ($label build)"; echo "$err"; exit 1; }
    echo "$err" | grep -q "empstat self-check ok" \
        || { echo "FAIL($label): no self-check line from empstat"; exit 1; }
    grep -q '"app.rtt_ns"' target/figures/empstat.json \
        || { echo "FAIL($label): empstat json missing rtt histogram"; exit 1; }
    echo "empstat($label): ${err##*$'\n'}"
}
telemetry_smoke default
telemetry_smoke trace

step "telemetry overhead budget"
# The always-on instrumentation must cost under 2% of a ping-pong run;
# empstat --overhead exits non-zero past the budget.
cargo run -q --release -p emp-bench --bin empstat -- --overhead \
    || { echo "FAIL: telemetry overhead above budget"; exit 1; }

step "overload smoke (connect storm + slowloris)"
# Robustness stage: a past-saturation connect storm with slowloris on
# both stacks, in both build modes. empstat --overload exits non-zero
# unless admission control refused connections while real clients were
# still served (refused > 0 && goodput > 0), the refusals are visible
# as telemetry counters, the idle reaper removed the slowloris
# connections, and no connections or listeners leaked. Registered
# ring buffers are covered by the telemetry smoke above: its
# self-check fails if any ring.* gauge reads non-zero after drain.
overload_smoke() {
    local features=() label="$1"
    [[ "$label" == trace ]] && features=(--features emp-bench/trace)
    local out
    out=$(cargo run -q --release -p emp-bench --bin empstat "${features[@]}" -- --overload) \
        || { echo "FAIL: overload smoke ($label build)"; exit 1; }
    echo "$out" | sed "s/^/empstat($label): /"
    echo "$out" | grep -q "overload smoke ok" \
        || { echo "FAIL($label): no overload-smoke ok line"; exit 1; }
}
overload_smoke default
overload_smoke trace

step "bench regression gate"
# Regenerate the committed baseline figures with the same quick profile
# and compare goodput point-by-point (35% tolerance), plus hard
# invariants: coalescing still collapses 64B message counts and direct
# delivery still avoids every copy.
cargo run -q --release -p emp-bench --bin figures -- --quick \
    --json target/figures/fresh.json \
    fig11 fig13b small-message-throughput copy-avoidance >/dev/null
cargo run -q --release -p emp-bench --bin regress -- \
    --baseline BENCH_5.json --fresh target/figures/fresh.json \
    || { echo "FAIL: bench regression gate"; exit 1; }

printf '\nci.sh: all checks passed\n'
