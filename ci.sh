#!/usr/bin/env bash
# Repository CI: formatting, lints, the tier-1 test suite, and a traced
# ping-pong smoke test proving the observability path works end to end.
#
#   ./ci.sh          # everything
#   ./ci.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (default features)"
cargo clippy --workspace -- -D warnings

step "cargo clippy (trace feature)"
cargo clippy --workspace --features trace -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test (tier-1, default features)"
cargo test --workspace -q

step "cargo test (trace feature)"
cargo test --workspace -q --features trace

step "cargo test (lossy suite)"
# Chaos stage: the substrate robustness suite (seeded fault injection,
# vanished-peer detection) in both build modes.
cargo test -q -p sockets-emp --test lossy
cargo test -q -p sockets-emp --test lossy --features sockets-emp/trace

step "event-loop webserver smoke"
# Readiness stage: one single-process poll()-driven server, 32 concurrent
# clients, byte-exact responses asserted inside every client — on both
# stacks, in both build modes.
cargo test -q -p emp-apps --test event_loop
cargo test -q -p emp-apps --test event_loop --features emp-apps/trace

step "traced ping-pong smoke"
# Must print a latency budget and a non-empty Chrome trace.
out=$(cargo run -q --release -p emp-bench --bin figures --features trace -- --trace)
echo "$out"
echo "$out" | grep -q "latency breakdown over" \
    || { echo "FAIL: no breakdown report in traced run"; exit 1; }
events=$(echo "$out" | sed -n 's/^(\([0-9]\+\) events.*/\1/p')
[[ -n "$events" && "$events" -gt 0 ]] \
    || { echo "FAIL: traced run recorded no events"; exit 1; }
[[ -s target/figures/pingpong_trace.json ]] \
    || { echo "FAIL: chrome trace file missing or empty"; exit 1; }
echo "$out" | grep -q "fault counters: wire_drops=" \
    || { echo "FAIL: no fault-counter report in traced run"; exit 1; }

printf '\nci.sh: all checks passed\n'
