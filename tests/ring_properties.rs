//! Property-based tests of the completion-ring invariants: arbitrary
//! push/submit/reap schedules over a live 2-node substrate must never
//! lose or double a completion, must round-trip every `user_data`, must
//! never alias one registered buffer across two in-flight ops, and must
//! surface queue overflow as typed push errors rather than dropped
//! completions.
//!
//! The test mirrors `RingCore`'s admission rules in a tiny model and
//! asserts the engine agrees with the model on every push — including
//! which typed error fires when several conditions hold at once.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use sockets_over_emp::prelude::*;
use sockets_over_emp::simnet::ring::{CqeResult, RingConfig, RingError, RingOp, Sqe};
use sockets_over_emp::simnet::Completion as SimCompletion;
use sockets_over_emp::sockets_emp::SockError;
use sockets_over_emp::{emp_proto, sockets_emp};

/// One step of a random ring schedule. The connection under test is
/// always ring id 0; buffer ids may point past the pool (`BadBuf`) and
/// write lengths past the buffer (`BadLen`) on purpose.
#[derive(Clone, Copy, Debug)]
enum Step {
    PushRead { buf: u32 },
    PushWrite { buf: u32, len: u32 },
    Submit,
    Reap(usize),
    Delay,
}

/// Ring geometry under test (kept tiny so overflow paths are routine).
#[derive(Clone, Copy, Debug)]
struct Geom {
    sq_depth: usize,
    cq_depth: usize,
    buf_count: usize,
    buf_size: usize,
}

/// Decode one sampled `(kind, buf, len)` tuple into a schedule step.
/// Buffer ids range over the pool plus two out-of-range ids and lengths
/// over the buffer size plus a margin, so `BadBuf`/`BadLen` pushes are
/// part of every schedule's vocabulary.
fn decode_step(g: Geom, kind: u8, b: u32, l: u32) -> Step {
    let buf = b % (g.buf_count as u32 + 2);
    let len = 1 + l % (g.buf_size as u32 + 16);
    match kind {
        0..=2 => Step::PushRead { buf },
        3..=5 => Step::PushWrite { buf, len },
        6..=8 => Step::Submit,
        9..=10 => Step::Reap(1 + (l as usize % 7)),
        _ => Step::Delay,
    }
}

/// The model's mirror of `RingCore::push` admission, in the engine's
/// documented validation order.
struct Model {
    g: Geom,
    sq: usize,
    /// Admitted-but-unreaped op count (SQ + in flight + unreaped CQ).
    committed: usize,
    /// Buffers attached to in-flight ops, by id.
    attached: BTreeSet<u32>,
    /// user_data -> attached buffer for every admitted op.
    buf_of: BTreeMap<u64, Option<u32>>,
    /// user_data values seen in reaped completions (each exactly once).
    seen: BTreeSet<u64>,
    next_ud: u64,
}

impl Model {
    fn new(g: Geom) -> Self {
        Model {
            g,
            sq: 0,
            committed: 0,
            attached: BTreeSet::new(),
            buf_of: BTreeMap::new(),
            seen: BTreeSet::new(),
            next_ud: 0,
        }
    }

    /// What must `push` return for `op`, given the model state?
    fn expect(&self, op: RingOp) -> Result<(), RingError> {
        if self.sq >= self.g.sq_depth {
            return Err(RingError::SqFull);
        }
        if self.committed >= self.g.cq_depth {
            return Err(RingError::CqOverflow);
        }
        let (buf, len) = match op {
            RingOp::Read { buf, .. } => (buf, None),
            RingOp::Write { buf, len, .. } => (buf, Some(len)),
            RingOp::Accept { .. } | RingOp::Close { .. } => return Ok(()),
        };
        if buf as usize >= self.g.buf_count {
            return Err(RingError::BadBuf(buf));
        }
        if let Some(len) = len {
            if len as usize > self.g.buf_size {
                return Err(RingError::BadLen { buf, len });
            }
        }
        if self.attached.contains(&buf) {
            return Err(RingError::BufInFlight(buf));
        }
        Ok(())
    }

    fn admit(&mut self, ud: u64, op: RingOp) {
        self.sq += 1;
        self.committed += 1;
        let buf = op.buf();
        if let Some(b) = buf {
            self.attached.insert(b);
        }
        self.buf_of.insert(ud, buf);
    }
}

const CLIENT_TOTAL: usize = 2048;

/// Run one random schedule against a live ring and check every invariant
/// along the way. Panics (with the violated invariant) on failure.
fn run_schedule(g: Geom, steps: Vec<Step>) {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
    let done = SimCompletion::new();
    let d2 = done.clone();
    let failure: Arc<Mutex<Option<String>>> = Arc::default();
    let f2 = Arc::clone(&failure);

    sim.spawn("ring-server", move |ctx| {
        let cfg = RingConfig {
            sq_depth: g.sq_depth,
            cq_depth: g.cq_depth,
            buf_count: g.buf_count,
            buf_size: g.buf_size,
            max_registered_bytes: None,
        };
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let mut ring = sockets_emp::ring::ring(cfg, "prop");
        ring.add_listener(l);
        let mut m = Model::new(g);

        // A macro instead of a closure so the checks can borrow both the
        // ring and the model without fighting the borrow checker. A
        // failed check records the message and ends the process cleanly
        // (panicking inside a sim process would poison the scheduler).
        macro_rules! check {
            ($cond:expr, $($msg:tt)*) => {
                if !$cond {
                    *f2.lock() = Some(format!($($msg)*));
                    d2.complete(ctx);
                    return Ok(());
                }
            };
        }

        // Accept is op 0; the client connects immediately.
        let ud = m.next_ud;
        m.next_ud += 1;
        check!(
            ring.push(Sqe::new(ud, RingOp::Accept { listener: 0 }))
                == m.expect(RingOp::Accept { listener: 0 }),
            "accept push disagreed with model"
        );
        m.admit(ud, RingOp::Accept { listener: 0 });
        m.sq = 0;
        ring.submit_and_wait(ctx, 1)?.expect("accept committed");
        let cqes = ring.reap(usize::MAX);
        check!(
            cqes.len() == 1 && matches!(cqes[0].result, CqeResult::Accepted { conn: 0 }),
            "accept completion malformed: {cqes:?}"
        );
        check!(cqes[0].user_data == ud, "accept user_data corrupted");
        m.committed -= 1;
        m.seen.insert(ud);

        for step in steps {
            match step {
                Step::PushRead { .. } | Step::PushWrite { .. } => {
                    let op = match step {
                        Step::PushRead { buf } => RingOp::Read { conn: 0, buf },
                        Step::PushWrite { buf, len } => RingOp::Write { conn: 0, buf, len },
                        _ => unreachable!(),
                    };
                    let ud = m.next_ud;
                    m.next_ud += 1;
                    let want = m.expect(op);
                    let got = ring.push(Sqe::new(ud, op));
                    check!(
                        got == want,
                        "push {op:?} (state: sq={} committed={} attached={:?}): \
                         engine said {got:?}, model said {want:?}",
                        m.sq,
                        m.committed,
                        m.attached
                    );
                    if want.is_ok() {
                        m.admit(ud, op);
                    }
                }
                Step::Submit => {
                    ring.submit(ctx)?;
                    m.sq = 0;
                }
                Step::Reap(max) => {
                    for cqe in ring.reap(max) {
                        check!(
                            !m.seen.contains(&cqe.user_data),
                            "user_data {} completed twice",
                            cqe.user_data
                        );
                        let buf = m.buf_of.remove(&cqe.user_data);
                        check!(
                            buf.is_some(),
                            "completion for never-admitted user_data {}",
                            cqe.user_data
                        );
                        if let Some(Some(b)) = buf {
                            m.attached.remove(&b);
                        }
                        m.seen.insert(cqe.user_data);
                        m.committed -= 1;
                    }
                    // Buffer ownership: exactly the attached set is
                    // unavailable, everything reaped is free again.
                    check!(
                        ring.free_bufs() == g.buf_count - m.attached.len(),
                        "buffer pool accounting diverged: {} free, {} attached of {}",
                        ring.free_bufs(),
                        m.attached.len(),
                        g.buf_count
                    );
                }
                Step::Delay => ctx.delay(SimDuration::from_micros(100))?,
            }
        }

        // Orderly end: drain the SQ, harvest what completed, then close
        // the connection if admission allows — the model predicts the
        // overflow answer exactly.
        ring.submit(ctx)?;
        m.sq = 0;
        for cqe in ring.reap(usize::MAX) {
            check!(
                !m.seen.contains(&cqe.user_data),
                "user_data {} completed twice at drain",
                cqe.user_data
            );
            if let Some(Some(b)) = m.buf_of.remove(&cqe.user_data) {
                m.attached.remove(&b);
            }
            m.seen.insert(cqe.user_data);
            m.committed -= 1;
        }
        let close = RingOp::Close { conn: 0 };
        let want = m.expect(close);
        let got = ring.push(Sqe::new(m.next_ud, close));
        check!(got == want, "close push: engine {got:?}, model {want:?}");

        // Shutdown completes (as failures) everything still queued; the
        // conservation law must balance exactly afterwards.
        ring.shutdown(ctx)?;
        let c = ring.counters();
        check!(
            c.pushed == c.completed && c.completed == c.reaped,
            "completion conservation violated: {c:?}"
        );
        check!(
            ring.free_bufs() == g.buf_count,
            "registered buffers leaked through shutdown: {} of {} free",
            ring.free_bufs(),
            g.buf_count
        );
        let d = ring.depths();
        check!(
            (d.sq, d.in_flight, d.cq) == (0, 0, 0),
            "ring not drained after shutdown: {d:?}"
        );
        d2.complete(ctx);
        Ok(())
    });

    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let data = vec![0xAB; CLIENT_TOTAL];
        let mut off = 0;
        // Nonblocking sender with a bounded spin so the sim always
        // terminates even when the random schedule never reads.
        for _ in 0..2_000 {
            if off == data.len() {
                break;
            }
            match conn.try_write(ctx, &data[off..])? {
                Ok(n) => off += n,
                Err(SockError::WouldBlock) => ctx.delay(SimDuration::from_micros(200))?,
                Err(_) => break, // server tore the connection down
            }
        }
        let _ = conn.close(ctx);
        Ok(())
    });

    sim.run_until(SimTime::from_secs(120));
    assert!(done.is_done(), "ring server never finished its schedule");
    let failed = failure.lock().take();
    if let Some(msg) = failed {
        panic!("ring invariant violated: {msg}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full simulation with OS threads
        .. ProptestConfig::default()
    })]

    #[test]
    fn ring_schedules_uphold_completion_and_buffer_invariants(
        geom_raw in (1usize..6, 1usize..10, 1usize..5, 16usize..64),
        steps_raw in prop::collection::vec((0u8..12, 0u32..64, 0u32..96), 1..40),
    ) {
        let g = Geom {
            sq_depth: geom_raw.0,
            cq_depth: geom_raw.1,
            buf_count: geom_raw.2,
            buf_size: geom_raw.3,
        };
        let steps: Vec<Step> = steps_raw
            .iter()
            .map(|&(k, b, l)| decode_step(g, k, b, l))
            .collect();
        run_schedule(g, steps);
    }
}
