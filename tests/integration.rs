//! Workspace-level integration tests: whole scenarios spanning every
//! crate — engine, NIC, EMP, substrate, kernel baseline and applications.

use std::sync::Arc;

use parking_lot::Mutex;
use sockets_over_emp::emp_apps::{ftp, matmul, webserver, Testbed};
use sockets_over_emp::emp_proto::{self, EmpConfig};
use sockets_over_emp::prelude::*;

#[test]
fn facade_quickstart_roundtrip() {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);

    sim.spawn("server", move |ctx| {
        let listener = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = listener.accept(ctx)?.expect("connection");
        let msg = conn.read(ctx, 64)?.expect("data");
        conn.write(ctx, &msg)?.expect("echo");
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"integration")?.expect("send");
        let reply = conn.read(ctx, 64)?.expect("reply");
        assert_eq!(&reply[..], b"integration");
        *ok2.lock() = true;
        Ok(())
    });
    sim.run();
    assert!(*ok.lock());
}

#[test]
fn ftp_delivers_identical_bytes_over_both_stacks() {
    // The application-level promise of the paper: the same program, the
    // same files, byte-identical results — only faster over the substrate.
    fn fetch_bytes(tb: &Testbed) -> bytes::Bytes {
        tb.nodes[1].host.fs().put_synthetic("data.bin", 777_777);
        let sim = Sim::new();
        ftp::spawn_server(&sim, tb, 1, 1);
        let (bytes, _, _) = ftp::fetch(&sim, tb, 0, 1, "data.bin");
        assert_eq!(bytes, 777_777);
        // Read what the client stored.
        let got = Arc::new(Mutex::new(bytes::Bytes::new()));
        let g2 = Arc::clone(&got);
        let fs = tb.nodes[0].host.fs().clone();
        sim.spawn("verify", move |ctx| {
            let fd = fs.open(ctx, "dl-data.bin")?.expect("stored");
            let mut all = Vec::new();
            loop {
                let c = fs.read(ctx, fd, 1 << 20)?.expect("read");
                if c.is_empty() {
                    break;
                }
                all.extend_from_slice(&c);
            }
            *g2.lock() = bytes::Bytes::from(all);
            Ok(())
        });
        sim.run();
        let b = got.lock().clone();
        b
    }
    let emp = fetch_bytes(&Testbed::emp_default(2));
    let tcp = fetch_bytes(&Testbed::kernel_default(2));
    assert_eq!(emp.len(), 777_777);
    assert_eq!(emp, tcp, "both stacks must deliver identical file contents");
}

#[test]
fn webserver_completes_identical_workloads_on_both_stacks() {
    for tb in [Testbed::emp_default(4), Testbed::kernel_default(4)] {
        let avg = webserver::run_once(&tb, webserver::HttpVersion::Http10, 512, 6);
        assert!(avg > 0.0 && avg < 10_000.0, "plausible response time {avg}");
        let avg = webserver::run_once(&tb, webserver::HttpVersion::Http11, 512, 8);
        assert!(avg > 0.0 && avg < 10_000.0, "plausible response time {avg}");
    }
}

#[test]
fn matmul_checksums_agree_across_stacks_and_sizes() {
    for n in [12usize, 48] {
        let sim = Sim::new();
        let (_, emp_sum) = matmul::run(&sim, &Testbed::emp_default(4), n);
        let sim = Sim::new();
        let (_, tcp_sum) = matmul::run(&sim, &Testbed::kernel_default(4), n);
        let local = matmul::local_checksum(n);
        assert_eq!(emp_sum.to_bits(), tcp_sum.to_bits(), "n={n}");
        assert!(
            (emp_sum - local).abs() <= 1e-6 * local.abs().max(1.0),
            "n={n}: distributed {emp_sum} vs local {local}"
        );
    }
}

#[test]
fn headline_numbers_hold_end_to_end() {
    // The abstract in one test: substrate latency 28.5/37 us vs TCP 120 us;
    // bandwidth ~840 vs 550 Mbps.
    use sockets_over_emp::emp_apps::{bandwidth, pingpong};

    let sim = Sim::new();
    let dg = pingpong::one_way_latency_us(
        &sim,
        &Testbed::emp(2, EmpConfig::default(), SubstrateConfig::dg(), "dg"),
        4,
        40,
    );
    let sim = Sim::new();
    let ds = pingpong::one_way_latency_us(&sim, &Testbed::emp_default(2), 4, 40);
    let sim = Sim::new();
    let tcp = pingpong::one_way_latency_us(&sim, &Testbed::kernel_default(2), 4, 40);
    assert!(
        (26.5..31.0).contains(&dg),
        "datagram {dg:.1} us (paper 28.5)"
    );
    assert!(
        (32.0..40.0).contains(&ds),
        "streaming {ds:.1} us (paper 37)"
    );
    assert!((105.0..135.0).contains(&tcp), "tcp {tcp:.1} us (paper 120)");

    let sim = Sim::new();
    let emp_bw = bandwidth::throughput_mbps(&sim, &Testbed::emp_default(2), 64 << 10, 4 << 20);
    let sim = Sim::new();
    let tcp_bw = bandwidth::throughput_mbps(
        &sim,
        &Testbed::kernel(
            2,
            kernel_tcp::TcpConfig::default(),
            Some(256 << 10),
            "tcp-big",
        ),
        64 << 10,
        4 << 20,
    );
    assert!(emp_bw > 800.0, "substrate {emp_bw:.0} Mbps (paper >840)");
    assert!(
        (500.0..600.0).contains(&tcp_bw),
        "tcp {tcp_bw:.0} Mbps (paper ~550)"
    );
}

#[test]
fn fd_interposition_spans_fs_and_network() {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cluster.nodes[1].addr(), 21);
    cluster.nodes[1].host.fs().put_synthetic("src.bin", 100_000);
    let (sfs, cfs) = (
        cluster.nodes[1].host.fs().clone(),
        cluster.nodes[0].host.fs().clone(),
    );
    let done = Arc::new(Mutex::new(false));
    let done2 = Arc::clone(&done);

    sim.spawn("server", move |ctx| {
        let fds = FdTable::new(server, sfs);
        let lfd = fds.socket_listen(ctx, 21, 2)?.expect("listen");
        let cfd = fds.accept(ctx, lfd)?.expect("accept");
        let ffd = fds.open(ctx, "src.bin")?.expect("open");
        loop {
            let chunk = fds.read(ctx, ffd, 8192)?.expect("file read");
            if chunk.is_empty() {
                break;
            }
            fds.write(ctx, cfd, &chunk)?.expect("sock write");
        }
        fds.close(ctx, ffd)?.expect("close");
        fds.close(ctx, cfd)?.expect("close");
        fds.close(ctx, lfd)?.expect("close");
        assert_eq!(fds.live_fds(), 0);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let fds = FdTable::new(client, cfs);
        let sfd = fds.socket_connect(ctx, addr)?.expect("connect");
        let ofd = fds.create(ctx, "dst.bin")?.expect("create");
        let mut total = 0;
        loop {
            let chunk = fds.read(ctx, sfd, 8192)?.expect("sock read");
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
            fds.write(ctx, ofd, &chunk)?.expect("file write");
        }
        assert_eq!(total, 100_000);
        fds.close(ctx, sfd)?.expect("close");
        fds.close(ctx, ofd)?.expect("close");
        *done2.lock() = true;
        Ok(())
    });
    sim.run();
    assert!(*done.lock());
}

#[test]
fn whole_application_runs_are_deterministic() {
    fn run_once() -> f64 {
        let tb = Testbed::emp_default(4);
        webserver::run_once(&tb, webserver::HttpVersion::Http10, 1024, 4)
    }
    assert_eq!(run_once().to_bits(), run_once().to_bits());
}
