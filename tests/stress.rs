//! Randomized (seeded, deterministic) stress tests: many concurrent
//! connections with mixed traffic shapes across a 4-node cluster, with
//! per-connection end-to-end integrity checks. This is where protocol
//! races that survive the targeted tests go to die.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Sim, SimDuration, SimTime};
use sockets_over_emp::emp_apps::Testbed;
use std::sync::Arc;

/// Deterministic byte for (connection, stream offset).
fn expected_byte(conn_id: usize, offset: usize) -> u8 {
    ((conn_id * 37 + offset * 13 + 5) % 251) as u8
}

/// Drive `n_conns` concurrent connections between random node pairs; each
/// carries a random number of random-sized writes. Returns total bytes
/// moved. Panics on any integrity violation.
fn stress(tb: &Testbed, seed: u64, n_conns: usize) -> usize {
    let sim = Sim::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = tb.nodes.len();
    let total_moved = Arc::new(Mutex::new(0usize));

    // One listener per node; servers spawn a worker per accepted
    // connection that echoes a 4-byte ack per message batch received.
    let mut accepts_per_node = vec![0u32; n_nodes];
    let mut plans = Vec::new();
    for conn_id in 0..n_conns {
        let client = rng.gen_range(0..n_nodes);
        let server = (client + rng.gen_range(1..n_nodes)) % n_nodes;
        let writes: Vec<usize> = (0..rng.gen_range(1..6))
            .map(|_| rng.gen_range(1..40_000))
            .collect();
        let start_us = rng.gen_range(0..500u64);
        accepts_per_node[server] += 1;
        plans.push((conn_id, client, server, writes, start_us));
    }

    for (node, &count) in accepts_per_node.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let api = Arc::clone(&tb.nodes[node].api);
        let total = Arc::clone(&total_moved);
        sim.spawn(format!("stress-server-{node}"), move |ctx| {
            let l = api.listen(ctx, 500, 32)?.expect("port free");
            for _ in 0..count {
                let conn = l.accept(ctx)?.expect("connection");
                let total = Arc::clone(&total);
                ctx.spawn("stress-worker", move |ctx| {
                    // Header: 8 bytes = conn_id u32 + total_len u32.
                    let hdr = conn.read_exact(ctx, 8)?.expect("hdr").expect("open");
                    let conn_id = u32::from_le_bytes(hdr[0..4].try_into().expect("4")) as usize;
                    let len = u32::from_le_bytes(hdr[4..8].try_into().expect("4")) as usize;
                    let mut got = 0usize;
                    while got < len {
                        let d = conn.read(ctx, 8192)?.expect("data");
                        assert!(!d.is_empty(), "premature EOF on conn {conn_id}");
                        for (i, b) in d.iter().enumerate() {
                            assert_eq!(
                                *b,
                                expected_byte(conn_id, got + i),
                                "conn {conn_id} corrupt at {}",
                                got + i
                            );
                        }
                        got += d.len();
                    }
                    conn.write(ctx, b"done")?.expect("ack");
                    *total.lock() += got;
                    let _ = conn.close(ctx);
                    Ok(())
                });
            }
            l.close(ctx)?;
            Ok(())
        });
    }

    for (conn_id, client, server, writes, start_us) in plans {
        let api = Arc::clone(&tb.nodes[client].api);
        let host = tb.nodes[server].api.local_host();
        sim.spawn(format!("stress-client-{conn_id}"), move |ctx| {
            ctx.delay(SimDuration::from_micros(start_us))?;
            let conn = api.connect(ctx, host, 500)?.expect("connect");
            let len: usize = writes.iter().sum();
            let mut hdr = Vec::with_capacity(8);
            hdr.extend_from_slice(&(conn_id as u32).to_le_bytes());
            hdr.extend_from_slice(&(len as u32).to_le_bytes());
            conn.write(ctx, &hdr)?.expect("hdr");
            let mut off = 0usize;
            for w in &writes {
                let chunk: Vec<u8> = (0..*w).map(|i| expected_byte(conn_id, off + i)).collect();
                conn.write(ctx, &chunk)?.expect("data");
                off += w;
            }
            let ack = conn.read_exact(ctx, 4)?.expect("ack").expect("open");
            assert_eq!(&ack[..], b"done");
            conn.close(ctx)?;
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let moved = *total_moved.lock();
    moved
}

#[test]
fn substrate_survives_concurrent_random_traffic() {
    for seed in [1u64, 7, 42] {
        let tb = Testbed::emp_default(4);
        let moved = stress(&tb, seed, 12);
        assert!(moved > 0, "seed {seed}: traffic moved");
        // Every planned byte arrived (12 conns x 1..6 writes x <40 KB).
        let cluster = tb.emp_cluster().expect("emp testbed");
        for node in &cluster.nodes {
            assert_eq!(node.nic.stats().sends_failed, 0, "seed {seed}");
        }
    }
}

#[test]
fn substrate_survives_random_traffic_with_tiny_credits() {
    use sockets_over_emp::emp_proto::EmpConfig;
    use sockets_over_emp::sockets_emp::SubstrateConfig;
    let tb = Testbed::emp(
        4,
        EmpConfig::default(),
        SubstrateConfig::ds().with_credits(1),
        "emp-c1",
    );
    let moved = stress(&tb, 99, 8);
    assert!(moved > 0);
}

#[test]
fn kernel_tcp_survives_concurrent_random_traffic() {
    for seed in [3u64, 11] {
        let tb = Testbed::kernel_default(4);
        let moved = stress(&tb, seed, 12);
        assert!(moved > 0, "seed {seed}");
    }
}

#[test]
fn stress_runs_are_deterministic() {
    fn run(seed: u64) -> usize {
        stress(&Testbed::emp_default(4), seed, 10)
    }
    assert_eq!(run(5), run(5));
}
