//! Property-based tests over the public API: arbitrary traffic patterns
//! must arrive intact, in order, and with boundary semantics preserved,
//! over both stacks.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use sockets_over_emp::emp_apps::Testbed;
use sockets_over_emp::emp_proto::{self, EmpConfig};
use sockets_over_emp::hostsim::{CostModel, MemoryRegistry, VirtRange};
use sockets_over_emp::prelude::*;

/// Deterministic payload for (message index, length).
fn pattern(idx: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + idx * 7 + 3) % 251) as u8)
        .collect()
}

/// Send `writes` over a stream connection and return everything the
/// reader saw (concatenated), plus the reader's chunk count.
fn stream_echo(cfg: SubstrateConfig, writes: Vec<usize>) -> Vec<u8> {
    let total: usize = writes.iter().sum();
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), cfg.clone());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), cfg);
    let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut buf = Vec::with_capacity(total);
        while buf.len() < total {
            // Odd read sizes exercise partial reads across boundaries.
            let m = conn.read(ctx, 1 + (buf.len() % 4093))?.expect("data");
            if m.is_empty() {
                break;
            }
            buf.extend_from_slice(&m);
        }
        *got2.lock() = buf;
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for (i, len) in writes.iter().enumerate() {
            conn.write(ctx, &pattern(i, *len))?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(5))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run_until(SimTime::from_secs(120));
    let v = got.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full simulation with OS threads
        .. ProptestConfig::default()
    })]

    #[test]
    fn stream_preserves_bytes_for_arbitrary_write_patterns(
        writes in prop::collection::vec(1usize..20_000, 1..8)
    ) {
        let expect: Vec<u8> = writes
            .iter()
            .enumerate()
            .flat_map(|(i, len)| pattern(i, *len))
            .collect();
        let got = stream_echo(SubstrateConfig::ds_da_uq(), writes);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn stream_with_tiny_credits_still_delivers(
        writes in prop::collection::vec(1usize..5_000, 1..6),
        credits in 1u32..4,
    ) {
        let expect: Vec<u8> = writes
            .iter()
            .enumerate()
            .flat_map(|(i, len)| pattern(i, *len))
            .collect();
        let got = stream_echo(SubstrateConfig::ds().with_credits(credits), writes);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn datagrams_preserve_boundaries_and_order(
        sizes in prop::collection::vec(1usize..40_000, 1..6)
    ) {
        let sim = Sim::new();
        let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
        let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::dg());
        let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::dg());
        let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let n = sizes.len();
        let sizes2 = sizes.clone();

        sim.spawn("receiver", move |ctx| {
            let l = server.listen(ctx, 80, 4)?.expect("port free");
            let conn = l.accept(ctx)?.expect("connection");
            for _ in 0..n {
                let m = conn.read(ctx, 64_000)?.expect("message");
                got2.lock().push(m.to_vec());
            }
            Ok(())
        });
        sim.spawn("sender", move |ctx| {
            let conn = client.connect(ctx, addr)?.expect("connect");
            for (i, len) in sizes2.iter().enumerate() {
                conn.write(ctx, &pattern(i, *len))?.expect("send");
            }
            Ok(())
        });
        sim.run_until(SimTime::from_secs(120));
        let msgs = got.lock().clone();
        prop_assert_eq!(msgs.len(), sizes.len());
        for (i, (m, len)) in msgs.iter().zip(&sizes).enumerate() {
            prop_assert_eq!(m.len(), *len, "message {} length", i);
            prop_assert_eq!(m, &pattern(i, *len), "message {} content", i);
        }
    }

    #[test]
    fn kernel_tcp_preserves_bytes_for_arbitrary_write_patterns(
        writes in prop::collection::vec(1usize..20_000, 1..6)
    ) {
        let expect: Vec<u8> = writes
            .iter()
            .enumerate()
            .flat_map(|(i, len)| pattern(i, *len))
            .collect();
        let total: usize = writes.iter().sum();
        let tb = Testbed::kernel_default(2);
        let sim = Sim::new();
        let api_s = Arc::clone(&tb.nodes[1].api);
        let api_c = Arc::clone(&tb.nodes[0].api);
        let host = api_s.local_host();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);

        sim.spawn("reader", move |ctx| {
            let l = api_s.listen(ctx, 80, 4)?.expect("port free");
            let conn = l.accept(ctx)?.expect("connection");
            let mut buf = Vec::with_capacity(total);
            while buf.len() < total {
                let m = conn.read(ctx, 1 + (buf.len() % 2048))?.expect("data");
                if m.is_empty() {
                    break;
                }
                buf.extend_from_slice(&m);
            }
            *got2.lock() = buf;
            Ok(())
        });
        sim.spawn("writer", move |ctx| {
            let conn = api_c.connect(ctx, host, 80)?.expect("connect");
            for (i, len) in writes.iter().enumerate() {
                conn.write(ctx, &pattern(i, *len))?.expect("send");
            }
            conn.close(ctx)?;
            Ok(())
        });
        sim.run_until(SimTime::from_secs(120));
        let v = got.lock().clone();
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn pin_registry_never_repins_covered_ranges(
        ranges in prop::collection::vec((0u64..1_000_000, 1u64..100_000), 1..40)
    ) {
        let cost = CostModel::default();
        let mut reg = MemoryRegistry::new();
        for (addr, len) in &ranges {
            reg.register(VirtRange::new(*addr, *len), &cost);
        }
        // Second pass over the same ranges must be all cache hits.
        let misses_before = reg.cache_misses();
        for (addr, len) in &ranges {
            let (_, outcome) = reg.register(VirtRange::new(*addr, *len), &cost);
            prop_assert_eq!(outcome, sockets_over_emp::hostsim::PinOutcome::CacheHit);
        }
        prop_assert_eq!(reg.cache_misses(), misses_before);
        // Pinned pages never exceed the page-span of the union bound.
        let max_page = ranges
            .iter()
            .map(|(a, l)| (a + l - 1) / 4096)
            .max()
            .unwrap_or(0);
        prop_assert!(reg.pinned_pages() <= max_page + 1);
    }

    #[test]
    fn substrate_message_encoding_roundtrips(
        piggyback in any::<u16>(),
        seq in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048)
    ) {
        use sockets_over_emp::sockets_emp::proto::Msg;
        let m = Msg::Data {
            piggyback,
            seq,
            payload: bytes::Bytes::from(payload),
        };
        let enc = m.encode();
        let dec = Msg::decode(&enc).expect("roundtrip");
        prop_assert_eq!(dec, m);
    }
}
