//! Quickstart: a two-node cluster, one echo exchange, and a latency
//! measurement over the sockets-over-EMP substrate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use sockets_over_emp::prelude::*;

// parking_lot is a workspace dependency; examples use the re-exported
// engine types plus it for result plumbing.
use sockets_over_emp::emp_proto;

fn main() {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cluster.nodes[1].addr(), 80);

    let latency = Arc::new(PlMutex::new(0.0f64));
    let latency2 = Arc::clone(&latency);

    sim.spawn("echo-server", move |ctx| {
        let listener = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = listener.accept(ctx)?.expect("connection");
        loop {
            let msg = conn.read(ctx, 4096)?.expect("data");
            if msg.is_empty() {
                break; // client closed
            }
            conn.write(ctx, &msg)?.expect("echo");
        }
        Ok(())
    });

    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");

        // One friendly exchange.
        conn.write(ctx, b"hello, user-level sockets")?
            .expect("send");
        let reply = conn.read(ctx, 4096)?.expect("reply");
        println!(
            "echoed {} bytes: {:?}",
            reply.len(),
            std::str::from_utf8(&reply).unwrap()
        );

        // Then a 4-byte ping-pong, the paper's headline microbenchmark.
        let iters = 100u32;
        for _ in 0..4 {
            conn.write(ctx, b"warm")?.expect("w");
            while conn.read(ctx, 4)?.expect("r").len() < 4 {}
        }
        let t0 = ctx.now();
        for _ in 0..iters {
            conn.write(ctx, b"ping")?.expect("w");
            let mut got = 0;
            while got < 4 {
                got += conn.read(ctx, 4 - got)?.expect("r").len();
            }
        }
        let one_way = ((ctx.now() - t0) / u64::from(iters)).as_micros_f64() / 2.0;
        *latency2.lock() = one_way;
        conn.close(ctx)?;
        Ok(())
    });

    sim.run();
    println!(
        "4-byte one-way latency over the substrate: {:.2} us (paper: ~37 us for data streaming)",
        *latency.lock()
    );
    println!(
        "simulated time elapsed: {}, events executed: {}",
        sim.now(),
        sim.events_executed()
    );
}
