//! File transfer through the §5.4 fd-interposition layer: the same
//! integer-descriptor `read()`/`write()` interface serves RAM-disk files
//! and substrate sockets, which is exactly what lets unmodified
//! fd-oriented applications (like ftp) run over EMP.
//!
//! ```text
//! cargo run --release --example file_transfer
//! ```

use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use sockets_over_emp::emp_proto;
use sockets_over_emp::prelude::*;

const FILE_SIZE: usize = 4 << 20;
const CHUNK: usize = 64 * 1024;

fn main() {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cluster.nodes[1].addr(), 21);

    // The server's RAM disk holds the payload (as §7.3: RAM disks remove
    // disk effects; what remains is file-system overhead).
    cluster.nodes[1]
        .host
        .fs()
        .put_synthetic("kernel.tar", FILE_SIZE);
    let server_fs = cluster.nodes[1].host.fs().clone();
    let client_fs = cluster.nodes[0].host.fs().clone();
    let stats = Arc::new(PlMutex::new((0usize, 0.0f64)));
    let stats2 = Arc::clone(&stats);

    sim.spawn("ftp-server", move |ctx| {
        let fds = FdTable::new(server, server_fs);
        let listen_fd = fds.socket_listen(ctx, 21, 4)?.expect("port free");
        let conn_fd = fds.accept(ctx, listen_fd)?.expect("client");
        // Everything below is generic fd I/O: one descriptor names a
        // file, the other a socket; the table routes each call.
        let file_fd = fds.open(ctx, "kernel.tar")?.expect("file exists");
        loop {
            let chunk = fds.read(ctx, file_fd, CHUNK)?.expect("file read");
            if chunk.is_empty() {
                break;
            }
            fds.write(ctx, conn_fd, &chunk)?.expect("socket write");
        }
        fds.close(ctx, file_fd)?.expect("close file");
        fds.close(ctx, conn_fd)?.expect("close socket");
        fds.close(ctx, listen_fd)?.expect("close listener");
        Ok(())
    });

    sim.spawn("ftp-client", move |ctx| {
        let fds = FdTable::new(client, client_fs);
        let t0 = ctx.now();
        let sock_fd = fds.socket_connect(ctx, addr)?.expect("connect");
        let out_fd = fds.create(ctx, "kernel.tar")?.expect("create");
        let mut got = 0usize;
        loop {
            let chunk = fds.read(ctx, sock_fd, CHUNK)?.expect("socket read");
            if chunk.is_empty() {
                break;
            }
            got += chunk.len();
            fds.write(ctx, out_fd, &chunk)?.expect("file write");
        }
        fds.close(ctx, out_fd)?.expect("close file");
        fds.close(ctx, sock_fd)?.expect("close socket");
        let secs = (ctx.now() - t0).as_secs_f64();
        *stats2.lock() = (got, got as f64 * 8.0 / secs / 1e6);
        Ok(())
    });

    sim.run();
    let (bytes, mbps) = *stats.lock();
    println!("transferred {bytes} bytes at {mbps:.0} Mbps (simulated)");
    println!("paper: ftp lands well below the 840 Mbps socket peak due to file-system overhead,");
    println!("and roughly 2x what the same application achieves over kernel TCP.");
}
