//! Distributed matrix multiplication on the 4-node cluster (§7.5), over
//! both stacks, with the result verified against a local multiply.
//!
//! ```text
//! cargo run --release --example matmul_cluster
//! ```

use simnet::Sim;
use sockets_over_emp::emp_apps::{matmul, Testbed};

fn main() {
    println!("Distributed matmul, 1 master + 3 workers (select()-driven gather):");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "n", "substrate (ms)", "tcp (ms)", "speedup"
    );
    for n in [48usize, 96, 192] {
        let sim = Sim::new();
        let (emp_us, emp_sum) = matmul::run(&sim, &Testbed::emp_default(4), n);
        let sim = Sim::new();
        let (tcp_us, tcp_sum) = matmul::run(&sim, &Testbed::kernel_default(4), n);
        assert_eq!(
            emp_sum.to_bits(),
            tcp_sum.to_bits(),
            "both stacks compute the same product"
        );
        let local = matmul::local_checksum(n);
        assert!(
            (emp_sum - local).abs() <= 1e-6 * local.abs().max(1.0),
            "distributed result verified against local multiply"
        );
        println!(
            "{n:>8} {:>16.2} {:>16.2} {:>9.2}x",
            emp_us / 1000.0,
            tcp_us / 1000.0,
            tcp_us / emp_us
        );
    }
    println!();
    println!("Results are checksum-verified; the gap narrows as O(n^3) compute");
    println!("swamps O(n^2) communication — the right-hand side of Figure 17.");
}
