//! The paper's web-server scenario (§7.4): one server, three clients,
//! run over both stacks, with the response-time comparison printed.
//!
//! ```text
//! cargo run --release --example web_cluster
//! ```

use sockets_over_emp::emp_apps::{webserver, Testbed};
use sockets_over_emp::emp_proto::EmpConfig;
use sockets_over_emp::sockets_emp::SubstrateConfig;

fn main() {
    let sizes = [4usize, 256, 1024, 8192];
    println!("Web server average response time, 3 clients x 16 requests:");
    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>10}",
        "resp bytes", "substrate (us)", "tcp (us)", "http", "speedup"
    );
    for version in [
        webserver::HttpVersion::Http10,
        webserver::HttpVersion::Http11,
    ] {
        for &size in &sizes {
            // §7.4: the web server runs the substrate with credit size 4.
            let emp_tb = Testbed::emp(
                4,
                EmpConfig::default(),
                SubstrateConfig::ds_da_uq().with_credits(4),
                "emp-c4",
            );
            let emp = webserver::run_once(&emp_tb, version, size, 16);
            let tcp_tb = Testbed::kernel_default(4);
            let tcp = webserver::run_once(&tcp_tb, version, size, 16);
            println!(
                "{size:>12} {emp:>16.1} {tcp:>16.1} {:>16} {:>9.1}x",
                format!("{version:?}"),
                tcp / emp
            );
        }
    }
    println!();
    println!("The paper reports up to 6x improvement under HTTP/1.0 (small responses)");
    println!("narrowing under HTTP/1.1 as TCP's connection cost amortizes over 8 requests.");
}
