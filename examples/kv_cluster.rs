//! The paper's future work, §8: "utilizing and evaluating the proposed
//! substrate for a range of commercial applications in the Data center
//! environment" — a key-value service under a read-heavy workload, over
//! both stacks.
//!
//! ```text
//! cargo run --release --example kv_cluster
//! ```

use sockets_over_emp::emp_apps::{kvstore, Testbed};

fn main() {
    println!("Key-value store, 3 clients x 200 ops, 90% GET:");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>10}",
        "value bytes", "emp op (us)", "tcp op (us)", "emp kops/s", "speedup"
    );
    for value_size in [64usize, 512, 4096] {
        let emp = kvstore::run_workload(&Testbed::emp_default(4), 3, 200, value_size, 0.9, 11);
        let tcp = kvstore::run_workload(&Testbed::kernel_default(4), 3, 200, value_size, 0.9, 11);
        println!(
            "{value_size:>12} {:>14.1} {:>14.1} {:>14.1} {:>9.2}x",
            emp.mean_op_us,
            tcp.mean_op_us,
            emp.ops_per_sec / 1000.0,
            tcp.mean_op_us / emp.mean_op_us
        );
    }
    println!();
    println!("Persistent connections amortize connection setup away entirely, so the");
    println!("gap here is the pure small-message data path — Figure 13a in service form.");
}
