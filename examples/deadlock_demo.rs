//! Figure 7 live: the rendezvous write-write deadlock on datagram
//! sockets, and the same pattern surviving on data-streaming sockets
//! thanks to credit-based flow control (Figure 9).
//!
//! ```text
//! cargo run --release --example deadlock_demo
//! ```

use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use sockets_over_emp::emp_proto;
use sockets_over_emp::prelude::*;

const BIG: usize = 100_000;

fn run(cfg: SubstrateConfig, label: &str) -> bool {
    let sim = Sim::new();
    let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let a = EmpSockets::new(cluster.nodes[0].endpoint(), cfg.clone());
    let b = EmpSockets::new(cluster.nodes[1].endpoint(), cfg);
    let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
    let finished = Arc::new(PlMutex::new(0u32));

    let fin = Arc::clone(&finished);
    sim.spawn(format!("{label}-peer-b"), move |ctx| {
        let l = b.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        // Both peers WRITE first, then read — the pattern of Figure 7.
        conn.write(ctx, &vec![2u8; BIG])?.expect("write");
        let mut got = 0;
        while got < BIG {
            let m = conn.read(ctx, BIG - got)?.expect("read");
            got += m.len();
        }
        *fin.lock() += 1;
        Ok(())
    });
    let fin = Arc::clone(&finished);
    sim.spawn(format!("{label}-peer-a"), move |ctx| {
        let conn = a.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_micros(500))?; // let accept finish
        conn.write(ctx, &vec![1u8; BIG])?.expect("write");
        let mut got = 0;
        while got < BIG {
            let m = conn.read(ctx, BIG - got)?.expect("read");
            got += m.len();
        }
        *fin.lock() += 1;
        Ok(())
    });
    sim.run_until(SimTime::from_millis(500));
    let n = *finished.lock();
    n == 2
}

fn main() {
    println!("Both peers write {BIG} bytes, then read (write-write/read-read):");
    println!();

    let ok = run(SubstrateConfig::dg(), "dgram");
    println!(
        "datagram sockets (rendezvous):        {}",
        if ok {
            "completed ?!"
        } else {
            "DEADLOCK — both block awaiting the rendezvous grant (Figure 7)"
        }
    );

    let ok = run(SubstrateConfig::ds_da_uq(), "stream");
    println!(
        "stream sockets (eager, 32 credits):   {}",
        if ok {
            "completed — credits and temp buffers absorb the writes (Figure 9)"
        } else {
            "deadlocked ?!"
        }
    );

    println!();
    println!(
        "\"In this approach, the responsibility to avoid a deadlock lies on the user.\" — §6.2"
    );
}
