//! The latency microbenchmark (§7.1-7.2): a ping-pong between two nodes;
//! one-way latency is half the measured round trip.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimDuration};

use crate::testbed::Testbed;

/// Measure one-way latency for `msg_size`-byte messages over `iters`
/// round trips on nodes 0 and 1 of `tb`. Returns microseconds.
pub fn one_way_latency_us(sim: &Sim, tb: &Testbed, msg_size: usize, iters: u32) -> f64 {
    pingpong_run(sim, tb, msg_size, iters, false, None)
}

/// [`one_way_latency_us`], also returning both connections' substrate
/// counters summed (sampled just before close; all zeros on kernel TCP).
/// The ping-pong is the posted-reader case: each side is parked in
/// `read()` when its message arrives, so with
/// `SubstrateConfig::with_direct_delivery` every delivery should bypass
/// the temp-buffer copy (`copies_avoided`/`bytes_direct` account it).
pub fn pingpong_with_stats(
    sim: &Sim,
    tb: &Testbed,
    msg_size: usize,
    iters: u32,
) -> (f64, sockets_emp::ConnStats) {
    let stats = Arc::new(Mutex::new(sockets_emp::ConnStats::default()));
    let us = pingpong_run(sim, tb, msg_size, iters, false, Some(Arc::clone(&stats)));
    let s = *stats.lock();
    (us, s)
}

/// A ping-pong run captured for analysis: the measured latency plus the
/// post-warmup event trace (see `simnet::emp_trace`).
pub struct TracedPingpong {
    /// Measured one-way latency in microseconds, as
    /// [`one_way_latency_us`] reports it.
    pub one_way_us: f64,
    /// The events recorded between the end of the warmup and the end of
    /// the run, sorted by sim-time. Empty unless the `trace` feature is
    /// enabled.
    pub events: Vec<simnet::emp_trace::TraceEvent>,
    /// Events lost to ring overflow (0 means the trace is complete).
    pub dropped: u64,
}

/// Run the ping-pong with tracing: the simulation's tracer is cleared
/// after the warmup round trips, so the returned trace covers exactly the
/// `iters` measured round trips. Feed `events` to
/// `emp_trace::Breakdown::compute` for the §7-style latency budget or to
/// `emp_trace::chrome_trace_json` for a Perfetto-loadable timeline.
pub fn traced_pingpong(sim: &Sim, tb: &Testbed, msg_size: usize, iters: u32) -> TracedPingpong {
    let one_way_us = pingpong_run(sim, tb, msg_size, iters, true, None);
    let tracer = sim.tracer();
    TracedPingpong {
        one_way_us,
        events: tracer.snapshot(),
        dropped: tracer.dropped(),
    }
}

fn pingpong_run(
    sim: &Sim,
    tb: &Testbed,
    msg_size: usize,
    iters: u32,
    traced: bool,
    stats: Option<Arc<Mutex<sockets_emp::ConnStats>>>,
) -> f64 {
    assert!(tb.nodes.len() >= 2, "ping-pong needs two nodes");
    assert!(msg_size >= 1);
    let out = Arc::new(Mutex::new(f64::NAN));
    let out2 = Arc::clone(&out);
    let (stats_srv, stats_cli) = (stats.clone(), stats);
    let server_api = Arc::clone(&tb.nodes[1].api);
    let client_api = Arc::clone(&tb.nodes[0].api);
    let server_host = server_api.local_host();
    const PORT: u16 = 77;

    sim.spawn("pingpong-echoer", move |ctx| {
        let l = server_api.listen(ctx, PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        // The read errs (reset/refused) under a torn-down client.
        while let Ok(m) = conn.read(ctx, msg_size)? {
            if m.is_empty() {
                break;
            }
            // Echo exactly what arrived (byte streams may fragment).
            if conn.write(ctx, &m)?.is_err() {
                break;
            }
        }
        if let (Some(acc), Some(s)) = (&stats_srv, conn.substrate_stats()) {
            *acc.lock() += s;
        }
        let _ = conn.close(ctx);
        l.close(ctx)?;
        Ok(())
    });
    sim.spawn("pingpong-pinger", move |ctx| {
        let conn = client_api
            .connect(ctx, server_host, PORT)?
            .expect("connect");
        let payload = vec![0x55u8; msg_size];
        // Warm up: connection setup, buffer registration, caches.
        for _ in 0..4 {
            conn.write(ctx, &payload)?.expect("warm write");
            conn.read_exact(ctx, msg_size)?
                .expect("warm read")
                .expect("pong");
        }
        if traced {
            // Drop warmup noise so the trace covers exactly the measured
            // round trips (connection setup dwarfs steady-state RTTs).
            ctx.tracer().clear();
        }
        let rtt_hist = ctx.telemetry().histogram("app.rtt_ns");
        let t0 = ctx.now();
        for _ in 0..iters {
            let iter_start = ctx.now();
            conn.write(ctx, &payload)?.expect("write");
            conn.read_exact(ctx, msg_size)?
                .expect("read")
                .expect("pong");
            rtt_hist.record((ctx.now() - iter_start).nanos());
        }
        let rtt = (ctx.now() - t0) / u64::from(iters);
        *out2.lock() = rtt.as_micros_f64() / 2.0;
        ctx.delay(SimDuration::from_micros(50))?;
        if let (Some(acc), Some(s)) = (&stats_cli, conn.substrate_stats()) {
            *acc.lock() += s;
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let us = *out.lock();
    assert!(us.is_finite(), "ping-pong did not complete");
    us
}

/// Measure connection setup, both ways of looking at it:
/// `(client_blocked_us, established_us)` — how long `connect()` blocks
/// the caller, and how long until the server's `accept()` holds the
/// connection. Averaged over `iters` sequential connections.
///
/// §7.4: TCP's connect blocks ~200-250 µs for the kernel handshake; the
/// substrate's connect is a single posted message ("the connection time
/// of the substrate [reduces] to the time required by a message
/// exchange") and returns almost immediately.
pub fn connect_times_us(sim: &Sim, tb: &Testbed, iters: u32) -> (f64, f64) {
    assert!(tb.nodes.len() >= 2);
    let out = Arc::new(Mutex::new((f64::NAN, f64::NAN)));
    let t_connect_call = Arc::new(Mutex::new(Vec::new()));
    const PORT: u16 = 79;

    let server_api = Arc::clone(&tb.nodes[1].api);
    let (out2, tcc) = (Arc::clone(&out), Arc::clone(&t_connect_call));
    sim.spawn("conn-server", move |ctx| {
        let l = server_api.listen(ctx, PORT, 8)?.expect("port free");
        let mut established = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let conn = l.accept(ctx)?.expect("connection");
            established.push(ctx.now().nanos());
            // Consume the probe byte so the client can move on.
            let d = conn.read(ctx, 8)?.expect("probe");
            debug_assert_eq!(d.len(), 1);
            let _ = conn.close(ctx);
        }
        // Pair accept times with the recorded connect-call times.
        let starts = tcc.lock();
        let mean_est: f64 = established
            .iter()
            .zip(starts.iter())
            .map(|(e, s): (&u64, &u64)| (e - s) as f64 / 1000.0)
            .sum::<f64>()
            / iters as f64;
        out2.lock().1 = mean_est;
        l.close(ctx)?;
        Ok(())
    });
    let client_api = Arc::clone(&tb.nodes[0].api);
    let server_host = tb.nodes[1].api.local_host();
    let (out3, tcc) = (Arc::clone(&out), Arc::clone(&t_connect_call));
    sim.spawn("conn-client", move |ctx| {
        let mut blocked = 0u64;
        for _ in 0..iters {
            let t0 = ctx.now();
            tcc.lock().push(t0.nanos());
            let conn = client_api
                .connect(ctx, server_host, PORT)?
                .expect("connect");
            blocked += (ctx.now() - t0).nanos();
            conn.write(ctx, b"x")?.expect("probe");
            // Wait for the server to finish with this connection before
            // the next one (sequential setup measurements).
            let _ = conn.read(ctx, 8)?;
            let _ = conn.close(ctx);
        }
        out3.lock().0 = blocked as f64 / 1000.0 / f64::from(iters);
        Ok(())
    });
    sim.run();
    let (blocked, established) = *out.lock();
    assert!(blocked.is_finite() && established.is_finite());
    (blocked, established)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emp_vs_kernel_latency_gap() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let emp = one_way_latency_us(&sim, &tb, 4, 30);
        let sim = Sim::new();
        let tb = Testbed::kernel_default(2);
        let tcp = one_way_latency_us(&sim, &tb, 4, 30);
        // Abstract: "28.5/37 us vs 120 us" — a 3-4x improvement.
        let ratio = tcp / emp;
        assert!(
            (2.5..4.5).contains(&ratio),
            "latency improvement {ratio:.2}x (emp {emp:.1} us, tcp {tcp:.1} us)"
        );
    }

    #[test]
    fn connect_costs_match_the_paper() {
        let sim = Sim::new();
        let tb = Testbed::kernel_default(2);
        let (tcp_blocked, _tcp_est) = connect_times_us(&sim, &tb, 10);
        assert!(
            (180.0..280.0).contains(&tcp_blocked),
            "TCP connect blocks {tcp_blocked:.0} us (paper: 200-250)"
        );
        let sim = Sim::new();
        // Credit size 4, as §7.4's web server — fewer descriptors to post
        // and garbage-collect per connection.
        let tb = Testbed::emp(
            2,
            emp_proto::EmpConfig::default(),
            sockets_emp::SubstrateConfig::ds_da_uq().with_credits(4),
            "emp-c4",
        );
        let (emp_blocked, emp_est) = connect_times_us(&sim, &tb, 10);
        assert!(
            emp_blocked < tcp_blocked / 2.0,
            "substrate connect ({emp_blocked:.0} us) is just local posting"
        );
        assert!(
            emp_est < 120.0,
            "established within a message exchange: {emp_est:.0} us"
        );
    }

    #[test]
    fn traced_pingpong_breakdown_sums_to_measured_rtt() {
        use simnet::emp_trace;
        if !emp_trace::ENABLED {
            return; // meaningful only with `--features trace`
        }
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let iters = 30;
        let run = traced_pingpong(&sim, &tb, 4, iters);
        assert_eq!(run.dropped, 0, "ring must hold the whole measured run");
        assert!(!run.events.is_empty(), "traced run must record events");

        // The milestone tiling must reproduce the measured RTT: the
        // breakdown window covers the iters round trips, so its per-RTT
        // mean and the wall-clock measurement agree within 5% (the only
        // slack is the sub-µs tail after the last SockReadEnd).
        let b = emp_trace::Breakdown::compute(&run.events).expect("complete window");
        assert_eq!(b.stage_ns.iter().sum::<u64>(), b.total_ns());
        assert_eq!(b.legs, u64::from(iters) * 2, "two socket reads per RTT");
        let trace_rtt_ns = b.mean_rtt_ns().expect("enough legs");
        let measured_rtt_ns = run.one_way_us * 2.0 * 1e3;
        let err = (trace_rtt_ns - measured_rtt_ns).abs() / measured_rtt_ns;
        assert!(
            err < 0.05,
            "breakdown rtt {trace_rtt_ns:.0} ns vs measured {measured_rtt_ns:.0} ns ({:.1}% off)",
            err * 100.0
        );
        // Every stage the paper budgets must be visibly non-zero.
        for stage in emp_trace::STAGES {
            assert!(
                b.stage(stage) > 0,
                "stage '{}' missing from the budget",
                stage.name()
            );
        }

        // The Chrome export must be structurally valid JSON (the writer
        // emits no strings containing braces or brackets, so balanced
        // delimiters plus the envelope prove well-formedness).
        let json = emp_trace::chrome_trace_json(&run.events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        let count = |c| json.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
        assert!(json.matches("\"ph\":\"i\"").count() >= run.events.len());
    }

    #[test]
    fn latency_grows_with_message_size() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let small = one_way_latency_us(&sim, &tb, 4, 20);
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let large = one_way_latency_us(&sim, &tb, 4096, 20);
        assert!(
            large > small + 10.0,
            "4 KiB ({large:.1}) vs 4 B ({small:.1})"
        );
    }
}
