//! [`NetApi`] adapters for the two stacks under comparison.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;
use kernel_tcp::{TcpApi, TcpConn, TcpError, TcpListener};
use simnet::{MacAddr, ProcessCtx, SimResult};
use sockets_emp::{Connection, EmpSockets, Listener, SockAddr as EmpAddr, SockError};

use crate::api::{Conn, NetApi, NetConn, NetError, NetListener};

// ---------------------------------------------------------------------
// Sockets-over-EMP adapter
// ---------------------------------------------------------------------

/// The substrate as a [`NetApi`].
pub struct EmpNet {
    sockets: EmpSockets,
    label: String,
}

impl EmpNet {
    /// Wrap a substrate instance; `label` shows up in reports.
    pub fn new(sockets: EmpSockets, label: impl Into<String>) -> Self {
        EmpNet {
            sockets,
            label: label.into(),
        }
    }

    /// The wrapped substrate.
    pub fn sockets(&self) -> &EmpSockets {
        &self.sockets
    }
}

struct EmpConnAdapter(Connection);
struct EmpListenerAdapter(Listener);

fn from_sock_err(e: SockError) -> NetError {
    match e {
        SockError::ConnectionRefused => NetError::Refused,
        SockError::Closed => NetError::Closed,
        SockError::PeerClosed => NetError::PeerClosed,
        SockError::MessageTooBig { .. } => NetError::TooBig,
        other => NetError::Other(other.to_string()),
    }
}

impl NetConn for EmpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_sock_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetListener for EmpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .accept(ctx)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }
}

impl NetApi for EmpNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .sockets
            .connect(ctx, EmpAddr::new(host, port))?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .sockets
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(EmpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_sock_err))
    }

    fn select_readable(&self, ctx: &ProcessCtx, conns: &[&Conn]) -> SimResult<usize> {
        let inner: Vec<&Connection> = conns
            .iter()
            .map(|c| {
                &c.as_any()
                    .downcast_ref::<EmpConnAdapter>()
                    .expect("EMP api selects EMP connections")
                    .0
            })
            .collect();
        self.sockets.select_readable(ctx, &inner)
    }

    fn local_host(&self) -> MacAddr {
        self.sockets.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------
// Kernel TCP adapter
// ---------------------------------------------------------------------

/// The kernel baseline as a [`NetApi`].
pub struct KernelNet {
    api: TcpApi,
    label: String,
}

impl KernelNet {
    /// Wrap a kernel sockets API.
    pub fn new(api: TcpApi, label: impl Into<String>) -> Self {
        KernelNet {
            api,
            label: label.into(),
        }
    }

    /// The wrapped kernel API.
    pub fn api(&self) -> &TcpApi {
        &self.api
    }
}

struct TcpConnAdapter(TcpConn);
struct TcpListenerAdapter(TcpListener);

fn from_tcp_err(e: TcpError) -> NetError {
    match e {
        TcpError::ConnectionRefused => NetError::Refused,
        TcpError::ConnectionReset => NetError::PeerClosed,
        TcpError::Closed => NetError::Closed,
        TcpError::AddrInUse => NetError::Other("address in use".into()),
    }
}

impl NetConn for TcpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_tcp_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_tcp_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer_addr().host
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetListener for TcpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        let conn = self.0.accept(ctx)?;
        Ok(Ok(Box::new(TcpConnAdapter(conn)) as Conn))
    }

    fn close(&self, _ctx: &ProcessCtx) -> SimResult<()> {
        self.0.unlisten();
        Ok(())
    }
}

impl NetApi for KernelNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .api
            .connect(ctx, kernel_tcp::SockAddr::new(host, port))?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .api
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(TcpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_tcp_err))
    }

    fn select_readable(&self, ctx: &ProcessCtx, conns: &[&Conn]) -> SimResult<usize> {
        let inner: Vec<&TcpConn> = conns
            .iter()
            .map(|c| {
                &c.as_any()
                    .downcast_ref::<TcpConnAdapter>()
                    .expect("kernel api selects kernel connections")
                    .0
            })
            .collect();
        self.api.select_readable(ctx, &inner)
    }

    fn local_host(&self) -> MacAddr {
        self.api.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Convenience: arc up an adapter.
pub fn arc_api<T: NetApi>(api: T) -> Arc<dyn NetApi> {
    Arc::new(api)
}
