//! [`NetApi`] adapters for the two stacks under comparison.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;
use kernel_tcp::{TcpApi, TcpConn, TcpError, TcpListener, TcpPollSource, TcpPollTarget};
use simnet::{Event, Interest, MacAddr, ProcessCtx, SimDuration, SimResult, SimTime};
use sockets_emp::{Connection, EmpSockets, Listener, PollSet, SockAddr as EmpAddr, SockError};

use crate::api::{
    Conn, Cqe, NetApi, NetConn, NetError, NetListener, NetRing, PollSource, PollTarget, RingConfig,
    RingCounters, RingDepths, RingError, Sqe,
};

// ---------------------------------------------------------------------
// Sockets-over-EMP adapter
// ---------------------------------------------------------------------

/// The substrate as a [`NetApi`].
pub struct EmpNet {
    sockets: EmpSockets,
    label: String,
}

impl EmpNet {
    /// Wrap a substrate instance; `label` shows up in reports.
    pub fn new(sockets: EmpSockets, label: impl Into<String>) -> Self {
        EmpNet {
            sockets,
            label: label.into(),
        }
    }

    /// The wrapped substrate.
    pub fn sockets(&self) -> &EmpSockets {
        &self.sockets
    }
}

struct EmpConnAdapter(Connection);
struct EmpListenerAdapter(Listener);

fn from_sock_err(e: SockError) -> NetError {
    match e {
        SockError::ConnectionRefused => NetError::Refused,
        SockError::Closed => NetError::Closed,
        SockError::PeerClosed => NetError::PeerClosed,
        SockError::MessageTooBig { .. } => NetError::TooBig,
        SockError::WouldBlock => NetError::WouldBlock,
        SockError::Invalid => NetError::Invalid,
        SockError::Timeout => NetError::Timeout,
        SockError::ResourceExhausted => NetError::Exhausted,
        other => NetError::Other(other.to_string()),
    }
}

/// Downcast a facade connection to the substrate's.
fn emp_conn(c: &Conn) -> &Connection {
    &c.as_any()
        .downcast_ref::<EmpConnAdapter>()
        .expect("EMP api polls EMP connections")
        .0
}

/// Downcast a facade listener to the substrate's.
fn emp_listener(l: &dyn NetListener) -> &Listener {
    &l.as_any()
        .downcast_ref::<EmpListenerAdapter>()
        .expect("EMP api polls EMP listeners")
        .0
}

impl NetConn for EmpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_sock_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_sock_err))
    }

    fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.try_write(ctx, data)?.map_err(from_sock_err))
    }

    fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.try_read(ctx, max)?.map_err(from_sock_err))
    }

    fn read_deadline(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        deadline: SimDuration,
    ) -> SimResult<Result<Bytes, NetError>> {
        Ok(self
            .0
            .read_deadline(ctx, max, deadline)?
            .map_err(from_sock_err))
    }

    fn write_deadline(
        &self,
        ctx: &ProcessCtx,
        data: &[u8],
        deadline: SimDuration,
    ) -> SimResult<Result<usize, NetError>> {
        Ok(self
            .0
            .write_deadline(ctx, data, deadline)?
            .map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn writable(&self) -> bool {
        self.0.writable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer()
    }

    fn flush(&self, ctx: &ProcessCtx) -> SimResult<Result<(), NetError>> {
        Ok(self.0.flush(ctx)?.map_err(from_sock_err))
    }

    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats> {
        Some(self.0.stats())
    }

    fn poll_ready(
        &self,
        ctx: &ProcessCtx,
        interest: Interest,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>> {
        Ok(self
            .0
            .poll_ready(ctx, interest, waker)?
            .map_err(from_sock_err))
    }

    fn cancel_ready(&self, ctx: &ProcessCtx) -> SimResult<Result<(), NetError>> {
        Ok(self.0.cancel_ready(ctx)?.map_err(from_sock_err))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NetListener for EmpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .accept(ctx)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .try_accept(ctx)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn accept_deadline(
        &self,
        ctx: &ProcessCtx,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .accept_deadline(ctx, deadline)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn poll_acceptable(
        &self,
        ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>> {
        Ok(self.0.poll_acceptable(ctx, waker)?.map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NetApi for EmpNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .sockets
            .connect(ctx, EmpAddr::new(host, port))?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn connect_deadline(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .sockets
            .connect_deadline(ctx, EmpAddr::new(host, port), deadline)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .sockets
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(EmpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_sock_err))
    }

    fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[PollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, NetError>> {
        let mut set = PollSet::new();
        for src in sources {
            match &src.target {
                PollTarget::Conn(c) => set.register_conn(emp_conn(c), src.token, src.interest),
                PollTarget::Listener(l) => {
                    set.register_listener(emp_listener(*l), src.token, src.interest);
                }
            }
        }
        Ok(set.poll(ctx, timeout)?.map_err(from_sock_err))
    }

    fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&Conn],
    ) -> SimResult<Result<usize, NetError>> {
        let inner: Vec<&Connection> = conns.iter().map(|c| emp_conn(c)).collect();
        Ok(self
            .sockets
            .select_readable(ctx, &inner)?
            .map_err(from_sock_err))
    }

    fn local_host(&self) -> MacAddr {
        self.sockets.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn ring(&self, cfg: RingConfig, label: &str) -> Box<dyn NetRing> {
        Box::new(EmpRingAdapter(sockets_emp::ring::ring(cfg, label)))
    }

    fn substrate(&self) -> Option<&EmpSockets> {
        Some(&self.sockets)
    }
}

// ---------------------------------------------------------------------
// Kernel TCP adapter
// ---------------------------------------------------------------------

/// The kernel baseline as a [`NetApi`].
pub struct KernelNet {
    api: TcpApi,
    label: String,
}

impl KernelNet {
    /// Wrap a kernel sockets API.
    pub fn new(api: TcpApi, label: impl Into<String>) -> Self {
        KernelNet {
            api,
            label: label.into(),
        }
    }

    /// The wrapped kernel API.
    pub fn api(&self) -> &TcpApi {
        &self.api
    }
}

struct TcpConnAdapter(TcpConn);
struct TcpListenerAdapter(TcpListener);

fn from_tcp_err(e: TcpError) -> NetError {
    match e {
        TcpError::ConnectionRefused => NetError::Refused,
        TcpError::ConnectionReset => NetError::PeerClosed,
        TcpError::Closed => NetError::Closed,
        TcpError::AddrInUse => NetError::Other("address in use".into()),
        TcpError::WouldBlock => NetError::WouldBlock,
        TcpError::Invalid => NetError::Invalid,
        TcpError::Timeout => NetError::Timeout,
        TcpError::Exhausted => NetError::Exhausted,
    }
}

/// Downcast a facade connection to the kernel stack's.
fn tcp_conn(c: &Conn) -> &TcpConn {
    &c.as_any()
        .downcast_ref::<TcpConnAdapter>()
        .expect("kernel api polls kernel connections")
        .0
}

/// Downcast a facade listener to the kernel stack's.
fn tcp_listener(l: &dyn NetListener) -> &TcpListener {
    &l.as_any()
        .downcast_ref::<TcpListenerAdapter>()
        .expect("kernel api polls kernel listeners")
        .0
}

impl NetConn for TcpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_tcp_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_tcp_err))
    }

    fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.try_write(ctx, data)?.map_err(from_tcp_err))
    }

    fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.try_read(ctx, max)?.map_err(from_tcp_err))
    }

    fn read_deadline(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        deadline: SimDuration,
    ) -> SimResult<Result<Bytes, NetError>> {
        Ok(self
            .0
            .read_deadline(ctx, max, deadline)?
            .map_err(from_tcp_err))
    }

    fn write_deadline(
        &self,
        ctx: &ProcessCtx,
        data: &[u8],
        deadline: SimDuration,
    ) -> SimResult<Result<usize, NetError>> {
        Ok(self
            .0
            .write_deadline(ctx, data, deadline)?
            .map_err(from_tcp_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn writable(&self) -> bool {
        self.0.writable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer_addr().host
    }

    fn poll_ready(
        &self,
        _ctx: &ProcessCtx,
        interest: Interest,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>> {
        // Pure check-and-arm on the stack's activity condvar; the
        // kernel stack has no stateful wake source to disarm, so the
        // default no-op `cancel_ready` is correct here.
        Ok(Ok(self.0.poll_ready(interest, waker)))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NetListener for TcpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        let conn = self.0.accept(ctx)?;
        Ok(Ok(Box::new(TcpConnAdapter(conn)) as Conn))
    }

    fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .try_accept(ctx)?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn accept_deadline(
        &self,
        ctx: &ProcessCtx,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .accept_deadline(ctx, deadline)?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn poll_acceptable(
        &self,
        _ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>> {
        Ok(Ok(self.0.poll_acceptable(waker)))
    }

    fn close(&self, _ctx: &ProcessCtx) -> SimResult<()> {
        self.0.unlisten();
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NetApi for KernelNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .api
            .connect(ctx, kernel_tcp::SockAddr::new(host, port))?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn connect_deadline(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .api
            .connect_deadline(ctx, kernel_tcp::SockAddr::new(host, port), deadline)?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .api
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(TcpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_tcp_err))
    }

    fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[PollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, NetError>> {
        let inner: Vec<TcpPollSource<'_>> = sources
            .iter()
            .map(|src| TcpPollSource {
                target: match &src.target {
                    PollTarget::Conn(c) => TcpPollTarget::Conn(tcp_conn(c)),
                    PollTarget::Listener(l) => TcpPollTarget::Listener(tcp_listener(*l)),
                },
                token: src.token,
                interest: src.interest,
            })
            .collect();
        Ok(self.api.poll(ctx, &inner, timeout)?.map_err(from_tcp_err))
    }

    fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&Conn],
    ) -> SimResult<Result<usize, NetError>> {
        let inner: Vec<&TcpConn> = conns.iter().map(|c| tcp_conn(c)).collect();
        Ok(self.api.select_readable(ctx, &inner)?.map_err(from_tcp_err))
    }

    fn local_host(&self) -> MacAddr {
        self.api.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn ring(&self, cfg: RingConfig, label: &str) -> Box<dyn NetRing> {
        Box::new(TcpRingAdapter(kernel_tcp::ring::ring(
            self.api.clone(),
            cfg,
            label,
        )))
    }

    fn tcp_stack(&self) -> Option<&Arc<kernel_tcp::TcpStack>> {
        Some(self.api.stack())
    }
}

// ---------------------------------------------------------------------
// Completion-ring adapters
// ---------------------------------------------------------------------

/// The substrate's completion ring behind the facade. Registration is
/// an *owning* downcast: the facade box is consumed and the bare
/// [`Connection`]/[`Listener`] moves into the ring.
struct EmpRingAdapter(sockets_emp::EmpRing);

/// The kernel stack's completion ring behind the facade.
struct TcpRingAdapter(kernel_tcp::TcpRing);

/// Forward the stack-independent [`NetRing`] surface to the wrapped
/// [`simnet::ring::RingCore`]; only target registration (the owning
/// downcasts) and `substrate_stats` differ per stack.
macro_rules! forward_ring {
    () => {
        fn fill(&mut self, buf: u32, data: &[u8]) -> Result<(), RingError> {
            self.0.fill(buf, data)
        }

        fn buf(&self, buf: u32) -> Option<&[u8]> {
            self.0.buf(buf)
        }

        fn push(&mut self, sqe: Sqe) -> Result<(), RingError> {
            self.0.push(sqe)
        }

        fn submit(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
            self.0.submit(ctx)
        }

        fn submit_and_wait(
            &mut self,
            ctx: &ProcessCtx,
            min_complete: usize,
        ) -> SimResult<Result<(), RingError>> {
            self.0.submit_and_wait(ctx, min_complete)
        }

        fn reap(&mut self, max: usize) -> Vec<Cqe> {
            self.0.reap(max)
        }

        fn depths(&self) -> RingDepths {
            self.0.depths()
        }

        fn counters(&self) -> RingCounters {
            self.0.counters()
        }

        fn free_bufs(&self) -> usize {
            self.0.free_bufs()
        }

        fn live_conns(&self) -> usize {
            self.0.live_conns()
        }

        fn cfg(&self) -> RingConfig {
            self.0.cfg()
        }

        fn cancel(&mut self, ctx: &ProcessCtx, user_data: u64) -> bool {
            self.0.cancel(ctx, user_data)
        }

        fn register_waker(
            &mut self,
            ctx: &ProcessCtx,
            waker: &std::task::Waker,
        ) -> SimResult<Option<SimTime>> {
            self.0.register_waker(ctx, waker)
        }

        fn shutdown(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
            self.0.shutdown(ctx)
        }
    };
}

impl NetRing for EmpRingAdapter {
    fn add_conn(&mut self, conn: Conn) -> u32 {
        let c = conn
            .into_any()
            .downcast::<EmpConnAdapter>()
            .expect("EMP ring registers EMP connections");
        self.0.add_conn(c.0)
    }

    fn add_listener(&mut self, l: Box<dyn NetListener>) -> u32 {
        let l = l
            .into_any()
            .downcast::<EmpListenerAdapter>()
            .expect("EMP ring registers EMP listeners");
        self.0.add_listener(l.0)
    }

    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats> {
        Some(self.0.driver().closed_stats())
    }

    forward_ring!();
}

impl NetRing for TcpRingAdapter {
    fn add_conn(&mut self, conn: Conn) -> u32 {
        let c = conn
            .into_any()
            .downcast::<TcpConnAdapter>()
            .expect("kernel ring registers kernel connections");
        self.0.add_conn(c.0)
    }

    fn add_listener(&mut self, l: Box<dyn NetListener>) -> u32 {
        let l = l
            .into_any()
            .downcast::<TcpListenerAdapter>()
            .expect("kernel ring registers kernel listeners");
        self.0.add_listener(l.0)
    }

    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats> {
        None
    }

    forward_ring!();
}

/// Convenience: arc up an adapter.
pub fn arc_api<T: NetApi>(api: T) -> Arc<dyn NetApi> {
    Arc::new(api)
}
