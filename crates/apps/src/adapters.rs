//! [`NetApi`] adapters for the two stacks under comparison.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;
use kernel_tcp::{TcpApi, TcpConn, TcpError, TcpListener, TcpPollSource, TcpPollTarget};
use simnet::{Event, MacAddr, ProcessCtx, SimDuration, SimResult};
use sockets_emp::{Connection, EmpSockets, Listener, PollSet, SockAddr as EmpAddr, SockError};

use crate::api::{Conn, NetApi, NetConn, NetError, NetListener, PollSource, PollTarget};

// ---------------------------------------------------------------------
// Sockets-over-EMP adapter
// ---------------------------------------------------------------------

/// The substrate as a [`NetApi`].
pub struct EmpNet {
    sockets: EmpSockets,
    label: String,
}

impl EmpNet {
    /// Wrap a substrate instance; `label` shows up in reports.
    pub fn new(sockets: EmpSockets, label: impl Into<String>) -> Self {
        EmpNet {
            sockets,
            label: label.into(),
        }
    }

    /// The wrapped substrate.
    pub fn sockets(&self) -> &EmpSockets {
        &self.sockets
    }
}

struct EmpConnAdapter(Connection);
struct EmpListenerAdapter(Listener);

fn from_sock_err(e: SockError) -> NetError {
    match e {
        SockError::ConnectionRefused => NetError::Refused,
        SockError::Closed => NetError::Closed,
        SockError::PeerClosed => NetError::PeerClosed,
        SockError::MessageTooBig { .. } => NetError::TooBig,
        SockError::WouldBlock => NetError::WouldBlock,
        SockError::Invalid => NetError::Invalid,
        other => NetError::Other(other.to_string()),
    }
}

/// Downcast a facade connection to the substrate's.
fn emp_conn(c: &Conn) -> &Connection {
    &c.as_any()
        .downcast_ref::<EmpConnAdapter>()
        .expect("EMP api polls EMP connections")
        .0
}

/// Downcast a facade listener to the substrate's.
fn emp_listener(l: &dyn NetListener) -> &Listener {
    &l.as_any()
        .downcast_ref::<EmpListenerAdapter>()
        .expect("EMP api polls EMP listeners")
        .0
}

impl NetConn for EmpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_sock_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_sock_err))
    }

    fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.try_write(ctx, data)?.map_err(from_sock_err))
    }

    fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.try_read(ctx, max)?.map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn writable(&self) -> bool {
        self.0.writable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer()
    }

    fn flush(&self, ctx: &ProcessCtx) -> SimResult<Result<(), NetError>> {
        Ok(self.0.flush(ctx)?.map_err(from_sock_err))
    }

    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats> {
        Some(self.0.stats())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetListener for EmpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .accept(ctx)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .try_accept(ctx)?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetApi for EmpNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .sockets
            .connect(ctx, EmpAddr::new(host, port))?
            .map(|c| Box::new(EmpConnAdapter(c)) as Conn)
            .map_err(from_sock_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .sockets
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(EmpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_sock_err))
    }

    fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[PollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, NetError>> {
        let mut set = PollSet::new();
        for src in sources {
            match &src.target {
                PollTarget::Conn(c) => set.register_conn(emp_conn(c), src.token, src.interest),
                PollTarget::Listener(l) => {
                    set.register_listener(emp_listener(*l), src.token, src.interest);
                }
            }
        }
        Ok(set.poll(ctx, timeout)?.map_err(from_sock_err))
    }

    fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&Conn],
    ) -> SimResult<Result<usize, NetError>> {
        let inner: Vec<&Connection> = conns.iter().map(|c| emp_conn(c)).collect();
        Ok(self
            .sockets
            .select_readable(ctx, &inner)?
            .map_err(from_sock_err))
    }

    fn local_host(&self) -> MacAddr {
        self.sockets.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

// ---------------------------------------------------------------------
// Kernel TCP adapter
// ---------------------------------------------------------------------

/// The kernel baseline as a [`NetApi`].
pub struct KernelNet {
    api: TcpApi,
    label: String,
}

impl KernelNet {
    /// Wrap a kernel sockets API.
    pub fn new(api: TcpApi, label: impl Into<String>) -> Self {
        KernelNet {
            api,
            label: label.into(),
        }
    }

    /// The wrapped kernel API.
    pub fn api(&self) -> &TcpApi {
        &self.api
    }
}

struct TcpConnAdapter(TcpConn);
struct TcpListenerAdapter(TcpListener);

fn from_tcp_err(e: TcpError) -> NetError {
    match e {
        TcpError::ConnectionRefused => NetError::Refused,
        TcpError::ConnectionReset => NetError::PeerClosed,
        TcpError::Closed => NetError::Closed,
        TcpError::AddrInUse => NetError::Other("address in use".into()),
        TcpError::WouldBlock => NetError::WouldBlock,
        TcpError::Invalid => NetError::Invalid,
    }
}

/// Downcast a facade connection to the kernel stack's.
fn tcp_conn(c: &Conn) -> &TcpConn {
    &c.as_any()
        .downcast_ref::<TcpConnAdapter>()
        .expect("kernel api polls kernel connections")
        .0
}

/// Downcast a facade listener to the kernel stack's.
fn tcp_listener(l: &dyn NetListener) -> &TcpListener {
    &l.as_any()
        .downcast_ref::<TcpListenerAdapter>()
        .expect("kernel api polls kernel listeners")
        .0
}

impl NetConn for TcpConnAdapter {
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.write(ctx, data)?.map_err(from_tcp_err))
    }

    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.read(ctx, max)?.map_err(from_tcp_err))
    }

    fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>> {
        Ok(self.0.try_write(ctx, data)?.map_err(from_tcp_err))
    }

    fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>> {
        Ok(self.0.try_read(ctx, max)?.map_err(from_tcp_err))
    }

    fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.0.close(ctx)
    }

    fn readable(&self) -> bool {
        self.0.readable()
    }

    fn writable(&self) -> bool {
        self.0.writable()
    }

    fn peer_host(&self) -> MacAddr {
        self.0.peer_addr().host
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetListener for TcpListenerAdapter {
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        let conn = self.0.accept(ctx)?;
        Ok(Ok(Box::new(TcpConnAdapter(conn)) as Conn))
    }

    fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .0
            .try_accept(ctx)?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn close(&self, _ctx: &ProcessCtx) -> SimResult<()> {
        self.0.unlisten();
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl NetApi for KernelNet {
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>> {
        Ok(self
            .api
            .connect(ctx, kernel_tcp::SockAddr::new(host, port))?
            .map(|c| Box::new(TcpConnAdapter(c)) as Conn)
            .map_err(from_tcp_err))
    }

    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>> {
        Ok(self
            .api
            .listen(ctx, port, backlog)?
            .map(|l| Box::new(TcpListenerAdapter(l)) as Box<dyn NetListener>)
            .map_err(from_tcp_err))
    }

    fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[PollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, NetError>> {
        let inner: Vec<TcpPollSource<'_>> = sources
            .iter()
            .map(|src| TcpPollSource {
                target: match &src.target {
                    PollTarget::Conn(c) => TcpPollTarget::Conn(tcp_conn(c)),
                    PollTarget::Listener(l) => TcpPollTarget::Listener(tcp_listener(*l)),
                },
                token: src.token,
                interest: src.interest,
            })
            .collect();
        Ok(self.api.poll(ctx, &inner, timeout)?.map_err(from_tcp_err))
    }

    fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&Conn],
    ) -> SimResult<Result<usize, NetError>> {
        let inner: Vec<&TcpConn> = conns.iter().map(|c| tcp_conn(c)).collect();
        Ok(self.api.select_readable(ctx, &inner)?.map_err(from_tcp_err))
    }

    fn local_host(&self) -> MacAddr {
        self.api.local_host()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Convenience: arc up an adapter.
pub fn arc_api<T: NetApi>(api: T) -> Arc<dyn NetApi> {
    Arc::new(api)
}
