//! A stack-agnostic sockets facade.
//!
//! The paper's whole point is that the *same application* runs over kernel
//! TCP and over the EMP substrate. This module is that seam: every
//! application in this crate is written against [`NetApi`]/[`NetConn`],
//! and adapters implement them for both stacks.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;
use simnet::{MacAddr, ProcessCtx, SimDuration, SimResult, SimTime};

pub use simnet::ring::{
    Cqe, CqeResult, OpError, RingConfig, RingCounters, RingDepths, RingError, RingOp, Sqe,
};
pub use simnet::{Event, Interest};

/// Unified socket errors across stacks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Nobody listening (or backlog overflow).
    Refused,
    /// Local socket closed.
    Closed,
    /// Peer closed or reset.
    PeerClosed,
    /// Message exceeds what the receiver accepts (datagram substrates).
    TooBig,
    /// A nonblocking operation found nothing to do (EAGAIN); retry after
    /// [`NetApi::poll`] reports readiness.
    WouldBlock,
    /// Invalid argument (EINVAL): e.g. a poll that could never wake.
    Invalid,
    /// A deadline expired before the operation completed (ETIMEDOUT):
    /// a bounded connect, or a deadlined read/write/accept.
    Timeout,
    /// A resource budget was exhausted (ENOBUFS): connection budgets,
    /// reorder-buffer caps, registered-buffer pools. Both stacks surface
    /// the same variant for the same exhaustion condition.
    Exhausted,
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Refused => write!(f, "connection refused"),
            NetError::Closed => write!(f, "socket closed"),
            NetError::PeerClosed => write!(f, "peer closed"),
            NetError::TooBig => write!(f, "message too big"),
            NetError::WouldBlock => write!(f, "operation would block"),
            NetError::Invalid => write!(f, "invalid argument"),
            NetError::Timeout => write!(f, "operation timed out"),
            NetError::Exhausted => write!(f, "resource budget exhausted"),
            NetError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One established connection.
pub trait NetConn: Send + Sync + 'static {
    /// Write the whole buffer (blocking).
    fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>>;
    /// Read up to `max` bytes; empty = EOF.
    fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>>;
    /// Nonblocking write: accept what fits right now (a partial count);
    /// [`NetError::WouldBlock`] when no byte could be taken.
    fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, NetError>>;
    /// Nonblocking read: serve what is already there; empty = EOF;
    /// [`NetError::WouldBlock`] when a blocking read would park.
    fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, NetError>>;
    /// [`Self::read`] bounded by `deadline`: [`NetError::Timeout`] when
    /// nothing becomes readable in time.
    fn read_deadline(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        deadline: SimDuration,
    ) -> SimResult<Result<Bytes, NetError>>;
    /// [`Self::write`] bounded by `deadline`: returns the (possibly
    /// short) count accepted before the deadline; [`NetError::Timeout`]
    /// when not a single byte was taken in time.
    fn write_deadline(
        &self,
        ctx: &ProcessCtx,
        data: &[u8],
        deadline: SimDuration,
    ) -> SimResult<Result<usize, NetError>>;
    /// Orderly close.
    fn close(&self, ctx: &ProcessCtx) -> SimResult<()>;
    /// Would `read` return without blocking?
    fn readable(&self) -> bool;
    /// Would `write` make progress without blocking?
    fn writable(&self) -> bool;
    /// The remote station.
    fn peer_host(&self) -> MacAddr;
    /// Downcast support for stack-specific `select()`/`poll()`.
    fn as_any(&self) -> &dyn Any;
    /// Consume the box for an owning downcast — how a facade connection
    /// moves into a stack's completion ring ([`NetRing::add_conn`]).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;

    /// Flush any writes the stack buffered for aggregation (the EMP
    /// substrate's small-write coalescing). No-op on stacks without a
    /// staging buffer.
    fn flush(&self, _ctx: &ProcessCtx) -> SimResult<Result<(), NetError>> {
        Ok(Ok(()))
    }

    /// The EMP substrate's per-connection counters, when this connection
    /// runs over it (`None` on other stacks).
    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats> {
        None
    }

    /// Nonblocking readiness check that arms a [`std::task::Waker`]: the
    /// returned interests are what is ready *right now* (possibly empty);
    /// when empty, `waker` fires once something in `interest` (or an
    /// error) becomes ready. The async front end's bridge into the
    /// readiness layer — registration is check-then-arm with a recheck,
    /// so a wake racing the registration resolves toward a spurious
    /// recheck, never a lost wakeup.
    ///
    /// A caller that armed write interest and then walks away without
    /// the wake having fired must call [`Self::cancel_ready`] (stacks
    /// may have armed stateful wake sources, e.g. the EMP substrate's
    /// flow-control ack watch).
    fn poll_ready(
        &self,
        ctx: &ProcessCtx,
        interest: Interest,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>>;

    /// Disarm any stateful wake source a prior [`Self::poll_ready`]
    /// armed. Idempotent; the drop-guard hook for cancelled futures.
    /// No-op on stacks whose wake sources are stateless.
    fn cancel_ready(&self, _ctx: &ProcessCtx) -> SimResult<Result<(), NetError>> {
        Ok(Ok(()))
    }

    /// Read exactly `n` bytes; `None` on premature EOF.
    fn read_exact(&self, ctx: &ProcessCtx, n: usize) -> SimResult<Result<Option<Bytes>, NetError>> {
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let chunk = match self.read(ctx, n - buf.len())? {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            if chunk.is_empty() {
                return Ok(Ok(None));
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Ok(Some(Bytes::from(buf))))
    }
}

/// A boxed connection, as applications hold it.
pub type Conn = Box<dyn NetConn>;

/// A listening socket.
pub trait NetListener: Send + Sync + 'static {
    /// Block for the next connection.
    fn accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>>;
    /// Nonblocking accept: [`NetError::WouldBlock`] on an empty backlog.
    fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<Conn, NetError>>;
    /// [`Self::accept`] bounded by `deadline`: [`NetError::Timeout`]
    /// when no connection arrives in time.
    fn accept_deadline(
        &self,
        ctx: &ProcessCtx,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>>;
    /// Nonblocking acceptability check that arms a [`std::task::Waker`]:
    /// [`Interest::ACCEPTABLE`] when the backlog is non-empty, otherwise
    /// empty with `waker` armed for the next arrival. Same
    /// check-then-arm contract as [`NetConn::poll_ready`].
    fn poll_acceptable(
        &self,
        ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> SimResult<Result<Interest, NetError>>;
    /// Stop listening.
    fn close(&self, ctx: &ProcessCtx) -> SimResult<()>;
    /// Downcast support for stack-specific `poll()`.
    fn as_any(&self) -> &dyn Any;
    /// Consume the box for an owning downcast — how a facade listener
    /// moves into a stack's completion ring ([`NetRing::add_listener`]).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// What one [`PollSource`] watches: a connection or a listener.
pub enum PollTarget<'a> {
    /// An established connection (readable/writable interests).
    Conn(&'a Conn),
    /// A listening socket (acceptable interest).
    Listener(&'a dyn NetListener),
}

/// One registration of a [`NetApi::poll`] call: target, caller-chosen
/// token, and the interests to watch.
pub struct PollSource<'a> {
    /// The socket to watch.
    pub target: PollTarget<'a>,
    /// Token reported back in the matching [`Event`].
    pub token: usize,
    /// Interests to watch ([`Interest::ERROR`] is always reported).
    pub interest: Interest,
}

/// A stack's completion ring behind the facade: the
/// submission/completion I/O model ([`simnet::ring`]) with facade
/// connections and listeners as the registered targets. Applications
/// written against this trait (the `ServerModel::Completion` servers)
/// run unchanged over both stacks, like the readiness servers do over
/// [`NetApi::poll`].
pub trait NetRing {
    /// Register a facade connection; it must come from the same stack
    /// that built this ring.
    fn add_conn(&mut self, conn: Conn) -> u32;
    /// Register a facade listener from the same stack.
    fn add_listener(&mut self, l: Box<dyn NetListener>) -> u32;
    /// Copy `data` into the front of a free registered buffer.
    fn fill(&mut self, buf: u32, data: &[u8]) -> Result<(), RingError>;
    /// Read access to a registered buffer.
    fn buf(&self, buf: u32) -> Option<&[u8]>;
    /// Queue one op ([`simnet::ring::RingCore::push`] semantics).
    fn push(&mut self, sqe: Sqe) -> Result<(), RingError>;
    /// Submit queued ops and drive without blocking.
    fn submit(&mut self, ctx: &ProcessCtx) -> SimResult<()>;
    /// Submit, then park until `min_complete` completions are reapable.
    fn submit_and_wait(
        &mut self,
        ctx: &ProcessCtx,
        min_complete: usize,
    ) -> SimResult<Result<(), RingError>>;
    /// Pop up to `max` completions, returning their buffers to the app.
    fn reap(&mut self, max: usize) -> Vec<Cqe>;
    /// Current occupancy.
    fn depths(&self) -> RingDepths;
    /// Monotonic op accounting.
    fn counters(&self) -> RingCounters;
    /// Buffers currently application-owned.
    fn free_bufs(&self) -> usize;
    /// Registered connections currently live.
    fn live_conns(&self) -> usize;
    /// The geometry this ring was built with.
    fn cfg(&self) -> RingConfig;
    /// Cancel one queued op by `user_data`: it completes with
    /// [`OpError::Cancelled`] (buffer returned on reap as usual) and
    /// the remaining per-target FIFO order is preserved. `false` when
    /// no queued op carries that `user_data` (already completed, or
    /// mid-flight past the point of no return).
    fn cancel(&mut self, ctx: &ProcessCtx, user_data: u64) -> bool;
    /// Arm `waker` to fire when any stalled head op's target becomes
    /// ready. The returned instant, when `Some`, is the earliest
    /// deadline among the stalled ops (the caller owns the timer that
    /// expires it). When nothing is stalled, nothing is armed and
    /// `None` comes back — completions are already reapable, so
    /// drive/reap instead of sleeping.
    fn register_waker(
        &mut self,
        ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> SimResult<Option<SimTime>>;
    /// Fail queued ops, close every registered target, release buffers.
    fn shutdown(&mut self, ctx: &ProcessCtx) -> SimResult<()>;
    /// Aggregate EMP substrate counters of the connections this ring has
    /// closed (`None` on the kernel stack) — the evidence that ring
    /// reads ride the direct-delivery path (`copies_avoided`).
    fn substrate_stats(&self) -> Option<sockets_emp::ConnStats>;
}

/// One node's sockets interface.
pub trait NetApi: Send + Sync + 'static {
    /// Active open.
    fn connect(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<Conn, NetError>>;
    /// Active open bounded by `deadline`, with typed outcomes on both
    /// stacks: [`NetError::Refused`] when the remote positively refused
    /// (no listener, full backlog), [`NetError::Timeout`] when nobody
    /// answered in time, [`NetError::Exhausted`] past a local
    /// connection budget.
    fn connect_deadline(
        &self,
        ctx: &ProcessCtx,
        host: MacAddr,
        port: u16,
        deadline: SimDuration,
    ) -> SimResult<Result<Conn, NetError>>;
    /// Passive open.
    fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Box<dyn NetListener>, NetError>>;
    /// Block until at least one source is ready (or the timeout expires —
    /// then the empty vector), returning every ready one. The heart of an
    /// event-loop server: connections and listeners in one wait.
    fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[PollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, NetError>>;
    /// Block until one of `conns` is readable; returns its index. An
    /// empty set is [`NetError::Invalid`].
    fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&Conn],
    ) -> SimResult<Result<usize, NetError>>;
    /// This node's station address.
    fn local_host(&self) -> MacAddr;
    /// Short label for reports ("emp-ds", "tcp-16k", ...).
    fn label(&self) -> String;
    /// Build a completion ring on this stack ([`NetRing`]). `label`
    /// namespaces the ring's telemetry gauges (`ring.<label>.*`).
    fn ring(&self, cfg: RingConfig, label: &str) -> Box<dyn NetRing>;
    /// The wrapped EMP substrate, when this API runs over it (`None` on
    /// the kernel stack). Overload-harness introspection: leak checks
    /// read live-connection counts after a chaos run.
    fn substrate(&self) -> Option<&sockets_emp::EmpSockets> {
        None
    }
    /// The wrapped kernel stack, when this API runs over it (`None` on
    /// the substrate).
    fn tcp_stack(&self) -> Option<&Arc<kernel_tcp::TcpStack>> {
        None
    }
}

/// Shared handle applications pass around.
pub type Api = Arc<dyn NetApi>;
