//! A single-process completion-model server skeleton over
//! [`NetApi::ring`].
//!
//! The readiness twin of this skeleton ([`crate::eventloop`]) asks the
//! stack *when* I/O would succeed and then performs it; this one submits
//! the I/O itself — `Accept`/`Read`/`Write`/`Close` ops on a
//! submission queue over registered buffers — and consumes completions
//! in batches. Applications supply the same `service(inbuf, out)`
//! framing callback as the event loop, so the three server models
//! (per-connection, readiness event loop, completion ring) answer the
//! same protocol byte-for-byte and differ only in their I/O model.
//!
//! The discipline mirrors the event loop's: per connection at most one
//! op is in flight — a `Read` while idle, `Write`s while a response is
//! being pushed (the client is waiting on us; reading more requests
//! would only buffer them), then back to a `Read`. That caps the ring
//! footprint at one registered buffer per live connection plus the
//! armed `Accept`.

use std::collections::HashMap;

use simnet::{ProcessCtx, SimAccess, SimResult};

use crate::api::{CqeResult, NetApi, NetListener, RingConfig, RingCounters, RingOp, Sqe};

/// What one completion-model serve produced, for assertions and reports.
pub struct CompletionRun {
    /// Ring op accounting (pushed == completed == reaped at exit).
    pub counters: RingCounters,
    /// Aggregate EMP substrate counters of every served connection
    /// (`None` on the kernel stack). On the substrate,
    /// `copies_avoided > 0` here is the evidence that ring reads ride
    /// the direct-delivery path.
    pub substrate_stats: Option<sockets_emp::ConnStats>,
}

/// Registered-buffer size for the completion server (also its read
/// granularity and write chunk, matching the event loop's `READ_CHUNK`).
pub const RING_BUF_SIZE: usize = 4096;

/// Ring geometry sized for `n_conns` concurrent connections under the
/// one-op-per-connection discipline: a buffer per connection plus slack,
/// completion room for every possible in-flight op.
pub fn ring_config(n_conns: u32) -> RingConfig {
    let n = n_conns as usize;
    RingConfig {
        sq_depth: n + 8,
        cq_depth: 2 * n + 16,
        buf_count: n + 4,
        buf_size: RING_BUF_SIZE,
        max_registered_bytes: None,
    }
}

/// Per-connection state (`conn` ids live in the ring).
struct CState {
    /// Bytes received but not yet consumed by the service.
    inbuf: Vec<u8>,
    /// Bytes produced by the service but not yet accepted by the stack.
    out: Vec<u8>,
    /// How much of `out` the stack has taken.
    sent: usize,
    /// The registered buffer the in-flight op holds, returned to the
    /// free list when its completion is reaped.
    cur_buf: Option<u32>,
    /// A `Close` op has been pushed; ignore further failures.
    closing: bool,
}

/// Op kinds encoded in the `user_data` tag (high 32 bits; the low 32
/// hold the connection id).
const UD_ACCEPT: u64 = 0;
const UD_READ: u64 = 1;
const UD_WRITE: u64 = 2;
const UD_CLOSE: u64 = 3;

fn ud(kind: u64, conn: u32) -> u64 {
    (kind << 32) | u64::from(conn)
}

fn ud_conn(user_data: u64) -> u32 {
    user_data as u32
}

fn ud_kind(user_data: u64) -> u64 {
    user_data >> 32
}

/// Accept `n_conns` connections from `l` and serve them all through one
/// completion ring: ops in, completions out, no readiness callbacks.
/// Each accepted connection is greeted with `greeting` (empty for
/// none); thereafter `service(inbuf, out)` runs whenever bytes arrive —
/// it consumes any complete requests from `inbuf` and appends the
/// responses to `out`, leaving partial requests in place. Returns when
/// every connection has reached EOF (its `Close{final_seq}` completion)
/// and been retired by a `Close` op.
pub fn serve_completion(
    ctx: &ProcessCtx,
    api: &dyn NetApi,
    l: Box<dyn NetListener>,
    n_conns: u32,
    greeting: &[u8],
    mut service: impl FnMut(&mut Vec<u8>, &mut Vec<u8>),
) -> SimResult<CompletionRun> {
    let cfg = ring_config(n_conns);
    let label = format!("srv-n{}", api.local_host().0);
    let mut ring = api.ring(cfg, &label);
    let listener = ring.add_listener(l);
    let mut free_bufs: Vec<u32> = (0..cfg.buf_count as u32).rev().collect();
    let mut conns: HashMap<u32, CState> = HashMap::new();
    let mut accepted = 0u32;
    let mut open = 0u32;
    // Time spent turning each completion batch into new submissions —
    // the completion model's per-turn latency distribution.
    let turn_hist = ctx.telemetry().histogram("app.completion_turn_ns");

    if n_conns == 0 {
        let counters = ring.counters();
        let substrate_stats = ring.substrate_stats();
        ring.shutdown(ctx)?;
        return Ok(CompletionRun {
            counters,
            substrate_stats,
        });
    }
    // Arm the first accept; re-armed from each Accepted completion.
    ring.push(Sqe::new(ud(UD_ACCEPT, 0), RingOp::Accept { listener }))
        .expect("fresh ring has room");

    while accepted < n_conns || open > 0 {
        ring.submit_and_wait(ctx, 1)?
            .expect("server ring never stalls");
        let batch = ring.reap(cfg.cq_depth);
        let turn_start = ctx.now();
        for cqe in batch {
            let conn = ud_conn(cqe.user_data);
            // The completed op's buffer (if any) is application-owned
            // again as of this reap.
            if ud_kind(cqe.user_data) != UD_ACCEPT {
                if let Some(st) = conns.get_mut(&conn) {
                    if let Some(b) = st.cur_buf.take() {
                        free_bufs.push(b);
                    }
                }
            }
            match cqe.result {
                CqeResult::Accepted { conn } => {
                    accepted += 1;
                    open += 1;
                    if accepted < n_conns {
                        ring.push(Sqe::new(ud(UD_ACCEPT, 0), RingOp::Accept { listener }))
                            .expect("sq sized for the accept");
                    }
                    let mut st = CState {
                        inbuf: Vec::new(),
                        out: greeting.to_vec(),
                        sent: 0,
                        cur_buf: None,
                        closing: false,
                    };
                    next_op(&mut *ring, &mut st, conn, &mut free_bufs);
                    conns.insert(conn, st);
                }
                CqeResult::Read { buf, len } => {
                    let chunk = ring.buf(buf).expect("registered")[..len as usize].to_vec();
                    let st = conns.get_mut(&conn).expect("live conn");
                    st.inbuf.extend_from_slice(&chunk);
                    service(&mut st.inbuf, &mut st.out);
                    next_op(&mut *ring, st, conn, &mut free_bufs);
                }
                CqeResult::Wrote { len, .. } => {
                    let st = conns.get_mut(&conn).expect("live conn");
                    st.sent += len as usize;
                    if st.sent == st.out.len() {
                        st.out.clear();
                        st.sent = 0;
                    }
                    next_op(&mut *ring, st, conn, &mut free_bufs);
                }
                CqeResult::Close { conn, .. } => {
                    // EOF: the peer is done sending; retire the conn.
                    let st = conns.get_mut(&conn).expect("live conn");
                    st.closing = true;
                    ring.push(Sqe::new(ud(UD_CLOSE, conn), RingOp::Close { conn }))
                        .expect("sq sized for the close");
                }
                CqeResult::Closed { conn } => {
                    conns.remove(&conn);
                    open -= 1;
                }
                CqeResult::Failed { .. } => {
                    // A failed op (peer reset mid-exchange) tears the
                    // connection down like the event loop's error path.
                    if let Some(st) = conns.get_mut(&conn) {
                        if !st.closing {
                            st.closing = true;
                            ring.push(Sqe::new(ud(UD_CLOSE, conn), RingOp::Close { conn }))
                                .expect("sq sized for the close");
                        }
                    }
                }
            }
        }
        turn_hist.record((ctx.now() - turn_start).nanos());
    }

    let counters = ring.counters();
    let substrate_stats = ring.substrate_stats();
    ring.shutdown(ctx)?;
    debug_assert_eq!(ring.free_bufs(), cfg.buf_count, "ring leaked buffers");
    Ok(CompletionRun {
        counters,
        substrate_stats,
    })
}

/// Post the connection's next op under the one-op-in-flight discipline:
/// the next `Write` chunk while a response is pending, a `Read`
/// otherwise. No-op while closing.
fn next_op(
    ring: &mut dyn crate::api::NetRing,
    st: &mut CState,
    conn: u32,
    free_bufs: &mut Vec<u32>,
) {
    if st.closing {
        return;
    }
    let buf = free_bufs.pop().expect("pool sized one buffer per conn");
    if st.sent < st.out.len() {
        let chunk = (st.out.len() - st.sent).min(RING_BUF_SIZE);
        ring.fill(buf, &st.out[st.sent..st.sent + chunk])
            .expect("buffer off the free list");
        ring.push(Sqe::new(
            ud(UD_WRITE, conn),
            RingOp::Write {
                conn,
                buf,
                len: chunk as u32,
            },
        ))
        .expect("sq sized one op per conn");
    } else {
        ring.push(Sqe::new(ud(UD_READ, conn), RingOp::Read { conn, buf }))
            .expect("sq sized one op per conn");
    }
    st.cur_buf = Some(buf);
}
