//! Application testbeds: n-node clusters over either stack, behind the
//! common [`crate::api::NetApi`] facade.

use std::sync::Arc;

use emp_proto::{EmpCluster, EmpConfig};
use hostsim::Host;
use kernel_tcp::{TcpCluster, TcpConfig};
use simnet::SwitchConfig;
use sockets_emp::{EmpSockets, SubstrateConfig};

use crate::adapters::{EmpNet, KernelNet};
use crate::api::Api;

/// Which stack a testbed runs (the variants keep the protocol objects —
/// switch, NICs, stacks — alive for the simulation's lifetime).
#[allow(dead_code)]
enum Backing {
    Emp(EmpCluster),
    Kernel(TcpCluster),
}

/// One application node: the host plus its sockets API.
pub struct AppNode {
    /// The machine (filesystem, cost model).
    pub host: Host,
    /// The sockets interface.
    pub api: Api,
}

/// An n-node cluster ready for application processes.
pub struct Testbed {
    // Keeps the protocol objects (NICs, switch) alive for the run.
    _backing: Backing,
    /// The nodes, addressed `MacAddr(0..n)`.
    pub nodes: Vec<AppNode>,
}

impl Testbed {
    /// A sockets-over-EMP cluster.
    pub fn emp(n: usize, emp_cfg: EmpConfig, sub_cfg: SubstrateConfig, label: &str) -> Testbed {
        let cluster = emp_proto::build_cluster(n, emp_cfg, SwitchConfig::default());
        let nodes = cluster
            .nodes
            .iter()
            .map(|node| AppNode {
                host: node.host.clone(),
                api: Arc::new(EmpNet::new(
                    EmpSockets::new(node.endpoint(), sub_cfg.clone()),
                    label,
                )) as Api,
            })
            .collect();
        Testbed {
            _backing: Backing::Emp(cluster),
            nodes,
        }
    }

    /// A kernel-TCP cluster; `sockbuf` overrides the default 16 KiB socket
    /// buffers (the Figure 13 "increased kernel buffer" configuration).
    pub fn kernel(n: usize, tcp_cfg: TcpConfig, sockbuf: Option<usize>, label: &str) -> Testbed {
        let cluster = kernel_tcp::build_tcp_cluster(n, tcp_cfg, SwitchConfig::default());
        if let Some(bytes) = sockbuf {
            for node in &cluster.nodes {
                node.stack.set_sockbuf(bytes);
            }
        }
        let nodes = cluster
            .nodes
            .iter()
            .map(|node| AppNode {
                host: node.host.clone(),
                api: Arc::new(KernelNet::new(node.api(), label)) as Api,
            })
            .collect();
        Testbed {
            _backing: Backing::Kernel(cluster),
            nodes,
        }
    }

    /// Default EMP testbed with the paper's best substrate configuration.
    pub fn emp_default(n: usize) -> Testbed {
        Testbed::emp(
            n,
            EmpConfig::default(),
            SubstrateConfig::ds_da_uq(),
            "emp-ds-da-uq",
        )
    }

    /// Default kernel testbed (16 KiB socket buffers).
    pub fn kernel_default(n: usize) -> Testbed {
        Testbed::kernel(n, TcpConfig::default(), None, "tcp-16k")
    }

    /// The EMP cluster behind this testbed, if any (NIC stats).
    pub fn emp_cluster(&self) -> Option<&EmpCluster> {
        match &self._backing {
            Backing::Emp(c) => Some(c),
            Backing::Kernel(_) => None,
        }
    }
}
