//! The web server application (§7.4): one server, three clients.
//!
//! Each HTTP/1.0 request is connect → 16-byte request → S-byte response →
//! close; HTTP/1.1 reuses one connection for up to 8 requests. The metric
//! is the average client-observed response time (connect included for the
//! requests that need one), which is where the substrate's cheap
//! connection management pays off.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimTime};

use crate::asyncio::serve_async;
use crate::completion::serve_completion;
use crate::eventloop::{serve_event_loop, serve_event_loop_with, OverloadPolicy, ServeReport};
use crate::testbed::Testbed;

/// The request message size (§7.4: "a request message (which can
/// typically be considered a file name) of size 16 bytes").
pub const REQUEST_SIZE: usize = 16;
/// Server port.
pub const HTTP_PORT: u16 = 80;
/// HTTP/1.1 requests per connection (§7.4: "up to 8 requests on one
/// connection").
pub const HTTP11_REQUESTS_PER_CONN: u32 = 8;

/// Which HTTP flavour drives connection reuse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HttpVersion {
    /// One request per connection.
    Http10,
    /// Up to [`HTTP11_REQUESTS_PER_CONN`] requests per connection.
    Http11,
}

/// Run the experiment: node 0 serves, nodes 1..=3 each issue
/// `requests_per_client` requests for an `response_size`-byte object.
/// Returns the mean response time in microseconds across all requests.
pub fn average_response_us(
    sim: &Sim,
    tb: &Testbed,
    version: HttpVersion,
    response_size: usize,
    requests_per_client: u32,
) -> f64 {
    let per_conn = match version {
        HttpVersion::Http10 => 1,
        HttpVersion::Http11 => HTTP11_REQUESTS_PER_CONN,
    };
    average_response_us_per_conn(sim, tb, per_conn, response_size, requests_per_client)
}

/// As [`average_response_us`] with an explicit requests-per-connection
/// count. §7.4 observes that "if the web server allows infinite requests
/// on a single connection, the web server application boils down to a
/// simple latency test" — pass a large `per_conn` to reproduce that.
pub fn average_response_us_per_conn(
    sim: &Sim,
    tb: &Testbed,
    per_conn: u32,
    response_size: usize,
    requests_per_client: u32,
) -> f64 {
    assert!(tb.nodes.len() >= 4, "web server experiment uses 4 nodes");
    assert!(per_conn >= 1);
    let n_clients = 3u32;
    let total_requests = requests_per_client * n_clients;
    let total_conns: u32 = (0..n_clients)
        .map(|_| requests_per_client.div_ceil(per_conn))
        .sum();

    // --- server ---
    let api = Arc::clone(&tb.nodes[0].api);
    sim.spawn("http-server", move |ctx| {
        let l = api.listen(ctx, HTTP_PORT, 16)?.expect("port free");
        for _ in 0..total_conns {
            let conn = l.accept(ctx)?.expect("client");
            ctx.spawn("http-worker", move |ctx| {
                loop {
                    let req = match conn.read_exact(ctx, REQUEST_SIZE)? {
                        Ok(Some(r)) => r,
                        Ok(None) => break, // client closed the connection
                        Err(_) => break,
                    };
                    debug_assert_eq!(req.len(), REQUEST_SIZE);
                    let response = vec![0x42u8; response_size];
                    if conn.write(ctx, &response)?.is_err() {
                        break;
                    }
                }
                let _ = conn.close(ctx);
                Ok(())
            });
        }
        l.close(ctx)?;
        Ok(())
    });

    // --- clients ---
    let samples = Arc::new(Mutex::new(Vec::with_capacity(total_requests as usize)));
    for client in 1..=n_clients {
        let api = Arc::clone(&tb.nodes[client as usize].api);
        let server_host = tb.nodes[0].api.local_host();
        let samples = Arc::clone(&samples);
        sim.spawn(format!("http-client-{client}"), move |ctx| {
            let mut remaining = requests_per_client;
            while remaining > 0 {
                let t_conn = ctx.now();
                let conn = api.connect(ctx, server_host, HTTP_PORT)?.expect("connect");
                let burst = remaining.min(per_conn);
                for i in 0..burst {
                    // The first request on a connection pays for the
                    // connect; later ones (HTTP/1.1) don't.
                    let t0 = if i == 0 { t_conn } else { ctx.now() };
                    conn.write(ctx, &[b'G'; REQUEST_SIZE])?.expect("request");
                    let body = conn
                        .read_exact(ctx, response_size)?
                        .expect("response")
                        .expect("body");
                    debug_assert_eq!(body.len(), response_size);
                    samples.lock().push((ctx.now() - t0).as_micros_f64());
                }
                remaining -= burst;
                conn.close(ctx)?;
            }
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let s = samples.lock();
    assert_eq!(
        s.len(),
        total_requests as usize,
        "all requests must complete"
    );
    s.iter().sum::<f64>() / s.len() as f64
}

/// Convenience wrapper: build a fresh sim, run, return the average.
pub fn run_once(tb: &Testbed, version: HttpVersion, response_size: usize, reqs: u32) -> f64 {
    let sim = Sim::new();
    average_response_us(&sim, tb, version, response_size, reqs)
}

// ---------------------------------------------------------------------
// Concurrent connections: event loop vs process per connection
// ---------------------------------------------------------------------

/// Byte the server sends right after accepting, before the first request.
/// Clients wait for it, so the measurement starts when the server has
/// actually taken the connection, not while it sits in the backlog.
const HELLO_BYTE: u8 = b'+';

/// Byte a shedding server answers instead of [`HELLO_BYTE`] when the
/// connection is over its concurrency budget — the HTTP-503 of this
/// one-byte protocol. Clients see it and back off deterministically.
pub const SHED_BYTE: u8 = b'!';

/// How the concurrent-connection server is structured.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerModel {
    /// A worker process per accepted connection, blocking calls.
    PerConnection,
    /// One process, one [`crate::api::NetApi::poll`] wait, nonblocking
    /// calls ([`serve_event_loop`]).
    EventLoop,
    /// One process, one completion ring ([`crate::api::NetApi::ring`]):
    /// ops submitted over registered buffers, completions reaped in
    /// batches ([`serve_completion`]).
    Completion,
    /// One process, one async executor ([`emp_async::LocalExecutor`]):
    /// a straight-line `async` handler task per connection, wakes from
    /// the readiness layer ([`crate::asyncio::serve_async`]).
    Async,
}

impl ServerModel {
    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            ServerModel::PerConnection => "per-conn",
            ServerModel::EventLoop => "event-loop",
            ServerModel::Completion => "completion",
            ServerModel::Async => "async",
        }
    }
}

/// Aggregate result of one [`concurrent_throughput`] run.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrencyRun {
    /// Requests completed across all connections.
    pub requests: u64,
    /// First connect to last verified response, in µs.
    pub elapsed_us: f64,
    /// Aggregate request throughput.
    pub reqs_per_sec: f64,
}

/// The expected `j`-th body byte of the response to request `req` on
/// connection `conn`: every byte depends on the connection, the request,
/// and the position, so interleaved connections cannot pass verification
/// with each other's (or a stale) response.
pub fn body_byte(conn: u32, req: u32, j: usize) -> u8 {
    ((u64::from(conn) * 131 + u64::from(req) * 31 + j as u64 * 7 + 13) % 251) as u8
}

fn encode_request(conn: u32, req: u32) -> [u8; REQUEST_SIZE] {
    let mut b = [b'.'; REQUEST_SIZE];
    b[0] = b'G';
    b[1..5].copy_from_slice(&conn.to_le_bytes());
    b[5..9].copy_from_slice(&req.to_le_bytes());
    b
}

fn decode_request(req: &[u8]) -> (u32, u32) {
    debug_assert_eq!(req[0], b'G');
    (
        u32::from_le_bytes(req[1..5].try_into().expect("4 bytes")),
        u32::from_le_bytes(req[5..9].try_into().expect("4 bytes")),
    )
}

fn response_body(conn: u32, req: u32, size: usize) -> Vec<u8> {
    (0..size).map(|j| body_byte(conn, req, j)).collect()
}

/// Run `n_conns` concurrent persistent connections (clients spread
/// round-robin over nodes 1..) against one server on node 0 structured
/// per `model`; each connection issues `reqs_per_conn` requests and
/// byte-verifies every response. Returns the aggregate throughput.
pub fn concurrent_throughput(
    tb: &Testbed,
    model: ServerModel,
    n_conns: u32,
    reqs_per_conn: u32,
    response_size: usize,
) -> ConcurrencyRun {
    concurrent_throughput_on(
        &Sim::new(),
        tb,
        model,
        n_conns,
        reqs_per_conn,
        response_size,
    )
}

/// [`concurrent_throughput`] on a caller-supplied simulation, so tools
/// that inspect the sim afterwards (`empstat`, the determinism test) can
/// read its telemetry registry once the workload drains.
pub fn concurrent_throughput_on(
    sim: &Sim,
    tb: &Testbed,
    model: ServerModel,
    n_conns: u32,
    reqs_per_conn: u32,
    response_size: usize,
) -> ConcurrencyRun {
    assert!(tb.nodes.len() >= 2, "need a server node and a client node");
    assert!(n_conns >= 1 && reqs_per_conn >= 1);
    spawn_model_server(sim, tb, model, n_conns, response_size);

    let end = Arc::new(Mutex::new((SimTime::ZERO, 0u32)));
    for k in 0..n_conns {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let server_host = tb.nodes[0].api.local_host();
        let end = Arc::clone(&end);
        sim.spawn(format!("http-conc-client-{k}"), move |ctx| {
            let conn = api.connect(ctx, server_host, HTTP_PORT)?.expect("connect");
            let hello = conn
                .read_exact(ctx, 1)?
                .expect("hello")
                .expect("hello byte");
            assert_eq!(hello[0], HELLO_BYTE);
            for r in 0..reqs_per_conn {
                conn.write(ctx, &encode_request(k, r))?.expect("request");
                let body = conn
                    .read_exact(ctx, response_size)?
                    .expect("response")
                    .expect("body");
                for (j, &byte) in body.iter().enumerate() {
                    assert_eq!(byte, body_byte(k, r, j), "conn {k} req {r} byte {j}");
                }
            }
            conn.close(ctx)?;
            let mut e = end.lock();
            e.0 = e.0.max(ctx.now());
            e.1 += 1;
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let (end, finished) = *end.lock();
    assert_eq!(finished, n_conns, "every connection must finish");
    let requests = u64::from(n_conns) * u64::from(reqs_per_conn);
    ConcurrencyRun {
        requests,
        elapsed_us: end.as_secs_f64() * 1e6,
        reqs_per_sec: requests as f64 / end.as_secs_f64(),
    }
}

/// Spawn the node-0 server of the concurrent workload, structured per
/// `model`. All four models speak the same byte protocol, so the same
/// clients verify any of them.
fn spawn_model_server(
    sim: &Sim,
    tb: &Testbed,
    model: ServerModel,
    n_conns: u32,
    response_size: usize,
) {
    let api = Arc::clone(&tb.nodes[0].api);
    let backlog = n_conns as usize + 8;
    match model {
        ServerModel::EventLoop => {
            sim.spawn("http-event-loop", move |ctx| {
                let l = api.listen(ctx, HTTP_PORT, backlog)?.expect("port free");
                serve_event_loop(
                    ctx,
                    api.as_ref(),
                    l.as_ref(),
                    n_conns,
                    &[HELLO_BYTE],
                    |inbuf, out| {
                        while inbuf.len() >= REQUEST_SIZE {
                            let (cid, rid) = decode_request(&inbuf[..REQUEST_SIZE]);
                            inbuf.drain(..REQUEST_SIZE);
                            out.extend_from_slice(&response_body(cid, rid, response_size));
                        }
                    },
                )?;
                l.close(ctx)?;
                Ok(())
            });
        }
        ServerModel::Completion => {
            sim.spawn("http-completion", move |ctx| {
                let l = api.listen(ctx, HTTP_PORT, backlog)?.expect("port free");
                serve_completion(
                    ctx,
                    api.as_ref(),
                    l,
                    n_conns,
                    &[HELLO_BYTE],
                    |inbuf, out| {
                        while inbuf.len() >= REQUEST_SIZE {
                            let (cid, rid) = decode_request(&inbuf[..REQUEST_SIZE]);
                            inbuf.drain(..REQUEST_SIZE);
                            out.extend_from_slice(&response_body(cid, rid, response_size));
                        }
                    },
                )?;
                Ok(())
            });
        }
        ServerModel::Async => {
            sim.spawn("http-async", move |ctx| {
                let l = api.listen(ctx, HTTP_PORT, backlog)?.expect("port free");
                serve_async(ctx, l, n_conns, &[HELLO_BYTE], move |inbuf, out| {
                    while inbuf.len() >= REQUEST_SIZE {
                        let (cid, rid) = decode_request(&inbuf[..REQUEST_SIZE]);
                        inbuf.drain(..REQUEST_SIZE);
                        out.extend_from_slice(&response_body(cid, rid, response_size));
                    }
                })?;
                Ok(())
            });
        }
        ServerModel::PerConnection => {
            sim.spawn("http-server", move |ctx| {
                let l = api.listen(ctx, HTTP_PORT, backlog)?.expect("port free");
                for _ in 0..n_conns {
                    let conn = l.accept(ctx)?.expect("client");
                    ctx.spawn("http-worker", move |ctx| {
                        if conn.write(ctx, &[HELLO_BYTE])?.is_err() {
                            return Ok(());
                        }
                        while let Ok(Some(req)) = conn.read_exact(ctx, REQUEST_SIZE)? {
                            let (cid, rid) = decode_request(&req);
                            let body = response_body(cid, rid, response_size);
                            if conn.write(ctx, &body)?.is_err() {
                                break;
                            }
                        }
                        let _ = conn.close(ctx);
                        Ok(())
                    });
                }
                l.close(ctx)?;
                Ok(())
            });
        }
    }
}

/// Latency/fairness view of one [`concurrent_throughput`]-shaped run.
#[derive(Clone, Copy, Debug)]
pub struct LatencyRun {
    /// Median request → verified-response time, µs.
    pub p50_us: f64,
    /// 99th-percentile request time, µs — the tail the scheduling model
    /// inflicts on unlucky connections.
    pub p99_us: f64,
    /// Jain fairness index over per-connection mean request times:
    /// 1.0 = every connection served equally, 1/n = one connection
    /// monopolized the server.
    pub jain_fairness: f64,
}

/// The concurrent workload measured per request instead of in aggregate:
/// each client stamps every request round trip, and the run reduces to
/// median, tail, and a cross-connection fairness index. This is how the
/// server models' *scheduling* differences show up — a cooperative
/// executor or event loop that let one connection hog its turn would
/// keep aggregate throughput but lose fairness and tail latency.
pub fn concurrent_latency(
    tb: &Testbed,
    model: ServerModel,
    n_conns: u32,
    reqs_per_conn: u32,
    response_size: usize,
) -> LatencyRun {
    assert!(tb.nodes.len() >= 2, "need a server node and a client node");
    assert!(n_conns >= 1 && reqs_per_conn >= 1);
    let sim = Sim::new();
    spawn_model_server(&sim, tb, model, n_conns, response_size);

    let samples: Arc<Mutex<Vec<(u32, f64)>>> = Arc::new(Mutex::new(Vec::with_capacity(
        (n_conns * reqs_per_conn) as usize,
    )));
    for k in 0..n_conns {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let server_host = tb.nodes[0].api.local_host();
        let samples = Arc::clone(&samples);
        sim.spawn(format!("http-lat-client-{k}"), move |ctx| {
            let conn = api.connect(ctx, server_host, HTTP_PORT)?.expect("connect");
            let hello = conn
                .read_exact(ctx, 1)?
                .expect("hello")
                .expect("hello byte");
            assert_eq!(hello[0], HELLO_BYTE);
            for r in 0..reqs_per_conn {
                let t0 = ctx.now();
                conn.write(ctx, &encode_request(k, r))?.expect("request");
                let body = conn
                    .read_exact(ctx, response_size)?
                    .expect("response")
                    .expect("body");
                for (j, &byte) in body.iter().enumerate() {
                    assert_eq!(byte, body_byte(k, r, j), "conn {k} req {r} byte {j}");
                }
                samples.lock().push((k, (ctx.now() - t0).as_micros_f64()));
            }
            conn.close(ctx)?;
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let s = samples.lock();
    assert_eq!(
        s.len(),
        (n_conns * reqs_per_conn) as usize,
        "every request must complete"
    );
    let mut rtts: Vec<f64> = s.iter().map(|&(_, us)| us).collect();
    rtts.sort_by(f64::total_cmp);
    let pct = |q: f64| rtts[((rtts.len() - 1) as f64 * q).round() as usize];
    let mut per_conn = vec![(0.0f64, 0u32); n_conns as usize];
    for &(k, us) in s.iter() {
        per_conn[k as usize].0 += us;
        per_conn[k as usize].1 += 1;
    }
    let means: Vec<f64> = per_conn
        .iter()
        .map(|&(sum, n)| sum / f64::from(n))
        .collect();
    let sum: f64 = means.iter().sum();
    let sum_sq: f64 = means.iter().map(|m| m * m).sum();
    LatencyRun {
        p50_us: pct(0.5),
        p99_us: pct(0.99),
        jain_fairness: (sum * sum) / (means.len() as f64 * sum_sq),
    }
}

/// The event-loop server under a concurrency bound: `n_conns` clients
/// connect at once, the server serves at most `max_conns` of them
/// concurrently and answers the overflow with [`SHED_BYTE`] before
/// closing. Shed clients back off and report it; nothing hangs. Returns
/// `(fully_served, shed_observed, server_report)` — served + shed
/// always accounts for every client.
pub fn concurrent_throughput_shedding(
    tb: &Testbed,
    n_conns: u32,
    max_conns: usize,
    reqs_per_conn: u32,
    response_size: usize,
) -> (u32, u32, ServeReport) {
    assert!(tb.nodes.len() >= 2, "need a server node and a client node");
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let backlog = n_conns as usize + 8;
    let report = Arc::new(Mutex::new(ServeReport::default()));
    {
        let report = Arc::clone(&report);
        sim.spawn("http-shedding-loop", move |ctx| {
            let l = api.listen(ctx, HTTP_PORT, backlog)?.expect("port free");
            let policy = OverloadPolicy {
                max_conns: Some(max_conns),
                shed_response: vec![SHED_BYTE],
                ..OverloadPolicy::default()
            };
            let r = serve_event_loop_with(
                ctx,
                api.as_ref(),
                l.as_ref(),
                n_conns,
                &[HELLO_BYTE],
                &policy,
                |inbuf, out| {
                    while inbuf.len() >= REQUEST_SIZE {
                        let (cid, rid) = decode_request(&inbuf[..REQUEST_SIZE]);
                        inbuf.drain(..REQUEST_SIZE);
                        out.extend_from_slice(&response_body(cid, rid, response_size));
                    }
                },
            )?;
            *report.lock() = r;
            l.close(ctx)?;
            Ok(())
        });
    }
    let tally = Arc::new(Mutex::new((0u32, 0u32))); // (served, shed)
    for k in 0..n_conns {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let server_host = tb.nodes[0].api.local_host();
        let tally = Arc::clone(&tally);
        sim.spawn(format!("http-shed-client-{k}"), move |ctx| {
            let conn = api.connect(ctx, server_host, HTTP_PORT)?.expect("connect");
            let first = conn.read_exact(ctx, 1)?.expect("greeting");
            match first {
                Some(b) if b[0] == HELLO_BYTE => {
                    for r in 0..reqs_per_conn {
                        conn.write(ctx, &encode_request(k, r))?.expect("request");
                        let body = conn
                            .read_exact(ctx, response_size)?
                            .expect("response")
                            .expect("body");
                        for (j, &byte) in body.iter().enumerate() {
                            assert_eq!(byte, body_byte(k, r, j), "conn {k} req {r} byte {j}");
                        }
                    }
                    tally.lock().0 += 1;
                }
                // SHED_BYTE or bare EOF: the deterministic degrade.
                _ => tally.lock().1 += 1,
            }
            let _ = conn.close(ctx);
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let (served, shed) = *tally.lock();
    assert_eq!(served + shed, n_conns, "every client gets a typed answer");
    let report = *report.lock();
    (served, shed, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_proto::EmpConfig;
    use sockets_emp::SubstrateConfig;

    fn emp_tb() -> Testbed {
        // §7.4: "In this experiment, we have used a credit size of 4."
        Testbed::emp(
            4,
            EmpConfig::default(),
            SubstrateConfig::ds_da_uq().with_credits(4),
            "emp-c4",
        )
    }

    #[test]
    fn http10_substrate_beats_tcp_by_a_wide_margin() {
        let emp = run_once(&emp_tb(), HttpVersion::Http10, 1024, 8);
        let tcp = run_once(&Testbed::kernel_default(4), HttpVersion::Http10, 1024, 8);
        let ratio = tcp / emp;
        // §8: "the web server application showed as much as six times
        // performance enhancement"; at 1 KiB responses expect >2.5x.
        assert!(
            ratio > 2.5,
            "HTTP/1.0 ratio {ratio:.2} (emp {emp:.0} us, tcp {tcp:.0} us)"
        );
    }

    #[test]
    fn http11_narrows_but_does_not_close_the_gap() {
        // §7.4: HTTP/1.1 amortizes TCP's connection cost over 8 requests;
        // "Even with this specification, our substrate was found to
        // perform better".
        let emp10 = run_once(&emp_tb(), HttpVersion::Http10, 1024, 8);
        let tcp10 = run_once(&Testbed::kernel_default(4), HttpVersion::Http10, 1024, 8);
        let emp11 = run_once(&emp_tb(), HttpVersion::Http11, 1024, 8);
        let tcp11 = run_once(&Testbed::kernel_default(4), HttpVersion::Http11, 1024, 8);
        let r10 = tcp10 / emp10;
        let r11 = tcp11 / emp11;
        assert!(r11 > 1.2, "substrate still wins under HTTP/1.1: {r11:.2}");
        assert!(
            r11 < r10,
            "persistent connections must narrow the gap: {r11:.2} vs {r10:.2}"
        );
    }

    #[test]
    fn response_time_grows_with_response_size() {
        let small = run_once(&emp_tb(), HttpVersion::Http10, 4, 6);
        let large = run_once(&emp_tb(), HttpVersion::Http10, 8192, 6);
        assert!(large > small, "8K ({large:.0}) vs 4B ({small:.0})");
    }

    #[test]
    fn shedding_event_loop_bounds_concurrency_on_both_stacks() {
        // 8 clients vs a concurrency budget of 3: whoever is over budget
        // gets the SHED_BYTE (or a clean EOF), never a hang, and the
        // server's own count matches what clients observed.
        for tb in [Testbed::emp_default(4), Testbed::kernel_default(4)] {
            let (served, shed, report) = concurrent_throughput_shedding(&tb, 8, 3, 2, 256);
            assert_eq!(served + shed, 8);
            assert!(
                shed > 0,
                "over-budget clients must be shed on {}",
                tb.nodes[0].api.label()
            );
            assert!(served >= 3, "budgeted clients are served in full");
            assert_eq!(report.shed, shed, "server and client shed counts agree");
            assert_eq!(report.served, served);
        }
    }

    #[test]
    fn latency_run_reports_a_sane_distribution() {
        // The fairness figure's measurement: percentiles ordered, Jain
        // index in (0, 1], and the async model not collapsing fairness
        // relative to process-per-connection.
        let tb = Testbed::emp_default(3);
        let aw = concurrent_latency(&tb, ServerModel::Async, 8, 4, 512);
        let pc = concurrent_latency(&tb, ServerModel::PerConnection, 8, 4, 512);
        for r in [aw, pc] {
            assert!(r.p50_us > 0.0 && r.p50_us <= r.p99_us, "{r:?}");
            assert!(
                r.jain_fairness > 0.0 && r.jain_fairness <= 1.0 + 1e-9,
                "{r:?}"
            );
        }
        assert!(
            aw.jain_fairness > 0.8,
            "cooperative executor starved connections: {aw:?}"
        );
    }

    #[test]
    fn event_loop_serves_concurrent_connections_byte_exact() {
        // Byte-exactness is asserted inside every client; here both server
        // models must complete the same workload on both stacks.
        for tb in [Testbed::emp_default(4), Testbed::kernel_default(4)] {
            for model in [
                ServerModel::EventLoop,
                ServerModel::PerConnection,
                ServerModel::Completion,
                ServerModel::Async,
            ] {
                let r = concurrent_throughput(&tb, model, 6, 4, 512);
                assert_eq!(
                    r.requests,
                    24,
                    "{} on {}",
                    model.label(),
                    tb.nodes[0].api.label()
                );
                assert!(r.reqs_per_sec > 0.0);
            }
        }
    }
}

#[cfg(test)]
mod infinite_requests {
    use super::*;
    use crate::pingpong;
    use emp_proto::EmpConfig;
    use simnet::Sim;
    use sockets_emp::SubstrateConfig;

    #[test]
    fn unbounded_persistent_connections_degenerate_to_the_latency_test() {
        // §7.4: "In the worst case, if the web server allows infinite
        // requests on a single connection, the web server application
        // boils down to a simple latency test which has been plotted in
        // Section 7.1". With 64 requests per connection the connect cost
        // amortizes away and the per-request time approaches one request
        // round trip of the Figure 11 ping-pong.
        let tb = Testbed::emp(
            4,
            EmpConfig::default(),
            SubstrateConfig::ds_da_uq().with_credits(4),
            "emp-c4",
        );
        let sim = Sim::new();
        let per_request = average_response_us_per_conn(&sim, &tb, 64, REQUEST_SIZE, 64);
        // The comparable microbenchmark: a 16-byte-each-way ping-pong is
        // one full round trip; the web request/response is too.
        let sim = Sim::new();
        let tb2 = Testbed::emp(
            2,
            EmpConfig::default(),
            SubstrateConfig::ds_da_uq().with_credits(4),
            "emp-c4",
        );
        let rtt = pingpong::one_way_latency_us(&sim, &tb2, REQUEST_SIZE, 40) * 2.0;
        // Within ~40%: the web server still has 3 clients sharing one
        // server process, which adds queueing the pure ping-pong lacks.
        assert!(
            per_request < rtt * 1.6,
            "persistent-connection request time {per_request:.1} us should \
             approach the ping-pong round trip {rtt:.1} us"
        );
        assert!(per_request > rtt * 0.8, "but not beat it");
    }
}
