//! The ftp application (§7.3): file transfer between RAM disks.
//!
//! Mirrors the paper's setup — RAM disks on both ends "to remove the
//! effects of disk access and caching", so the gap between ftp throughput
//! and raw socket bandwidth is exactly the file-system overhead. The
//! server interleaves file reads and socket writes; the client interleaves
//! socket reads and file writes; both go through the same byte-oriented
//! interface, which on the EMP side is the §5.4 fd-interposition story
//! (see `sockets_emp::FdTable` and the `fd_table_routes_files_and_sockets`
//! test).

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimDuration};

use crate::api::NetError;
use crate::testbed::Testbed;

/// Transfer chunk (what the real ftp's sendfile-less loop uses).
pub const CHUNK: usize = 64 * 1024;
/// Control port of the ftp server.
pub const FTP_PORT: u16 = 21;

/// Serve files from node `server`'s RAM disk: a minimal RETR-only ftp
/// server handling one connection per request (spawned per accept).
/// Returns after `expected_requests` transfers.
pub fn spawn_server(sim: &Sim, tb: &Testbed, server: usize, expected_requests: usize) {
    let api = Arc::clone(&tb.nodes[server].api);
    let fs = tb.nodes[server].host.fs().clone();
    sim.spawn("ftp-server", move |ctx| {
        let l = api.listen(ctx, FTP_PORT, 8)?.expect("port free");
        for _ in 0..expected_requests {
            let conn = l.accept(ctx)?.expect("client");
            let fs = fs.clone();
            ctx.spawn("ftp-server-worker", move |ctx| {
                // Request line: "RETR <name>\n".
                let mut req = Vec::new();
                loop {
                    let b = conn.read(ctx, 256)?.expect("request bytes");
                    if b.is_empty() {
                        return Ok(());
                    }
                    req.extend_from_slice(&b);
                    if req.last() == Some(&b'\n') {
                        break;
                    }
                }
                let line = String::from_utf8_lossy(&req);
                let name = line
                    .trim()
                    .strip_prefix("RETR ")
                    .expect("RETR command")
                    .to_string();
                let fd = fs.open(ctx, &name)?.expect("file exists");
                // Announce the size, then stream the file.
                let size = {
                    let mut total = 0usize;
                    loop {
                        let chunk = fs.read(ctx, fd, CHUNK)?.expect("file read");
                        if chunk.is_empty() {
                            break;
                        }
                        total += chunk.len();
                        conn.write(ctx, &chunk)?.expect("socket write");
                    }
                    total
                };
                let _ = size;
                fs.close(ctx, fd)?.expect("close file");
                conn.close(ctx)?;
                Ok(())
            });
        }
        l.close(ctx)?;
        Ok(())
    });
}

/// Fetch `name` from the server on node `server_idx` into the local RAM
/// disk of node `client`; returns `(bytes, elapsed_us, mbps)`.
pub fn fetch(
    sim: &Sim,
    tb: &Testbed,
    client: usize,
    server_idx: usize,
    name: &str,
) -> (usize, f64, f64) {
    let api = Arc::clone(&tb.nodes[client].api);
    let fs = tb.nodes[client].host.fs().clone();
    let server_host = tb.nodes[server_idx].api.local_host();
    let name = name.to_string();
    let out = Arc::new(Mutex::new((0usize, 0.0f64)));
    let out2 = Arc::clone(&out);

    sim.spawn("ftp-client", move |ctx| {
        let t0 = ctx.now();
        let conn = api.connect(ctx, server_host, FTP_PORT)?.expect("connect");
        conn.write(ctx, format!("RETR {name}\n").as_bytes())?
            .expect("send request");
        let local = fs.create(ctx, &format!("dl-{name}"))?;
        let mut got = 0usize;
        loop {
            let chunk = match conn.read(ctx, CHUNK)? {
                Ok(c) => c,
                Err(NetError::PeerClosed) => break,
                Err(e) => panic!("ftp read failed: {e}"),
            };
            if chunk.is_empty() {
                break;
            }
            got += chunk.len();
            fs.write(ctx, local, &chunk)?.expect("file write");
        }
        fs.close(ctx, local)?.expect("close");
        conn.close(ctx)?;
        let elapsed = (ctx.now() - t0).as_micros_f64();
        *out2.lock() = (got, elapsed);
        Ok(())
    });
    sim.run_until(simnet::SimTime::from_secs(600));
    let (bytes, us) = *out.lock();
    assert!(bytes > 0, "ftp transfer did not complete");
    let mbps = bytes as f64 * 8.0 / (us / 1e6) / 1e6;
    (bytes, us, mbps)
}

/// One-shot convenience: build nothing, just run a single transfer of a
/// synthetic file of `size` bytes and return the goodput in Mbps.
pub fn transfer_mbps(tb: &Testbed, size: usize) -> f64 {
    let sim = Sim::new();
    tb.nodes[1].host.fs().put_synthetic("payload.bin", size);
    spawn_server(&sim, tb, 1, 1);
    let (bytes, _us, mbps) = fetch(&sim, tb, 0, 1, "payload.bin");
    assert_eq!(bytes, size, "whole file must arrive");
    let _ = SimDuration::ZERO;
    mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_whole_file_and_stores_it() {
        let tb = Testbed::emp_default(2);
        tb.nodes[1].host.fs().put_synthetic("a.bin", 300_000);
        let sim = Sim::new();
        spawn_server(&sim, &tb, 1, 1);
        let (bytes, _, _) = fetch(&sim, &tb, 0, 1, "a.bin");
        assert_eq!(bytes, 300_000);
        assert!(tb.nodes[0].host.fs().exists("dl-a.bin"));
    }

    #[test]
    fn ftp_over_emp_roughly_doubles_tcp() {
        // §7.3/§8: "For ftp we got almost twice the performance benefit as
        // TCP" (1 MiB+ files).
        const SIZE: usize = 4 << 20;
        let emp = transfer_mbps(&Testbed::emp_default(2), SIZE);
        let tcp = transfer_mbps(&Testbed::kernel_default(2), SIZE);
        let ratio = emp / tcp;
        assert!(
            (1.5..3.0).contains(&ratio),
            "ftp ratio {ratio:.2} (emp {emp:.0} Mbps, tcp {tcp:.0} Mbps)"
        );
    }

    #[test]
    fn file_system_overhead_caps_ftp_below_raw_bandwidth() {
        // §7.3: "The application is not able to achieve the peak bandwidth
        // ... due to the File System overhead."
        const SIZE: usize = 4 << 20;
        let ftp = transfer_mbps(&Testbed::emp_default(2), SIZE);
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let raw = crate::bandwidth::throughput_mbps(&sim, &tb, CHUNK, SIZE);
        assert!(
            ftp < raw * 0.75,
            "ftp ({ftp:.0} Mbps) must sit well below raw sockets ({raw:.0} Mbps)"
        );
    }
}
