//! Distributed matrix multiplication over sockets (§7.5): a master and
//! three workers on a 4-node cluster.
//!
//! The master partitions A by rows, ships each worker its slice plus all
//! of B, and gathers the C slices back — using `select()` to service
//! whichever worker answers first, as the paper does ("To handle this, we
//! used the select() operation").

use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimDuration, SimTime};

use crate::api::Conn;
use crate::testbed::Testbed;

/// Worker port.
pub const MATMUL_PORT: u16 = 99;

/// Sustained double-precision rate of the 700 MHz PIII hosts doing a
/// straightforward triple loop (cache-blocked naive code of the era).
pub const HOST_FLOPS: f64 = 150e6;

fn encode_matrix(m: &[f64]) -> Bytes {
    let mut b = BytesMut::with_capacity(m.len() * 8);
    for &v in m {
        b.put_f64_le(v);
    }
    b.freeze()
}

fn decode_matrix(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
        .collect()
}

/// Multiply `rows x n` slice of A with `n x n` B (plain triple loop; the
/// simulated time cost is charged separately from real compute).
fn multiply_slice(a_rows: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let rows = a_rows.len() / n;
    let mut c = vec![0.0f64; rows * n];
    for i in 0..rows {
        for k in 0..n {
            let aik = a_rows[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Run the distributed multiply of two deterministic `n x n` matrices on
/// `tb` (node 0 = master, nodes 1.. = workers). Returns
/// `(elapsed_us, checksum)`; the checksum is a content witness that the
/// distributed result matches the local product.
pub fn run(sim: &Sim, tb: &Testbed, n: usize) -> (f64, f64) {
    let workers = tb.nodes.len() - 1;
    assert!(workers >= 1, "matmul needs at least one worker");
    assert_eq!(n % workers, 0, "rows must split evenly across workers");
    let rows_per = n / workers;

    // --- workers ---
    for w in 1..=workers {
        let api = Arc::clone(&tb.nodes[w].api);
        sim.spawn(format!("matmul-worker-{w}"), move |ctx| {
            let l = api.listen(ctx, MATMUL_PORT, 2)?.expect("port free");
            let conn = l.accept(ctx)?.expect("master");
            // Receive: rows of A (rows_per x n) then all of B (n x n).
            let a_bytes = conn
                .read_exact(ctx, rows_per * n * 8)?
                .expect("A slice")
                .expect("data");
            let b_bytes = conn.read_exact(ctx, n * n * 8)?.expect("B").expect("data");
            let a = decode_matrix(&a_bytes);
            let b = decode_matrix(&b_bytes);
            // The real arithmetic (content), charged at the host's rate
            // (time): 2*rows*n*n flops.
            let c = multiply_slice(&a, &b, n);
            let flops = 2.0 * rows_per as f64 * n as f64 * n as f64;
            ctx.delay(SimDuration::from_micros_f64(flops / HOST_FLOPS * 1e6))?;
            conn.write(ctx, &encode_matrix(&c))?.expect("C slice");
            let _ = conn.close(ctx);
            l.close(ctx)?;
            Ok(())
        });
    }

    // --- master ---
    let api = Arc::clone(&tb.nodes[0].api);
    let worker_hosts: Vec<_> = (1..=workers)
        .map(|w| tb.nodes[w].api.local_host())
        .collect();
    let out = Arc::new(Mutex::new((f64::NAN, 0.0f64)));
    let out2 = Arc::clone(&out);
    sim.spawn("matmul-master", move |ctx| {
        // Deterministic matrices.
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) * 0.5).collect();
        let t0 = ctx.now();
        let b_bytes = encode_matrix(&b);
        let mut conns: Vec<Conn> = Vec::with_capacity(worker_hosts.len());
        for (w, host) in worker_hosts.iter().enumerate() {
            let conn = api.connect(ctx, *host, MATMUL_PORT)?.expect("worker");
            let slice = &a[w * rows_per * n..(w + 1) * rows_per * n];
            conn.write(ctx, &encode_matrix(slice))?.expect("send A");
            conn.write(ctx, &b_bytes)?.expect("send B");
            conns.push(conn);
        }
        // Gather with select(): take results as they become ready.
        let mut c = vec![0.0f64; n * n];
        let mut done = vec![false; conns.len()];
        for _ in 0..conns.len() {
            let watch: Vec<&Conn> = conns
                .iter()
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .map(|(_, c)| c)
                .collect();
            let idx_in_watch = api.select_readable(ctx, &watch)?.expect("live set");
            let w = conns
                .iter()
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .nth(idx_in_watch)
                .expect("index in range")
                .0;
            let bytes = conns[w]
                .read_exact(ctx, rows_per * n * 8)?
                .expect("C slice")
                .expect("data");
            c[w * rows_per * n..(w + 1) * rows_per * n].copy_from_slice(&decode_matrix(&bytes));
            done[w] = true;
        }
        let elapsed = (ctx.now() - t0).as_micros_f64();
        for conn in &conns {
            conn.close(ctx)?;
        }
        let checksum: f64 = c
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((i % 5) as f64))
            .sum();
        *out2.lock() = (elapsed, checksum);
        Ok(())
    });
    sim.run_until(SimTime::from_secs(3600));
    let (us, checksum) = *out.lock();
    assert!(us.is_finite(), "matmul did not complete");
    (us, checksum)
}

/// The checksum the distributed run must reproduce, computed locally.
pub fn local_checksum(n: usize) -> f64 {
    let a: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) * 0.5).collect();
    let c = multiply_slice(&a, &b, n);
    c.iter()
        .enumerate()
        .map(|(i, v)| v * ((i % 5) as f64))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_result_matches_local_product() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(4);
        let (_us, checksum) = run(&sim, &tb, 24);
        let expect = local_checksum(24);
        assert!(
            (checksum - expect).abs() < 1e-6 * expect.abs().max(1.0),
            "distributed {checksum} vs local {expect}"
        );
    }

    #[test]
    fn kernel_stack_computes_the_same_answer_slower() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(4);
        let (emp_us, emp_sum) = run(&sim, &tb, 24);
        let sim = Sim::new();
        let tb = Testbed::kernel_default(4);
        let (tcp_us, tcp_sum) = run(&sim, &tb, 24);
        assert_eq!(emp_sum.to_bits(), tcp_sum.to_bits(), "same arithmetic");
        assert!(
            emp_us < tcp_us,
            "substrate must finish first ({emp_us:.0} vs {tcp_us:.0} us)"
        );
    }

    #[test]
    fn compute_dominates_at_large_n() {
        // Once the O(n^3) compute swamps the O(n^2) communication, the
        // stacks converge (the shape of Figure 17's right side). At small
        // n the gap is also compressed by fixed connection-setup costs,
        // so compare a communication-bound size with a compute-bound one.
        fn gap(n: usize) -> f64 {
            let sim = Sim::new();
            let (emp_us, _) = run(&sim, &Testbed::emp_default(4), n);
            let sim = Sim::new();
            let (tcp_us, _) = run(&sim, &Testbed::kernel_default(4), n);
            tcp_us / emp_us
        }
        let mid = gap(96); // communication still matters
        let big = gap(288); // ~15 ms of compute per worker dominates
        assert!(
            big < mid,
            "relative gap must shrink once compute dominates: n=288 {big:.3} vs n=96 {mid:.3}"
        );
        assert!(big > 1.0, "substrate never loses: {big:.3}");
    }
}
