//! The bandwidth microbenchmark (§7.2): one-way bulk transfer; goodput is
//! measured at the receiver between first and last byte.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimDuration};

use crate::testbed::Testbed;

/// Stream `total_bytes` from node 0 to node 1 in `msg_size` writes;
/// returns goodput in Mbps.
pub fn throughput_mbps(sim: &Sim, tb: &Testbed, msg_size: usize, total_bytes: usize) -> f64 {
    throughput_with_stats(sim, tb, msg_size, total_bytes).0
}

/// [`throughput_mbps`], also returning both connections' substrate
/// counters summed (sender + receiver, sampled just before close). All
/// zeros on stacks that expose none (kernel TCP).
pub fn throughput_with_stats(
    sim: &Sim,
    tb: &Testbed,
    msg_size: usize,
    total_bytes: usize,
) -> (f64, sockets_emp::ConnStats) {
    assert!(tb.nodes.len() >= 2, "bandwidth test needs two nodes");
    let out = Arc::new(Mutex::new(f64::NAN));
    let out2 = Arc::clone(&out);
    let stats = Arc::new(Mutex::new(sockets_emp::ConnStats::default()));
    let (stats_rx, stats_tx) = (Arc::clone(&stats), Arc::clone(&stats));
    let server_api = Arc::clone(&tb.nodes[1].api);
    let client_api = Arc::clone(&tb.nodes[0].api);
    let server_host = server_api.local_host();
    const PORT: u16 = 78;

    sim.spawn("bw-sink", move |ctx| {
        let l = server_api.listen(ctx, PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut got = 0usize;
        let mut t0 = None;
        while got < total_bytes {
            let d = conn.read(ctx, msg_size)?.expect("data");
            if d.is_empty() {
                break;
            }
            if t0.is_none() {
                t0 = Some(ctx.now());
            }
            got += d.len();
        }
        let elapsed = ctx.now() - t0.expect("received something");
        *out2.lock() = got as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
        if let Some(s) = conn.substrate_stats() {
            *stats_rx.lock() += s;
        }
        let _ = conn.close(ctx);
        l.close(ctx)?;
        Ok(())
    });
    sim.spawn("bw-source", move |ctx| {
        let conn = client_api
            .connect(ctx, server_host, PORT)?
            .expect("connect");
        let buf = vec![0xa5u8; msg_size];
        let mut sent = 0usize;
        while sent < total_bytes {
            let n = msg_size.min(total_bytes - sent);
            conn.write(ctx, &buf[..n])?.expect("write");
            sent += n;
        }
        conn.flush(ctx)?.expect("flush");
        ctx.delay(SimDuration::from_millis(2))?;
        if let Some(s) = conn.substrate_stats() {
            *stats_tx.lock() += s;
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let mbps = *out.lock();
    assert!(mbps.is_finite(), "bandwidth test did not complete");
    let totals = *stats.lock();
    (mbps, totals)
}

/// Simultaneous bulk transfer in both directions between nodes 0 and 1;
/// returns the aggregate goodput in Mbps. Exercises full-duplex links and
/// both NIC firmware directions at once.
pub fn bidirectional_mbps(sim: &Sim, tb: &Testbed, msg_size: usize, total_each: usize) -> f64 {
    assert!(tb.nodes.len() >= 2);
    let out = Arc::new(Mutex::new((f64::NAN, f64::NAN)));
    const PORT_FWD: u16 = 81;
    const PORT_REV: u16 = 82;

    for (dir, (src, dst, port)) in [(0usize, (0usize, 1usize, PORT_FWD)), (1, (1, 0, PORT_REV))] {
        let sink_api = Arc::clone(&tb.nodes[dst].api);
        let src_api = Arc::clone(&tb.nodes[src].api);
        let dst_host = tb.nodes[dst].api.local_host();
        let out = Arc::clone(&out);
        sim.spawn(format!("bidir-sink-{dir}"), move |ctx| {
            let l = sink_api.listen(ctx, port, 4)?.expect("port free");
            let conn = l.accept(ctx)?.expect("connection");
            let mut got = 0usize;
            let t0 = ctx.now();
            while got < total_each {
                let d = conn.read(ctx, msg_size)?.expect("data");
                if d.is_empty() {
                    break;
                }
                got += d.len();
            }
            let mbps = got as f64 * 8.0 / (ctx.now() - t0).as_secs_f64() / 1e6;
            {
                // Scope the guard: close() blocks, and holding a lock
                // across a blocking call stalls every other process that
                // needs it (the engine watchdog catches exactly this).
                let mut o = out.lock();
                if dir == 0 {
                    o.0 = mbps;
                } else {
                    o.1 = mbps;
                }
            }
            let _ = conn.close(ctx);
            l.close(ctx)?;
            Ok(())
        });
        sim.spawn(format!("bidir-source-{dir}"), move |ctx| {
            let conn = src_api.connect(ctx, dst_host, port)?.expect("connect");
            let buf = vec![dir as u8; msg_size];
            let mut sent = 0usize;
            while sent < total_each {
                conn.write(ctx, &buf)?.expect("write");
                sent += msg_size;
            }
            ctx.delay(SimDuration::from_millis(2))?;
            conn.close(ctx)?;
            Ok(())
        });
    }
    sim.run();
    let (a, b) = *out.lock();
    assert!(a.is_finite() && b.is_finite(), "both directions complete");
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emp_beats_kernel_tcp_by_the_paper_margin() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let emp = throughput_mbps(&sim, &tb, 64 * 1024, 4 << 20);
        let sim = Sim::new();
        let tb = Testbed::kernel(
            2,
            kernel_tcp::TcpConfig::default(),
            Some(256 * 1024),
            "tcp-big",
        );
        let tcp = throughput_mbps(&sim, &tb, 64 * 1024, 4 << 20);
        // §8: "840 Mbps ... compared to 550 Mbps ... up to 53%".
        let gain = (emp - tcp) / tcp * 100.0;
        assert!(
            (35.0..75.0).contains(&gain),
            "bandwidth gain {gain:.0}% (emp {emp:.0}, tcp {tcp:.0})"
        );
    }

    #[test]
    fn full_duplex_links_carry_both_directions() {
        // Bidirectional aggregate must clearly exceed one direction's
        // ceiling (the links are full duplex; the NIC has two CPUs).
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let one_way = throughput_mbps(&sim, &tb, 64 * 1024, 2 << 20);
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let both = bidirectional_mbps(&sim, &tb, 64 * 1024, 2 << 20);
        assert!(
            both > one_way * 1.5,
            "aggregate {both:.0} vs one-way {one_way:.0} Mbps"
        );
    }

    #[test]
    fn small_messages_cost_bandwidth() {
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let big = throughput_mbps(&sim, &tb, 64 * 1024, 2 << 20);
        let sim = Sim::new();
        let tb = Testbed::emp_default(2);
        let small = throughput_mbps(&sim, &tb, 1024, 2 << 20);
        assert!(
            big > small,
            "64K writes ({big:.0}) vs 1K writes ({small:.0})"
        );
    }
}
