//! Overload chaos harness: connect storms and slowloris against a
//! shedding server, on either stack.
//!
//! The robustness claim (`DESIGN.md` §15) is not that the substrate is
//! fast — it is that *under offered load past saturation the system
//! degrades deterministically instead of collapsing*: every connection
//! attempt ends in exactly one typed outcome (served, degraded, refused,
//! timed out), goodput stays near its saturated peak, and nothing leaks.
//! This module is the workload that demonstrates it, written once
//! against the [`NetApi`] facade so both stacks face the identical
//! storm.
//!
//! The server is a bounded-everything event loop: bounded accept
//! backlog (stack-level admission control refuses the overflow),
//! bounded concurrency (`max_conns` — the overflow is *answered* with a
//! degrade response, then closed), and an idle reaper (the slowloris
//! guard). Clients connect under a deadline and read under a deadline,
//! so no outcome is ever "hung".

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Interest, ProcessCtx, Sim, SimAccess, SimDuration, SimResult, SimTime};

use crate::api::{Api, Conn, NetError, PollSource, PollTarget};
use crate::testbed::Testbed;

/// The storm server's port (within the substrate's tag-space limit).
pub const STORM_PORT: u16 = 999;
/// Fixed request size (a "file name", as in the web server).
pub const REQUEST_SIZE: usize = 16;
/// The degrade response a shed connection is answered with before the
/// close — the client sees a deterministic "server busy", not silence.
pub const BUSY: &[u8] = b"BUSY";

/// The `j`-th byte of a full response; starts with 1, never `b'B'` at
/// offset 0, so a degrade response is distinguishable from byte one.
pub fn response_byte(j: usize) -> u8 {
    ((j * 7 + 1) % 251) as u8
}

/// One storm's shape.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Connection attempts (spread round-robin over the client nodes).
    pub clients: u32,
    /// Extra connections that go silent after connecting — the
    /// slowloris component. The server's idle reaper must remove them.
    pub slowloris: u32,
    /// Inter-arrival gap between consecutive connection attempts: the
    /// offered-load knob (smaller = harder storm).
    pub stagger: SimDuration,
    /// Server listen backlog — the stack-level admission bound; SYNs or
    /// connection requests past it are *refused*, typed.
    pub backlog: usize,
    /// Server concurrency bound — accepted connections past it are
    /// answered with [`BUSY`] and closed (application-level shedding).
    pub max_conns: usize,
    /// Client-side connect deadline.
    pub connect_deadline: SimDuration,
    /// Client-side budget for the full request/response exchange.
    pub response_deadline: SimDuration,
    /// Full-response size in bytes.
    pub response_size: usize,
    /// Server-side idle patience before reaping a silent connection.
    pub idle_timeout: SimDuration,
    /// Kernel-only stack-level connection cap on the server node
    /// ([`kernel_tcp::TcpStack::set_max_conns`]): SYNs past it are
    /// refused with RST. The substrate's equivalent admission bound is
    /// the listen backlog (connection requests past the posted
    /// descriptors are NACKed), so it needs no extra knob here.
    pub kernel_stack_cap: Option<usize>,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            clients: 48,
            slowloris: 0,
            stagger: SimDuration::from_micros(20),
            backlog: 6,
            max_conns: 6,
            connect_deadline: SimDuration::from_millis(20),
            response_deadline: SimDuration::from_millis(50),
            response_size: 4096,
            idle_timeout: SimDuration::from_millis(5),
            kernel_stack_cap: Some(10),
        }
    }
}

/// Every attempt's fate, tallied. The invariant the tests gate on:
/// `served + degraded + refused + timed_out + errored` accounts for
/// every storm client — no attempt vanishes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Outcomes {
    /// Full byte-verified response received.
    pub served: u32,
    /// Deterministic degrade: [`BUSY`], early EOF, or peer close.
    pub degraded: u32,
    /// Connect positively refused (backlog/budget admission control).
    pub refused: u32,
    /// Connect or exchange deadline expired.
    pub timed_out: u32,
    /// Local resource budget hit ([`NetError::Exhausted`]).
    pub exhausted: u32,
    /// Anything else (should stay zero).
    pub errored: u32,
}

/// What one storm produced.
#[derive(Clone, Debug, Default)]
pub struct OverloadReport {
    /// Client-side fates (storm clients only, not slowloris).
    pub outcomes: Outcomes,
    /// Server-side sheds (accept-overflow answers).
    pub shed: u32,
    /// Server-side idle reaps (slowloris victims).
    pub reaped: u32,
    /// Bytes of *full* responses delivered and verified.
    pub goodput_bytes: u64,
    /// The serving window: first connect attempt to last *served*
    /// response, in µs. Deliberately excludes the post-storm tail where
    /// refused/timed-out clients sit out their deadlines — goodput
    /// measures what the server delivered while it was delivering.
    pub elapsed_us: f64,
    /// p99 client latency (connect → verified response) over served
    /// requests, in µs; 0 when nothing was served.
    pub p99_us: f64,
    /// Live connections left in any node's demux/active table after the
    /// storm drained — the leak check; must be zero.
    pub leaked_conns: usize,
    /// Open listeners left behind (server closes its own) — must be zero.
    pub leaked_listeners: usize,
}

impl OverloadReport {
    /// Aggregate goodput over the run, in megabits per second.
    pub fn goodput_mbps(&self) -> f64 {
        if self.elapsed_us <= 0.0 {
            return 0.0;
        }
        (self.goodput_bytes as f64 * 8.0) / self.elapsed_us
    }
}

struct SrvConn {
    conn: Conn,
    inbuf: Vec<u8>,
    out: Vec<u8>,
    sent: usize,
    /// Response fully handed to the stack; close when it drains.
    responded: bool,
    last_activity: SimTime,
}

/// Run one storm (plus optional slowloris) against a shedding server on
/// node 0 of `tb`, clients spread over the remaining nodes. Returns the
/// full accounting; the caller asserts what it cares about (the CI
/// smoke gates `refused > 0 && served > 0 && leaked_conns == 0`).
pub fn run_storm(tb: &Testbed, cfg: &StormConfig) -> OverloadReport {
    run_storm_on(&Sim::new(), tb, cfg)
}

/// [`run_storm`] on a caller-owned simulation, so the storm's telemetry
/// lands in a registry shared with other workload stages (`empstat`).
pub fn run_storm_on(sim: &Sim, tb: &Testbed, cfg: &StormConfig) -> OverloadReport {
    assert!(
        tb.nodes.len() >= 2,
        "storm needs a server and a client node"
    );
    if let Some(stack) = tb.nodes[0].api.tcp_stack() {
        stack.set_max_conns(cfg.kernel_stack_cap);
    }
    let total_clients = cfg.clients + cfg.slowloris;
    let done = Arc::new(AtomicU32::new(0));
    let tallies = Arc::new(Mutex::new(Outcomes::default()));
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let served_bytes = Arc::new(AtomicU32::new(0));
    let last_finish = Arc::new(Mutex::new(SimTime::ZERO));
    let server_counts = Arc::new(Mutex::new((0u32, 0u32))); // (shed, reaped)

    // --- server ---
    {
        let api = Arc::clone(&tb.nodes[0].api);
        let cfg = cfg.clone();
        let done = Arc::clone(&done);
        let server_counts = Arc::clone(&server_counts);
        sim.spawn("storm-server", move |ctx| {
            serve_storm(ctx, &api, &cfg, total_clients, &done, &server_counts)
        });
    }

    // --- slowloris clients: connect, hold silently, close late ---
    for k in 0..cfg.slowloris {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let server = tb.nodes[0].api.local_host();
        let cfg = cfg.clone();
        let done = Arc::clone(&done);
        sim.spawn(format!("slowloris-{k}"), move |ctx| {
            ctx.delay(cfg.stagger * u64::from(k))?;
            if let Ok(conn) = api.connect_deadline(ctx, server, STORM_PORT, cfg.connect_deadline)? {
                // Say nothing; the server's reaper must fire. Hold well
                // past its patience so the reap is unambiguous.
                ctx.delay(cfg.idle_timeout * 4)?;
                let _ = conn.close(ctx);
            }
            done.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
    }

    // --- storm clients ---
    for k in 0..cfg.clients {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let server = tb.nodes[0].api.local_host();
        let cfg = cfg.clone();
        let done = Arc::clone(&done);
        let tallies = Arc::clone(&tallies);
        let latencies = Arc::clone(&latencies);
        let served_bytes = Arc::clone(&served_bytes);
        let last_finish = Arc::clone(&last_finish);
        sim.spawn(format!("storm-client-{k}"), move |ctx| {
            ctx.delay(cfg.stagger * u64::from(cfg.slowloris + k))?;
            let t0 = ctx.now();
            match api.connect_deadline(ctx, server, STORM_PORT, cfg.connect_deadline)? {
                Err(NetError::Refused) => tallies.lock().refused += 1,
                Err(NetError::Timeout) => tallies.lock().timed_out += 1,
                Err(NetError::Exhausted) => tallies.lock().exhausted += 1,
                Err(_) => tallies.lock().errored += 1,
                Ok(conn) => {
                    let fate = exchange(ctx, &conn, &cfg)?;
                    let _ = conn.close(ctx);
                    match fate {
                        Fate::Served => {
                            tallies.lock().served += 1;
                            latencies.lock().push(ctx.now().since(t0).as_micros_f64());
                            served_bytes.fetch_add(cfg.response_size as u32, Ordering::Relaxed);
                            let mut lf = last_finish.lock();
                            *lf = (*lf).max(ctx.now());
                        }
                        Fate::Degraded => tallies.lock().degraded += 1,
                        Fate::TimedOut => tallies.lock().timed_out += 1,
                    }
                }
            }
            done.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
    }

    let started_at = sim.now();
    sim.run_until(started_at + SimDuration::from_secs(120));

    let outcomes = *tallies.lock();
    assert_eq!(
        outcomes.served
            + outcomes.degraded
            + outcomes.refused
            + outcomes.timed_out
            + outcomes.exhausted
            + outcomes.errored,
        cfg.clients,
        "every attempt must end in exactly one typed outcome: {outcomes:?}"
    );

    // Leak check: every node's live-connection table must be empty once
    // the storm drained — refused, shed, reaped, and served alike.
    let mut leaked_conns = 0;
    let mut leaked_listeners = 0;
    for node in &tb.nodes {
        if let Some(s) = node.api.substrate() {
            let st = s.stats();
            leaked_conns += st.connections;
            leaked_listeners += st.listeners;
        }
        if let Some(stack) = node.api.tcp_stack() {
            leaked_conns += stack.live_conns();
        }
    }

    let mut lat = latencies.lock().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p99_us = if lat.is_empty() {
        0.0
    } else {
        lat[((lat.len() - 1) * 99) / 100]
    };
    let (shed, reaped) = *server_counts.lock();
    let elapsed_us = last_finish.lock().since(started_at).as_micros_f64();
    OverloadReport {
        outcomes,
        shed,
        reaped,
        goodput_bytes: u64::from(served_bytes.load(Ordering::Relaxed)),
        elapsed_us,
        p99_us,
        leaked_conns,
        leaked_listeners,
    }
}

/// A client exchange's fate (the connect already succeeded).
enum Fate {
    Served,
    Degraded,
    TimedOut,
}

/// Send the request and read the response under the exchange deadline.
fn exchange(ctx: &ProcessCtx, conn: &Conn, cfg: &StormConfig) -> SimResult<Fate> {
    let give_up_at = ctx.now() + cfg.response_deadline;
    let req = [b'R'; REQUEST_SIZE];
    match conn.write_deadline(ctx, &req, cfg.response_deadline)? {
        Ok(_) => {}
        Err(NetError::Timeout) => return Ok(Fate::TimedOut),
        // A shed server may close before reading the request.
        Err(_) => return Ok(Fate::Degraded),
    }
    let mut got = Vec::with_capacity(cfg.response_size);
    loop {
        let now = ctx.now();
        if now >= give_up_at {
            return Ok(Fate::TimedOut);
        }
        match conn.read_deadline(ctx, cfg.response_size - got.len(), give_up_at.since(now))? {
            Ok(chunk) if chunk.is_empty() => return Ok(Fate::Degraded), // early EOF
            Ok(chunk) => {
                got.extend_from_slice(&chunk);
                if got[0] == b'B' {
                    // Degrade response; drain nothing further.
                    return Ok(Fate::Degraded);
                }
                if got.len() >= cfg.response_size {
                    for (j, &b) in got.iter().enumerate() {
                        assert_eq!(b, response_byte(j), "response byte {j} corrupt");
                    }
                    return Ok(Fate::Served);
                }
            }
            Err(NetError::Timeout) => return Ok(Fate::TimedOut),
            Err(_) => return Ok(Fate::Degraded),
        }
    }
}

/// The bounded-everything server loop. Exits when every client process
/// has finished and no connection is live.
fn serve_storm(
    ctx: &ProcessCtx,
    api: &Api,
    cfg: &StormConfig,
    total_clients: u32,
    done: &AtomicU32,
    counts: &Mutex<(u32, u32)>,
) -> SimResult<()> {
    const LISTENER: usize = usize::MAX;
    let l = api
        .listen(ctx, STORM_PORT, cfg.backlog)?
        .expect("storm port free");
    let shed_ctr = ctx.telemetry().counter("app.shed");
    let reaped_ctr = ctx.telemetry().counter("app.reaped");
    let tick = cfg.idle_timeout / 2;
    let mut conns: Vec<Option<SrvConn>> = Vec::new();
    let mut live = 0usize;
    loop {
        if done.load(Ordering::Relaxed) >= total_clients && live == 0 {
            break;
        }
        let events = {
            let mut sources = vec![PollSource {
                target: PollTarget::Listener(l.as_ref()),
                token: LISTENER,
                interest: Interest::ACCEPTABLE,
            }];
            for (i, slot) in conns.iter().enumerate() {
                if let Some(st) = slot {
                    let interest = if st.sent < st.out.len() {
                        Interest::WRITABLE
                    } else {
                        Interest::READABLE
                    };
                    sources.push(PollSource {
                        target: PollTarget::Conn(&st.conn),
                        token: i,
                        interest,
                    });
                }
            }
            api.poll(ctx, &sources, Some(tick))?.expect("poll")
        };
        for ev in events {
            if ev.token == LISTENER {
                loop {
                    match l.try_accept(ctx)? {
                        Ok(conn) => {
                            if live >= cfg.max_conns {
                                // Concurrency bound: answer, then close —
                                // the deterministic degrade.
                                let _ = conn.try_write(ctx, BUSY)?;
                                let _ = conn.flush(ctx)?;
                                let _ = conn.close(ctx);
                                counts.lock().0 += 1;
                                shed_ctr.add(1);
                                continue;
                            }
                            live += 1;
                            conns.push(Some(SrvConn {
                                conn,
                                inbuf: Vec::new(),
                                out: Vec::new(),
                                sent: 0,
                                responded: false,
                                last_activity: ctx.now(),
                            }));
                        }
                        Err(NetError::WouldBlock) => break,
                        Err(_) => break,
                    }
                }
                continue;
            }
            let Some(st) = conns[ev.token].as_mut() else {
                continue;
            };
            let mut dead = false;
            let before = (st.sent, st.inbuf.len());
            flush_out(ctx, st, &mut dead)?;
            while !dead && st.out.is_empty() && !st.responded {
                match st.conn.try_read(ctx, REQUEST_SIZE)? {
                    Ok(chunk) if chunk.is_empty() => dead = true,
                    Ok(chunk) => {
                        st.inbuf.extend_from_slice(&chunk);
                        if st.inbuf.len() >= REQUEST_SIZE {
                            st.out = (0..cfg.response_size).map(response_byte).collect();
                            st.inbuf.clear();
                        }
                    }
                    Err(NetError::WouldBlock) => break,
                    Err(_) => dead = true,
                }
            }
            flush_out(ctx, st, &mut dead)?;
            if (st.sent, st.inbuf.len()) != before {
                st.last_activity = ctx.now();
            }
            // Response fully delivered: HTTP/1.0 style, close our end.
            if st.responded && st.out.is_empty() {
                dead = true;
            }
            if dead {
                let st = conns[ev.token].take().expect("live state");
                let _ = st.conn.close(ctx);
                live -= 1;
            }
        }
        // The slowloris guard: reap connections that made no progress.
        for slot in conns.iter_mut() {
            let idle = slot
                .as_ref()
                .is_some_and(|st| ctx.now().since(st.last_activity) >= cfg.idle_timeout);
            if idle {
                let st = slot.take().expect("live state");
                let _ = st.conn.close(ctx);
                live -= 1;
                counts.lock().1 += 1;
                reaped_ctr.add(1);
            }
        }
    }
    l.close(ctx)?;
    Ok(())
}

/// Push pending response bytes; mark `responded` once the stack took
/// (and flushed) the whole response.
fn flush_out(ctx: &ProcessCtx, st: &mut SrvConn, dead: &mut bool) -> SimResult<()> {
    while !*dead && st.sent < st.out.len() {
        match st.conn.try_write(ctx, &st.out[st.sent..])? {
            Ok(n) => st.sent += n,
            Err(NetError::WouldBlock) => break,
            Err(_) => *dead = true,
        }
    }
    if !st.out.is_empty() && st.sent == st.out.len() {
        st.out.clear();
        st.sent = 0;
        st.responded = true;
        if !*dead && st.conn.flush(ctx)?.is_err() {
            *dead = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_no_leaks(r: &OverloadReport) {
        assert_eq!(r.leaked_conns, 0, "leaked connections: {r:?}");
        assert_eq!(r.leaked_listeners, 0, "leaked listeners: {r:?}");
    }

    #[test]
    fn storm_on_the_substrate_sheds_and_serves_without_leaks() {
        let r = run_storm(&Testbed::emp_default(4), &StormConfig::default());
        assert!(r.outcomes.served > 0, "some clients must be served: {r:?}");
        assert!(
            r.outcomes.refused + r.shed > 0,
            "past-saturation storm must trip admission control: {r:?}"
        );
        assert_eq!(r.outcomes.errored, 0, "no untyped outcome: {r:?}");
        assert!(r.goodput_bytes > 0);
        assert_no_leaks(&r);
    }

    #[test]
    fn storm_on_the_kernel_stack_sheds_and_serves_without_leaks() {
        let r = run_storm(&Testbed::kernel_default(4), &StormConfig::default());
        assert!(r.outcomes.served > 0, "some clients must be served: {r:?}");
        assert!(
            r.outcomes.refused + r.shed > 0,
            "past-saturation storm must trip admission control: {r:?}"
        );
        assert_eq!(r.outcomes.errored, 0, "no untyped outcome: {r:?}");
        assert_no_leaks(&r);
    }

    #[test]
    fn slowloris_connections_are_reaped_on_both_stacks() {
        for tb in [Testbed::emp_default(4), Testbed::kernel_default(4)] {
            let cfg = StormConfig {
                clients: 6,
                slowloris: 4,
                stagger: SimDuration::from_micros(200),
                ..StormConfig::default()
            };
            let r = run_storm(&tb, &cfg);
            assert!(
                r.reaped > 0,
                "idle reaper must fire on {}: {r:?}",
                tb.nodes[0].api.label()
            );
            assert!(r.outcomes.served > 0, "real clients still served: {r:?}");
            assert_no_leaks(&r);
        }
    }

    #[test]
    fn gentle_load_is_served_in_full_with_no_degradation() {
        // Below saturation nothing should be refused, shed, or reaped.
        let cfg = StormConfig {
            clients: 6,
            stagger: SimDuration::from_millis(2),
            max_conns: 16,
            backlog: 16,
            ..StormConfig::default()
        };
        for tb in [Testbed::emp_default(3), Testbed::kernel_default(3)] {
            let r = run_storm(&tb, &cfg);
            assert_eq!(
                r.outcomes.served,
                6,
                "all served on {}: {r:?}",
                tb.nodes[0].api.label()
            );
            assert_eq!(r.shed + r.reaped + r.outcomes.refused, 0, "{r:?}");
            assert_no_leaks(&r);
        }
    }
}
