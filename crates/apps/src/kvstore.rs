//! A key-value store — the paper's stated future work (§8: "utilizing
//! and evaluating the proposed substrate for a range of commercial
//! applications in the Data center environment").
//!
//! A memcached-shaped service: persistent connections carry GET/PUT
//! requests with small keys and configurable value sizes; clients measure
//! per-operation latency and aggregate throughput. The workload is where
//! the substrate's strengths compound — small messages (latency-bound)
//! on long-lived connections (its connection-setup advantage amortized
//! away), so the win here is a clean view of the data-path difference.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Sim, SimAccess, SimTime};

use crate::api::Conn;
use crate::asyncio::serve_async;
use crate::completion::serve_completion;
use crate::eventloop::{serve_event_loop, serve_event_loop_with, OverloadPolicy, ServeReport};
use crate::testbed::Testbed;
use crate::webserver::ServerModel;

/// Server port.
pub const KV_PORT: u16 = 111;

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const STATUS_OK: u8 = 0;
const STATUS_MISS: u8 = 1;
/// Degrade status a shedding server answers when over its concurrency
/// budget — the client's cue to back off and retry elsewhere.
pub const STATUS_BUSY: u8 = 2;

/// Results of a client run.
#[derive(Clone, Copy, Debug, Default)]
pub struct KvResults {
    /// Operations completed.
    pub ops: u64,
    /// GETs that found a value.
    pub hits: u64,
    /// Mean per-operation round trip in µs.
    pub mean_op_us: f64,
    /// Aggregate operation throughput (ops/s) across all clients.
    pub ops_per_sec: f64,
}

fn encode_request(op: u8, key: u32, value: Option<&[u8]>) -> Bytes {
    let mut b = BytesMut::with_capacity(9 + value.map_or(0, <[u8]>::len));
    b.put_u8(op);
    b.put_u32_le(key);
    b.put_u32_le(value.map_or(0, <[u8]>::len) as u32);
    if let Some(v) = value {
        b.extend_from_slice(v);
    }
    b.freeze()
}

fn read_exactly(
    ctx: &simnet::ProcessCtx,
    conn: &Conn,
    n: usize,
) -> simnet::SimResult<Option<Bytes>> {
    match conn.read_exact(ctx, n)? {
        Ok(v) => Ok(v),
        Err(_) => Ok(None),
    }
}

/// Serve `expected_conns` client connections on node `server`, each
/// handled by its own worker until the client closes.
pub fn spawn_server(sim: &Sim, tb: &Testbed, server: usize, expected_conns: u32) {
    let api = Arc::clone(&tb.nodes[server].api);
    let store: Arc<Mutex<HashMap<u32, Bytes>>> = Arc::new(Mutex::new(HashMap::new()));
    sim.spawn("kv-server", move |ctx| {
        let l = api.listen(ctx, KV_PORT, 16)?.expect("port free");
        for _ in 0..expected_conns {
            let conn = l.accept(ctx)?.expect("client");
            let store = Arc::clone(&store);
            ctx.spawn("kv-worker", move |ctx| {
                // Request: op u8, key u32, value_len u32 [, value].
                while let Some(hdr) = read_exactly(ctx, &conn, 9)? {
                    let op = hdr[0];
                    let key = u32::from_le_bytes(hdr[1..5].try_into().expect("4"));
                    let vlen = u32::from_le_bytes(hdr[5..9].try_into().expect("4")) as usize;
                    match op {
                        OP_PUT => {
                            let Some(value) = read_exactly(ctx, &conn, vlen)? else {
                                break;
                            };
                            store.lock().insert(key, value);
                            // Response: status u8, len u32 (0).
                            let mut r = BytesMut::with_capacity(5);
                            r.put_u8(STATUS_OK);
                            r.put_u32_le(0);
                            if conn.write(ctx, &r)?.is_err() {
                                break;
                            }
                        }
                        OP_GET => {
                            let hit = store.lock().get(&key).cloned();
                            let mut r = BytesMut::with_capacity(5);
                            match &hit {
                                Some(v) => {
                                    r.put_u8(STATUS_OK);
                                    r.put_u32_le(v.len() as u32);
                                    r.extend_from_slice(v);
                                }
                                None => {
                                    r.put_u8(STATUS_MISS);
                                    r.put_u32_le(0);
                                }
                            }
                            if conn.write(ctx, &r)?.is_err() {
                                break;
                            }
                        }
                        other => panic!("unknown kv op {other}"),
                    }
                }
                let _ = conn.close(ctx);
                Ok(())
            });
        }
        l.close(ctx)?;
        Ok(())
    });
}

/// Serve `expected_conns` clients from one single-process event loop on
/// node `server`: the same GET/PUT protocol as [`spawn_server`], framed
/// incrementally out of the loop's receive buffer (the 9-byte header
/// first, then — for PUT — the value body), driven entirely by
/// [`crate::api::NetApi::poll`] and the nonblocking calls.
pub fn spawn_server_event_loop(sim: &Sim, tb: &Testbed, server: usize, expected_conns: u32) {
    let api = Arc::clone(&tb.nodes[server].api);
    sim.spawn("kv-event-loop", move |ctx| {
        let l = api.listen(ctx, KV_PORT, 16)?.expect("port free");
        // Single process: the store needs no lock.
        let mut store: HashMap<u32, Bytes> = HashMap::new();
        serve_event_loop(ctx, api.as_ref(), l.as_ref(), expected_conns, &[], {
            let store = &mut store;
            move |inbuf, out| serve_frames(store, inbuf, out)
        })?;
        l.close(ctx)?;
        Ok(())
    });
}

/// Serve `expected_conns` clients through one completion ring on node
/// `server`: the same GET/PUT protocol and incremental framing as
/// [`spawn_server_event_loop`], but driven by submitted
/// `Read`/`Write` ops over registered buffers and reaped completions
/// ([`crate::completion::serve_completion`]) instead of readiness
/// events.
pub fn spawn_server_completion(sim: &Sim, tb: &Testbed, server: usize, expected_conns: u32) {
    let api = Arc::clone(&tb.nodes[server].api);
    sim.spawn("kv-completion", move |ctx| {
        let l = api.listen(ctx, KV_PORT, 16)?.expect("port free");
        let mut store: HashMap<u32, Bytes> = HashMap::new();
        serve_completion(ctx, api.as_ref(), l, expected_conns, &[], {
            let store = &mut store;
            move |inbuf, out| serve_frames(store, inbuf, out)
        })?;
        Ok(())
    });
}

/// Serve `expected_conns` clients with straight-line async handlers on
/// node `server`: the same GET/PUT protocol and incremental framing as
/// [`spawn_server_event_loop`], but each connection is an `async` task
/// on one executor ([`crate::asyncio::serve_async`]) instead of a hand-
/// threaded state machine.
pub fn spawn_server_async(sim: &Sim, tb: &Testbed, server: usize, expected_conns: u32) {
    let api = Arc::clone(&tb.nodes[server].api);
    sim.spawn("kv-async", move |ctx| {
        let l = api.listen(ctx, KV_PORT, 16)?.expect("port free");
        // Single executor process: the store moves into the service
        // closure and needs no lock.
        let mut store: HashMap<u32, Bytes> = HashMap::new();
        serve_async(ctx, l, expected_conns, &[], move |inbuf, out| {
            serve_frames(&mut store, inbuf, out)
        })?;
        Ok(())
    });
}

/// As [`spawn_server_event_loop`], with a concurrency budget: at most
/// `max_conns` clients are served at once and the overflow is answered
/// with a [`STATUS_BUSY`] frame, then closed. Returns a handle that
/// carries the server's [`ServeReport`] once the workload drains.
pub fn spawn_server_event_loop_shedding(
    sim: &Sim,
    tb: &Testbed,
    server: usize,
    expected_conns: u32,
    max_conns: usize,
) -> Arc<Mutex<Option<ServeReport>>> {
    let api = Arc::clone(&tb.nodes[server].api);
    let report = Arc::new(Mutex::new(None));
    let out = Arc::clone(&report);
    sim.spawn("kv-shedding-loop", move |ctx| {
        let l = api.listen(ctx, KV_PORT, 16)?.expect("port free");
        let mut store: HashMap<u32, Bytes> = HashMap::new();
        // Busy frame: status byte + zero-length value.
        let mut busy = vec![STATUS_BUSY];
        busy.extend_from_slice(&0u32.to_le_bytes());
        let policy = OverloadPolicy {
            max_conns: Some(max_conns),
            shed_response: busy,
            ..OverloadPolicy::default()
        };
        let r = serve_event_loop_with(
            ctx,
            api.as_ref(),
            l.as_ref(),
            expected_conns,
            &[],
            &policy,
            {
                let store = &mut store;
                move |inbuf, out| serve_frames(store, inbuf, out)
            },
        )?;
        *report.lock() = Some(r);
        l.close(ctx)?;
        Ok(())
    });
    out
}

/// Consume every complete request in `inbuf` — leaving a partial frame
/// (short header, or a PUT whose value is still in flight) for the next
/// batch of bytes — and append the responses to `out`.
fn serve_frames(store: &mut HashMap<u32, Bytes>, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) {
    loop {
        if inbuf.len() < 9 {
            return;
        }
        let op = inbuf[0];
        let key = u32::from_le_bytes(inbuf[1..5].try_into().expect("4 bytes"));
        let vlen = u32::from_le_bytes(inbuf[5..9].try_into().expect("4 bytes")) as usize;
        match op {
            OP_PUT => {
                if inbuf.len() < 9 + vlen {
                    return; // the value is still in flight
                }
                store.insert(key, Bytes::copy_from_slice(&inbuf[9..9 + vlen]));
                inbuf.drain(..9 + vlen);
                out.push(STATUS_OK);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            OP_GET => {
                inbuf.drain(..9);
                match store.get(&key).cloned() {
                    Some(v) => {
                        out.push(STATUS_OK);
                        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                        out.extend_from_slice(&v);
                    }
                    None => {
                        out.push(STATUS_MISS);
                        out.extend_from_slice(&0u32.to_le_bytes());
                    }
                }
            }
            other => panic!("unknown kv op {other}"),
        }
    }
}

/// Run `n_clients` clients (on nodes 1..) against a server on node 0;
/// each performs `ops_per_client` operations with the given value size
/// and GET fraction. Deterministic for a given seed.
pub fn run_workload(
    tb: &Testbed,
    n_clients: usize,
    ops_per_client: u32,
    value_size: usize,
    get_fraction: f64,
    seed: u64,
) -> KvResults {
    run_workload_with(
        tb,
        ServerModel::PerConnection,
        n_clients,
        ops_per_client,
        value_size,
        get_fraction,
        seed,
    )
}

/// As [`run_workload`], with the server structured per `model`.
pub fn run_workload_with(
    tb: &Testbed,
    model: ServerModel,
    n_clients: usize,
    ops_per_client: u32,
    value_size: usize,
    get_fraction: f64,
    seed: u64,
) -> KvResults {
    assert!(
        tb.nodes.len() > n_clients,
        "need a node per client + server"
    );
    let sim = Sim::new();
    match model {
        ServerModel::PerConnection => spawn_server(&sim, tb, 0, n_clients as u32),
        ServerModel::EventLoop => spawn_server_event_loop(&sim, tb, 0, n_clients as u32),
        ServerModel::Completion => spawn_server_completion(&sim, tb, 0, n_clients as u32),
        ServerModel::Async => spawn_server_async(&sim, tb, 0, n_clients as u32),
    }
    let acc = Arc::new(Mutex::new((0u64, 0u64, 0.0f64, SimTime::ZERO)));

    for c in 0..n_clients {
        let api = Arc::clone(&tb.nodes[c + 1].api);
        let host = tb.nodes[0].api.local_host();
        let acc = Arc::clone(&acc);
        sim.spawn(format!("kv-client-{c}"), move |ctx| {
            let mut rng = StdRng::seed_from_u64(seed ^ (c as u64) << 32);
            let conn = api.connect(ctx, host, KV_PORT)?.expect("connect");
            let value = vec![0xcdu8; value_size];
            let key_space = 256u32;
            let mut ops = 0u64;
            let mut hits = 0u64;
            let mut total_us = 0.0f64;
            // Warm a few keys so GETs can hit.
            for k in 0..8u32 {
                conn.write(ctx, &encode_request(OP_PUT, k, Some(&value)))?
                    .expect("put");
                let _ = read_exactly(ctx, &conn, 5)?.expect("resp");
            }
            for _ in 0..ops_per_client {
                let t0 = ctx.now();
                let key = rng.gen_range(0..key_space);
                if rng.gen_bool(get_fraction) {
                    conn.write(ctx, &encode_request(OP_GET, key, None))?
                        .expect("get");
                    let hdr = read_exactly(ctx, &conn, 5)?.expect("resp");
                    let len = u32::from_le_bytes(hdr[1..5].try_into().expect("4")) as usize;
                    if hdr[0] == STATUS_OK {
                        hits += 1;
                        let body = read_exactly(ctx, &conn, len)?.expect("body");
                        debug_assert_eq!(body.len(), value_size);
                    }
                } else {
                    conn.write(ctx, &encode_request(OP_PUT, key, Some(&value)))?
                        .expect("put");
                    let _ = read_exactly(ctx, &conn, 5)?.expect("resp");
                }
                ops += 1;
                total_us += (ctx.now() - t0).as_micros_f64();
            }
            conn.close(ctx)?;
            let mut a = acc.lock();
            a.0 += ops;
            a.1 += hits;
            a.2 += total_us;
            a.3 = a.3.max(ctx.now());
            Ok(())
        });
    }
    sim.run_until(SimTime::from_secs(600));
    let (ops, hits, total_us, end) = *acc.lock();
    assert_eq!(
        ops,
        n_clients as u64 * u64::from(ops_per_client),
        "every operation completes"
    );
    KvResults {
        ops,
        hits,
        mean_op_us: total_us / ops as f64,
        ops_per_sec: ops as f64 / end.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrips_values_exactly() {
        // Direct correctness: PUT then GET the same key returns identical
        // bytes (checked inside the client via length + debug asserts;
        // here also via hit counting with a single hot key).
        let tb = Testbed::emp_default(2);
        let r = run_workload(&tb, 1, 60, 256, 0.7, 42);
        assert_eq!(r.ops, 60);
        assert!(r.hits > 0, "warmed keys must produce hits");
        assert!(r.mean_op_us > 0.0);
    }

    #[test]
    fn substrate_serves_ops_faster_than_tcp() {
        // Data-center shape: small values, persistent connections, three
        // clients. Per-op latency is dominated by the stack's small-
        // message path (Figure 13a), so the substrate should serve ops
        // ~3x faster.
        let emp = run_workload(&Testbed::emp_default(4), 3, 50, 128, 0.9, 7);
        let tcp = run_workload(&Testbed::kernel_default(4), 3, 50, 128, 0.9, 7);
        let ratio = tcp.mean_op_us / emp.mean_op_us;
        assert!(
            ratio > 2.0,
            "kv op latency ratio {ratio:.2} (emp {:.0} us, tcp {:.0} us)",
            emp.mean_op_us,
            tcp.mean_op_us
        );
        assert!(emp.ops_per_sec > tcp.ops_per_sec);
    }

    #[test]
    fn event_loop_server_completes_the_same_workload() {
        let tb = Testbed::emp_default(3);
        let el = run_workload_with(&tb, ServerModel::EventLoop, 2, 30, 64, 0.5, 9);
        assert_eq!(el.ops, 60);
        assert!(el.hits > 0, "warmed keys must produce hits");
        let tcp = Testbed::kernel_default(3);
        let el = run_workload_with(&tcp, ServerModel::EventLoop, 2, 30, 64, 0.5, 9);
        assert_eq!(el.ops, 60);
    }

    #[test]
    fn shedding_kv_server_degrades_overflow_deterministically() {
        // 6 clients vs a budget of 2: the overflow gets STATUS_BUSY (or
        // a clean close), the budgeted ones a real response; server and
        // client counts agree; nobody hangs.
        for tb in [Testbed::emp_default(4), Testbed::kernel_default(4)] {
            let sim = Sim::new();
            let report = spawn_server_event_loop_shedding(&sim, &tb, 0, 6, 2);
            let tally = Arc::new(Mutex::new((0u32, 0u32))); // (served, busy)
            for c in 0..6u32 {
                let node = 1 + (c as usize % (tb.nodes.len() - 1));
                let api = Arc::clone(&tb.nodes[node].api);
                let host = tb.nodes[0].api.local_host();
                let tally = Arc::clone(&tally);
                sim.spawn(format!("kv-shed-client-{c}"), move |ctx| {
                    let conn = api.connect(ctx, host, KV_PORT)?.expect("connect");
                    let value = [0xabu8; 32];
                    let mut busy = false;
                    if conn
                        .write(ctx, &encode_request(OP_PUT, c, Some(&value)))?
                        .is_err()
                    {
                        busy = true; // shed before the request was read
                    }
                    if !busy {
                        match read_exactly(ctx, &conn, 5)? {
                            Some(hdr) if hdr[0] == STATUS_OK => {}
                            // STATUS_BUSY frame or bare EOF: degraded.
                            _ => busy = true,
                        }
                    }
                    let _ = conn.close(ctx);
                    let mut t = tally.lock();
                    if busy {
                        t.1 += 1;
                    } else {
                        t.0 += 1;
                    }
                    Ok(())
                });
            }
            sim.run_until(SimTime::from_secs(60));
            let (served, busy) = *tally.lock();
            assert_eq!(served + busy, 6, "every client gets a typed answer");
            assert!(
                busy > 0,
                "overflow must be degraded on {}",
                tb.nodes[0].api.label()
            );
            assert!(served >= 2, "budgeted clients are served");
            let r = report.lock().expect("server finished");
            assert_eq!(r.shed, busy, "server and client shed counts agree");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = run_workload(&Testbed::emp_default(3), 2, 30, 64, 0.5, 9);
        let b = run_workload(&Testbed::emp_default(3), 2, 30, 64, 0.5, 9);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.mean_op_us.to_bits(), b.mean_op_us.to_bits());
    }
}
