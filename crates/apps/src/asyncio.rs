//! The async/await front end: straight-line handlers over both stacks.
//!
//! Everything here runs inside an [`emp_async::LocalExecutor`] on one
//! simulated process — single-threaded, woken only by simulation events,
//! deterministic for a given seed. The socket surface is phase-typed the
//! way Demikernel splits its queue descriptors: an [`AsyncConnector`]
//! (the API handle) opens connections and listeners, an
//! [`AsyncListener`] accepts, and an [`AsyncStream`] carries bytes. Each
//! type only offers the operations its phase allows, so "read before
//! connect" is unrepresentable rather than a runtime error.
//!
//! Two wake sources feed the futures:
//!
//! * **readiness** — [`NetConn::poll_ready`]/[`NetListener::poll_acceptable`]
//!   arm a waker in the stack's readiness layer; the leaf futures here
//!   retry the nonblocking call after each wake (`try_read` →
//!   `WouldBlock` → wait readable → retry);
//! * **completion** — [`AsyncRing`] wraps a [`NetRing`] and parks ops as
//!   futures on their CQEs via [`NetRing::register_waker`].
//!
//! Cancellation is dropping the future. A dropped readiness wait disarms
//! the stateful wake sources it armed ([`NetConn::cancel_ready`] — the
//! substrate's flow-control ack watch); a dropped ring op is cancelled in
//! the submission queue ([`NetRing::cancel`]) or, when already past that
//! point, marked abandoned so its completion is discarded and its buffer
//! returned on the next reap. Deadlines compose the same way:
//! [`emp_async::timeout`] drops the losing future, which *is* the
//! cancellation.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::future::{poll_fn, Future};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use bytes::Bytes;
use emp_async::{try_with_ctx, with_ctx, LocalExecutor};
use parking_lot::Mutex;
use simnet::{MacAddr, ProcessCtx, SimAccess, SimAccessExt, SimDuration, SimResult, SimTime};

use crate::api::{
    Api, Conn, CqeResult, Interest, NetApi, NetError, NetListener, NetRing, OpError, RingConfig,
    RingCounters, RingDepths, RingOp, Sqe,
};

/// Read granularity of [`serve_async`] handlers, matching the event
/// loop's chunk so the three single-process server models issue
/// identical I/O patterns.
pub const READ_CHUNK: usize = 4096;

// ---------------------------------------------------------------------
// Phase 1: the connector
// ---------------------------------------------------------------------

/// The entry phase of the async socket lifecycle: opens connections
/// (→ [`AsyncStream`]) and listeners (→ [`AsyncListener`]) on one stack.
pub struct AsyncConnector {
    api: Api,
}

impl AsyncConnector {
    /// Wrap a stack API.
    pub fn new(api: Api) -> Self {
        AsyncConnector { api }
    }

    /// The wrapped API.
    pub fn api(&self) -> &Api {
        &self.api
    }

    /// Active open. The blocking handshake runs on a helper process
    /// ([`emp_async::spawn_blocking`]), so sibling tasks keep running
    /// while this connection is being set up.
    pub async fn connect(
        &self,
        host: MacAddr,
        port: u16,
    ) -> SimResult<Result<AsyncStream, NetError>> {
        let api = Arc::clone(&self.api);
        let res =
            emp_async::spawn_blocking("async-connect", move |ctx| api.connect(ctx, host, port))
                .await?;
        Ok(res.map(AsyncStream::new))
    }

    /// [`Self::connect`] bounded by `deadline` — the stack's typed
    /// connect timeout ([`NetError::Timeout`] / [`NetError::Refused`]).
    pub async fn connect_deadline(
        &self,
        host: MacAddr,
        port: u16,
        deadline: SimDuration,
    ) -> SimResult<Result<AsyncStream, NetError>> {
        let api = Arc::clone(&self.api);
        let res = emp_async::spawn_blocking("async-connect", move |ctx| {
            api.connect_deadline(ctx, host, port, deadline)
        })
        .await?;
        Ok(res.map(AsyncStream::new))
    }

    /// Passive open: bind `port` and move to the listening phase.
    pub async fn listen(
        &self,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<AsyncListener, NetError>> {
        let res = with_ctx(|ctx| self.api.listen(ctx, port, backlog))?;
        Ok(res.map(AsyncListener::new))
    }
}

// ---------------------------------------------------------------------
// Phase 2: the listener
// ---------------------------------------------------------------------

/// The listening phase: accepts connections into [`AsyncStream`]s.
pub struct AsyncListener {
    l: Box<dyn NetListener>,
}

impl AsyncListener {
    /// Wrap a facade listener (e.g. one opened before entering async
    /// code).
    pub fn new(l: Box<dyn NetListener>) -> Self {
        AsyncListener { l }
    }

    /// The wrapped facade listener.
    pub fn get_ref(&self) -> &dyn NetListener {
        self.l.as_ref()
    }

    /// Await the next connection.
    pub async fn accept(&self) -> SimResult<Result<AsyncStream, NetError>> {
        loop {
            match with_ctx(|ctx| self.l.try_accept(ctx))? {
                Ok(c) => return Ok(Ok(AsyncStream::new(c))),
                Err(NetError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            if let Err(e) = acceptable(self.l.as_ref()).await? {
                return Ok(Err(e));
            }
        }
    }

    /// [`Self::accept`] bounded by `deadline`: dropping the losing
    /// accept future is its cancellation.
    pub async fn accept_deadline(
        &self,
        deadline: SimDuration,
    ) -> SimResult<Result<AsyncStream, NetError>> {
        match emp_async::timeout(deadline, self.accept()).await {
            Some(r) => r,
            None => Ok(Err(NetError::Timeout)),
        }
    }

    /// Stop listening.
    pub async fn close(&self) -> SimResult<()> {
        with_ctx(|ctx| self.l.close(ctx))
    }
}

/// Resolve when the listener's backlog is non-empty.
async fn acceptable(l: &dyn NetListener) -> SimResult<Result<Interest, NetError>> {
    poll_fn(|cx| {
        with_ctx(|ctx| match l.poll_acceptable(ctx, cx.waker()) {
            Err(e) => Poll::Ready(Err(e)),
            Ok(Err(e)) => Poll::Ready(Ok(Err(e))),
            Ok(Ok(r)) if !r.is_empty() => Poll::Ready(Ok(Ok(r))),
            Ok(Ok(_)) => Poll::Pending,
        })
    })
    .await
}

// ---------------------------------------------------------------------
// Phase 3: the stream
// ---------------------------------------------------------------------

/// An established connection in the async lifecycle. Every method is a
/// nonblocking attempt retried after a readiness wake, so awaiting one
/// never parks the executor's process — sibling tasks keep running.
pub struct AsyncStream {
    conn: Conn,
}

impl AsyncStream {
    /// Wrap an established facade connection.
    pub fn new(conn: Conn) -> Self {
        AsyncStream { conn }
    }

    /// The wrapped facade connection.
    pub fn get_ref(&self) -> &Conn {
        &self.conn
    }

    /// Unwrap back to the facade connection (e.g. to register it in a
    /// completion ring).
    pub fn into_inner(self) -> Conn {
        self.conn
    }

    /// Read up to `max` bytes; empty = EOF.
    pub async fn read(&self, max: usize) -> SimResult<Result<Bytes, NetError>> {
        loop {
            match with_ctx(|ctx| self.conn.try_read(ctx, max))? {
                Ok(b) => return Ok(Ok(b)),
                Err(NetError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            if let Err(e) = Readiness::new(&self.conn, Interest::READABLE).await? {
                return Ok(Err(e));
            }
        }
    }

    /// Read exactly `n` bytes; `None` on premature EOF.
    pub async fn read_exact(&self, n: usize) -> SimResult<Result<Option<Bytes>, NetError>> {
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let chunk = match self.read(n - buf.len()).await? {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            if chunk.is_empty() {
                return Ok(Ok(None));
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Ok(Some(Bytes::from(buf))))
    }

    /// [`Self::read`] bounded by `deadline`. The timed-out read future
    /// is dropped — its drop guard disarms whatever it had armed.
    pub async fn read_deadline(
        &self,
        max: usize,
        deadline: SimDuration,
    ) -> SimResult<Result<Bytes, NetError>> {
        match emp_async::timeout(deadline, self.read(max)).await {
            Some(r) => r,
            None => Ok(Err(NetError::Timeout)),
        }
    }

    /// Write the whole buffer, waiting out flow control between chunks.
    pub async fn write_all(&self, data: &[u8]) -> SimResult<Result<(), NetError>> {
        let mut sent = 0;
        while sent < data.len() {
            match with_ctx(|ctx| self.conn.try_write(ctx, &data[sent..]))? {
                Ok(n) => sent += n,
                Err(NetError::WouldBlock) => {
                    if let Err(e) = Readiness::new(&self.conn, Interest::WRITABLE).await? {
                        return Ok(Err(e));
                    }
                }
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(()))
    }

    /// [`Self::write_all`] bounded by `deadline`; a cancelled write
    /// disarms the substrate's flow-control ack watch on the way out.
    pub async fn write_all_deadline(
        &self,
        data: &[u8],
        deadline: SimDuration,
    ) -> SimResult<Result<(), NetError>> {
        match emp_async::timeout(deadline, self.write_all(data)).await {
            Some(r) => r,
            None => Ok(Err(NetError::Timeout)),
        }
    }

    /// Push out anything the stack staged for aggregation.
    pub async fn flush(&self) -> SimResult<Result<(), NetError>> {
        with_ctx(|ctx| self.conn.flush(ctx))
    }

    /// Await readiness without performing I/O — the async `poll()`.
    pub async fn ready(&self, interest: Interest) -> SimResult<Result<Interest, NetError>> {
        Readiness::new(&self.conn, interest).await
    }

    /// Orderly close.
    pub async fn close(&self) -> SimResult<()> {
        with_ctx(|ctx| self.conn.close(ctx))
    }
}

/// Leaf future over [`NetConn::poll_ready`]: resolves when any of
/// `interest` is ready. Its `Drop` is the cancellation path — when the
/// wait is abandoned mid-flight (deadline fired, task dropped) it
/// disarms the stateful wake sources registration armed.
struct Readiness<'a> {
    conn: &'a Conn,
    interest: Interest,
    /// A registration is live (armed and not yet observed ready).
    armed: bool,
}

impl<'a> Readiness<'a> {
    fn new(conn: &'a Conn, interest: Interest) -> Self {
        Readiness {
            conn,
            interest,
            armed: false,
        }
    }
}

impl Future for Readiness<'_> {
    type Output = SimResult<Result<Interest, NetError>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        with_ctx(
            |ctx| match this.conn.poll_ready(ctx, this.interest, cx.waker()) {
                Err(e) => Poll::Ready(Err(e)),
                Ok(Err(e)) => {
                    this.armed = false;
                    Poll::Ready(Ok(Err(e)))
                }
                Ok(Ok(r)) if !r.is_empty() => {
                    this.armed = false;
                    Poll::Ready(Ok(Ok(r)))
                }
                Ok(Ok(_)) => {
                    this.armed = true;
                    Poll::Pending
                }
            },
        )
    }
}

impl Drop for Readiness<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Executor drops run with the context installed; a drop
            // after the executor is gone (abandoned task) has no stack
            // to disarm and nothing left to leak.
            try_with_ctx(|ctx| {
                let _ = self.conn.cancel_ready(ctx);
            });
        }
    }
}

// ---------------------------------------------------------------------
// The async server skeleton
// ---------------------------------------------------------------------

/// Accept `n_conns` connections from `l` and serve each with a
/// straight-line async handler: greeting, then read → `service(inbuf,
/// out)` → write-all → flush until EOF. The per-connection state machine
/// the event loop threads by hand is just control flow here, yet the
/// whole server still runs on one process — the executor interleaves
/// handlers at their await points. Same protocol, byte for byte, as
/// [`crate::eventloop::serve_event_loop`] and
/// [`crate::completion::serve_completion`].
pub fn serve_async(
    ctx: &ProcessCtx,
    l: Box<dyn NetListener>,
    n_conns: u32,
    greeting: &[u8],
    service: impl FnMut(&mut Vec<u8>, &mut Vec<u8>) + 'static,
) -> SimResult<()> {
    let exec = LocalExecutor::new();
    let spawner = exec.spawner();
    let listener = Rc::new(AsyncListener::new(l));
    let service: SharedService = Rc::new(RefCell::new(service));
    let greeting: Rc<[u8]> = Rc::from(greeting);
    let handles: Rc<RefCell<Vec<emp_async::JoinHandle<SimResult<()>>>>> =
        Rc::new(RefCell::new(Vec::new()));
    let root = {
        let handles = Rc::clone(&handles);
        exec.spawn(async move {
            for _ in 0..n_conns {
                let stream = listener.accept().await?.expect("async accept");
                let service = Rc::clone(&service);
                let greeting = Rc::clone(&greeting);
                let h = spawner.spawn(async move { handle_conn(stream, &greeting, service).await });
                handles.borrow_mut().push(h);
            }
            listener.close().await
        })
    };
    exec.run(ctx)?;
    // `run` drains every task, so the handles resolve; surface any
    // simulation error a handler hit instead of swallowing it.
    root.try_take().expect("acceptor ran to completion")?;
    for h in handles.borrow_mut().drain(..) {
        h.try_take().expect("handler ran to completion")?;
    }
    Ok(())
}

/// The request handler shared by every connection task: `(inbuf, out)`.
type SharedService = Rc<RefCell<dyn FnMut(&mut Vec<u8>, &mut Vec<u8>)>>;

/// One connection's life, written straight down the page.
async fn handle_conn(
    stream: AsyncStream,
    greeting: &[u8],
    service: SharedService,
) -> SimResult<()> {
    let mut inbuf: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    if stream.write_all(greeting).await?.is_ok() && stream.flush().await?.is_ok() {
        loop {
            let chunk = match stream.read(READ_CHUNK).await? {
                Ok(c) => c,
                Err(_) => break,
            };
            if chunk.is_empty() {
                break; // EOF
            }
            inbuf.extend_from_slice(&chunk);
            // The borrow lives for this statement only — never across an
            // await (the executor is single-threaded; a held borrow over
            // a suspension point would poison sibling handlers).
            service.borrow_mut()(&mut inbuf, &mut out);
            if !out.is_empty() {
                if stream.write_all(&out).await?.is_err() {
                    break;
                }
                out.clear();
                if stream.flush().await?.is_err() {
                    break;
                }
            }
        }
    }
    stream.close().await
}

// ---------------------------------------------------------------------
// The completion layer as futures
// ---------------------------------------------------------------------

/// What a reaped completion boils down to once its registered buffer has
/// been copied out and returned to the pool.
enum Done {
    /// `Accept` completed with this registered connection id.
    Accepted(u32),
    /// `Read` delivered these bytes (copied out of the registered
    /// buffer at reap time, before the buffer could be reused).
    Data(Bytes),
    /// `Read` met end-of-stream.
    Eof,
    /// `Write` accepted this many bytes.
    Wrote(u32),
    /// `Close` retired the connection.
    Closed,
    /// The op failed.
    Failed(OpError),
}

struct RingInner {
    ring: Box<dyn NetRing>,
    cfg: RingConfig,
    next_ud: u64,
    /// Completions reaped but not yet claimed by their future.
    completed: HashMap<u64, Done>,
    /// Ops whose future was dropped: discard the completion on reap.
    abandoned: HashSet<u64>,
    /// Application-owned registered buffers.
    free_bufs: Vec<u32>,
    /// Which buffer each in-flight op holds, so *any* completion —
    /// including `Failed`/`Cancelled`, whose CQE does not name a buffer —
    /// returns it to the pool.
    bufs_in_flight: HashMap<u64, u32>,
    /// Deadline instants a timer is already scheduled for.
    timers: Vec<SimTime>,
}

/// Wakers of the futures currently parked on this ring, keyed by op tag.
/// Ordered so wake fan-out is deterministic, and shared (`Send`) so the
/// deadline timer scheduled into the engine can reach it.
type RingWaiters = Arc<Mutex<BTreeMap<u64, Waker>>>;

/// A [`NetRing`] driven by futures: submit an op, `await` its
/// completion. One future per op; any parked future re-drives the ring
/// when woken and distributes the completions it reaps to its siblings.
/// Dropping an op future cancels it ([`NetRing::cancel`]) or, past the
/// point of no return, abandons it — either way the registered buffer
/// comes back to the pool and `ring.*` gauges drain to zero.
pub struct AsyncRing {
    inner: Rc<RefCell<RingInner>>,
    waiters: RingWaiters,
}

fn op_err(e: OpError) -> NetError {
    match e {
        OpError::Refused => NetError::Refused,
        OpError::Closed => NetError::Closed,
        OpError::PeerClosed => NetError::PeerClosed,
        OpError::TooBig => NetError::TooBig,
        OpError::Invalid => NetError::Invalid,
        OpError::Timeout => NetError::Timeout,
        OpError::Exhausted => NetError::Exhausted,
        OpError::Cancelled => NetError::Other("op cancelled".into()),
        OpError::Other => NetError::Other("ring op failed".into()),
    }
}

/// Drain the completion queue into the stash, copying read payloads out
/// of their registered buffers and returning every completed op's buffer
/// to the pool. Abandoned ops' completions are discarded here.
fn reap_all(inner: &mut RingInner) {
    for cqe in inner.ring.reap(usize::MAX) {
        let done = match cqe.result {
            CqeResult::Accepted { conn } => Done::Accepted(conn),
            CqeResult::Read { buf, len } => Done::Data(Bytes::copy_from_slice(
                &inner.ring.buf(buf).expect("registered buffer")[..len as usize],
            )),
            CqeResult::Close { .. } => Done::Eof,
            CqeResult::Wrote { len, .. } => Done::Wrote(len),
            CqeResult::Closed { .. } => Done::Closed,
            CqeResult::Failed { err } => Done::Failed(err),
        };
        if let Some(buf) = inner.bufs_in_flight.remove(&cqe.user_data) {
            inner.free_bufs.push(buf);
        }
        if inner.abandoned.remove(&cqe.user_data) {
            continue;
        }
        inner.completed.insert(cqe.user_data, done);
    }
}

/// Wake every parked sibling except `except`. Called whenever one op
/// resolves or is dropped: the stack-level waker the ring armed may have
/// belonged to the departing future, so the survivors re-poll and one of
/// them re-arms (their recheck makes the spurious wakes harmless).
fn wake_siblings(waiters: &RingWaiters, except: u64) {
    for (ud, w) in waiters.lock().iter() {
        if *ud != except {
            w.wake_by_ref();
        }
    }
}

impl AsyncRing {
    /// Build a completion ring on `api` and wrap it. `label` namespaces
    /// the ring's telemetry gauges (`ring.<label>.*`).
    pub fn new(api: &dyn NetApi, cfg: RingConfig, label: &str) -> Self {
        let ring = api.ring(cfg, label);
        AsyncRing {
            inner: Rc::new(RefCell::new(RingInner {
                ring,
                cfg,
                next_ud: 0,
                completed: HashMap::new(),
                abandoned: HashSet::new(),
                free_bufs: (0..cfg.buf_count as u32).rev().collect(),
                bufs_in_flight: HashMap::new(),
                timers: Vec::new(),
            })),
            waiters: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Register a facade connection (same stack as the ring).
    pub fn add_conn(&self, conn: Conn) -> u32 {
        self.inner.borrow_mut().ring.add_conn(conn)
    }

    /// Register a facade listener (same stack as the ring).
    pub fn add_listener(&self, l: Box<dyn NetListener>) -> u32 {
        self.inner.borrow_mut().ring.add_listener(l)
    }

    /// Await the next connection on a registered listener.
    pub async fn accept(&self, listener: u32) -> SimResult<Result<u32, NetError>> {
        match self.submit(RingOp::Accept { listener }, None, None).await? {
            Done::Accepted(conn) => Ok(Ok(conn)),
            Done::Failed(e) => Ok(Err(op_err(e))),
            _ => unreachable!("accept completes as Accepted or Failed"),
        }
    }

    /// Await one read on `conn` (up to one registered buffer's worth);
    /// empty = EOF.
    pub async fn read(&self, conn: u32) -> SimResult<Result<Bytes, NetError>> {
        self.read_inner(conn, None).await
    }

    /// [`Self::read`] with an absolute per-op deadline
    /// ([`NetError::Timeout`] when it passes while the op would still
    /// block).
    pub async fn read_deadline(
        &self,
        conn: u32,
        deadline: SimTime,
    ) -> SimResult<Result<Bytes, NetError>> {
        self.read_inner(conn, Some(deadline)).await
    }

    async fn read_inner(
        &self,
        conn: u32,
        deadline: Option<SimTime>,
    ) -> SimResult<Result<Bytes, NetError>> {
        let buf = self.take_buf();
        match self
            .submit(RingOp::Read { conn, buf }, Some(buf), deadline)
            .await?
        {
            Done::Data(b) => Ok(Ok(b)),
            Done::Eof => Ok(Ok(Bytes::new())),
            Done::Failed(e) => Ok(Err(op_err(e))),
            _ => unreachable!("read completes as Read, Close, or Failed"),
        }
    }

    /// Write the whole buffer through registered buffers, one chunk in
    /// flight at a time.
    pub async fn write_all(&self, conn: u32, data: &[u8]) -> SimResult<Result<(), NetError>> {
        let chunk_cap = self.inner.borrow().cfg.buf_size;
        let mut sent = 0;
        while sent < data.len() {
            let buf = self.take_buf();
            let chunk = (data.len() - sent).min(chunk_cap);
            self.inner
                .borrow_mut()
                .ring
                .fill(buf, &data[sent..sent + chunk])
                .expect("buffer off the free list");
            let op = RingOp::Write {
                conn,
                buf,
                len: chunk as u32,
            };
            match self.submit(op, Some(buf), None).await? {
                Done::Wrote(n) => sent += n as usize,
                Done::Failed(e) => return Ok(Err(op_err(e))),
                _ => unreachable!("write completes as Wrote or Failed"),
            }
        }
        Ok(Ok(()))
    }

    /// Retire a registered connection.
    pub async fn close_conn(&self, conn: u32) -> SimResult<Result<(), NetError>> {
        match self.submit(RingOp::Close { conn }, None, None).await? {
            Done::Closed => Ok(Ok(())),
            Done::Failed(e) => Ok(Err(op_err(e))),
            _ => unreachable!("close completes as Closed or Failed"),
        }
    }

    /// Registered buffers currently application-owned (pool view —
    /// equals [`NetRing::free_bufs`] when no completion is stashed).
    pub fn pool_free(&self) -> usize {
        self.inner.borrow().free_bufs.len()
    }

    /// Ring occupancy passthrough.
    pub fn depths(&self) -> RingDepths {
        self.inner.borrow().ring.depths()
    }

    /// Ring op accounting passthrough.
    pub fn counters(&self) -> RingCounters {
        self.inner.borrow().ring.counters()
    }

    /// Registered connections currently live.
    pub fn live_conns(&self) -> usize {
        self.inner.borrow().ring.live_conns()
    }

    /// Fail queued ops, close every target, release buffers.
    pub fn shutdown(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.inner.borrow_mut().ring.shutdown(ctx)
    }

    fn take_buf(&self) -> u32 {
        self.inner
            .borrow_mut()
            .free_bufs
            .pop()
            .expect("ring buffer pool sized for its concurrent ops")
    }

    fn submit(&self, op: RingOp, buf: Option<u32>, deadline: Option<SimTime>) -> RingOpFuture {
        let mut inner = self.inner.borrow_mut();
        let ud = inner.next_ud;
        inner.next_ud += 1;
        let mut sqe = Sqe::new(ud, op);
        if let Some(d) = deadline {
            sqe = sqe.with_deadline(d);
        }
        inner.ring.push(sqe).expect("async ring sized for its ops");
        if let Some(b) = buf {
            inner.bufs_in_flight.insert(ud, b);
        }
        RingOpFuture {
            ring: Rc::clone(&self.inner),
            waiters: Arc::clone(&self.waiters),
            user_data: ud,
            done: false,
        }
    }
}

/// One submitted op awaiting its completion.
struct RingOpFuture {
    ring: Rc<RefCell<RingInner>>,
    waiters: RingWaiters,
    user_data: u64,
    done: bool,
}

impl Future for RingOpFuture {
    type Output = SimResult<Done>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut inner = this.ring.borrow_mut();
        if let Some(done) = inner.completed.remove(&this.user_data) {
            drop(inner);
            this.resolve();
            return Poll::Ready(Ok(done));
        }
        let res: SimResult<Poll<Done>> = with_ctx(|ctx| {
            // Drive, then reap for everyone: completions for sibling ops
            // land in the stash and their futures are woken below.
            inner.ring.submit(ctx)?;
            reap_all(&mut inner);
            if let Some(done) = inner.completed.remove(&this.user_data) {
                return Ok(Poll::Ready(done));
            }
            // Park: stash our waker for sibling-driven wakes, arm the
            // stack-level waker over every stalled head op, and make
            // sure the earliest per-op deadline has a timer.
            this.waiters
                .lock()
                .insert(this.user_data, cx.waker().clone());
            if let Some(deadline) = inner.ring.register_waker(ctx, cx.waker())? {
                let now = ctx.now();
                inner.timers.retain(|t| *t > now);
                if !inner.timers.contains(&deadline) {
                    inner.timers.push(deadline);
                    let waiters = Arc::clone(&this.waiters);
                    // The timer wakes whoever is parked *at fire time* —
                    // the arming future may be long gone by then.
                    ctx.schedule_at(deadline, move |_| {
                        for w in waiters.lock().values() {
                            w.wake_by_ref();
                        }
                    });
                }
            }
            Ok(Poll::Pending)
        });
        drop(inner);
        match res {
            Err(e) => Poll::Ready(Err(e)),
            Ok(Poll::Ready(done)) => {
                this.resolve();
                Poll::Ready(Ok(done))
            }
            Ok(Poll::Pending) => Poll::Pending,
        }
    }
}

impl RingOpFuture {
    /// Mark resolved and hand the baton to the siblings: the stack-level
    /// waker may be ours (now stale), so they must re-poll and re-arm.
    fn resolve(&mut self) {
        self.done = true;
        self.waiters.lock().remove(&self.user_data);
        wake_siblings(&self.waiters, self.user_data);
    }
}

impl Drop for RingOpFuture {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.waiters.lock().remove(&self.user_data);
        let mut inner = self.ring.borrow_mut();
        if inner.completed.remove(&self.user_data).is_none() {
            // Not yet reaped into the stash: cancel it in the queue if
            // it is still there; either way discard the eventual
            // completion. The buffer returns to the pool at reap.
            inner.abandoned.insert(self.user_data);
            try_with_ctx(|ctx| {
                if inner.ring.cancel(ctx, self.user_data) {
                    // The Cancelled CQE is reapable right now — tidy so
                    // the buffer is back in the pool before we return.
                    reap_all(&mut inner);
                }
            });
        }
        drop(inner);
        wake_siblings(&self.waiters, self.user_data);
    }
}
