//! A single-process event-loop server skeleton over [`NetApi::poll`].
//!
//! The readiness-first shape of the paper's substrate (one descriptor
//! table, one poll wait) makes the classic single-process server — one
//! `poll()` over the listener and every live connection, nonblocking
//! reads and writes in between — expressible without threads or helper
//! processes. This module is that skeleton: applications supply only the
//! request framing (bytes in → bytes out) and get accept, flow-controlled
//! writes, EOF, and error teardown for free.

use simnet::{ProcessCtx, SimAccess, SimDuration, SimResult, SimTime};

use crate::api::{Conn, Interest, NetApi, NetError, NetListener, PollSource, PollTarget};

/// Per-connection state of the event loop.
struct ConnState {
    conn: Conn,
    /// Bytes received but not yet consumed by the service.
    inbuf: Vec<u8>,
    /// Bytes produced by the service but not yet accepted by the stack.
    out: Vec<u8>,
    /// How much of `out` the stack has taken.
    sent: usize,
    /// When this connection last made progress (bytes in or out) — the
    /// idle reaper's clock.
    last_activity: SimTime,
}

/// Overload policy for [`serve_event_loop_with`]: how the server degrades
/// gracefully instead of queueing without bound. All knobs default off
/// ([`OverloadPolicy::default`] = the unprotected loop).
#[derive(Clone, Debug, Default)]
pub struct OverloadPolicy {
    /// Shed new connections while this many are already being served:
    /// the connection is accepted, answered with [`Self::shed_response`]
    /// (so the client sees a *deterministic* degrade, not silence), and
    /// closed. Counted in the `app.shed` telemetry counter.
    pub max_conns: Option<usize>,
    /// Shed a connection whose pending response bytes exceed this cap —
    /// the slow-consumer guard. Counted in `app.shed`.
    pub max_queued_bytes: Option<usize>,
    /// Bytes written to a shed connection before closing it (empty =
    /// close silently). An HTTP server would put `503` here.
    pub shed_response: Vec<u8>,
    /// Reap connections that made no progress for this long (the
    /// slowloris guard). Counted in `app.reaped`.
    pub idle_timeout: Option<SimDuration>,
}

/// What [`serve_event_loop_with`] did under pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections served to EOF normally.
    pub served: u32,
    /// Connections shed at accept (max_conns) or mid-stream (queue cap).
    pub shed: u32,
    /// Connections reaped for idleness.
    pub reaped: u32,
}

/// Accept `n_conns` connections from `l` and serve them all from the
/// calling process: one [`NetApi::poll`] wait over the listener and every
/// live connection, nonblocking calls everywhere else. Each accepted
/// connection is greeted with `greeting` (empty for none); thereafter
/// `service(inbuf, out)` runs whenever bytes arrive — it consumes any
/// complete requests from `inbuf` and appends the responses to `out`,
/// leaving partial requests in place. Returns when every connection has
/// reached EOF (or errored) and been torn down.
///
/// While a response is pending the loop polls the connection for
/// [`Interest::WRITABLE`] only (the stack's flow control — credits on the
/// substrate, the send buffer on TCP — decides when more is accepted);
/// otherwise it polls for [`Interest::READABLE`].
pub fn serve_event_loop(
    ctx: &ProcessCtx,
    api: &dyn NetApi,
    l: &dyn NetListener,
    n_conns: u32,
    greeting: &[u8],
    service: impl FnMut(&mut Vec<u8>, &mut Vec<u8>),
) -> SimResult<()> {
    serve_event_loop_with(
        ctx,
        api,
        l,
        n_conns,
        greeting,
        &OverloadPolicy::default(),
        service,
    )
    .map(|_| ())
}

/// [`serve_event_loop`] with an [`OverloadPolicy`]: the same loop, but it
/// sheds connections past `max_conns` (degrade response, then close),
/// sheds slow consumers whose pending output exceeds `max_queued_bytes`,
/// and reaps connections idle past `idle_timeout`. Shed and reaped
/// connections count toward `n_conns` — under a connect storm the server
/// answers everyone *deterministically*, it just answers most of them
/// with the degrade response.
pub fn serve_event_loop_with(
    ctx: &ProcessCtx,
    api: &dyn NetApi,
    l: &dyn NetListener,
    n_conns: u32,
    greeting: &[u8],
    policy: &OverloadPolicy,
    mut service: impl FnMut(&mut Vec<u8>, &mut Vec<u8>),
) -> SimResult<ServeReport> {
    const LISTENER: usize = usize::MAX;
    const READ_CHUNK: usize = 4096;

    let mut conns: Vec<Option<ConnState>> = Vec::new();
    let mut accepted = 0u32;
    let mut open = 0u32;
    let mut report = ServeReport::default();
    let shed_ctr = ctx.telemetry().counter("app.shed");
    let reaped_ctr = ctx.telemetry().counter("app.reaped");
    // Time spent handling each batch of readiness events (poll return to
    // loop bottom) — the server's per-turn latency distribution.
    let turn_hist = ctx.telemetry().histogram("app.eventloop_turn_ns");
    while accepted < n_conns || open > 0 {
        let events = {
            let mut sources = Vec::new();
            if accepted < n_conns {
                sources.push(PollSource {
                    target: PollTarget::Listener(l),
                    token: LISTENER,
                    interest: Interest::ACCEPTABLE,
                });
            }
            for (i, slot) in conns.iter().enumerate() {
                if let Some(st) = slot {
                    let interest = if st.sent < st.out.len() {
                        Interest::WRITABLE
                    } else {
                        Interest::READABLE
                    };
                    sources.push(PollSource {
                        target: PollTarget::Conn(&st.conn),
                        token: i,
                        interest,
                    });
                }
            }
            // With a reaper armed the poll must wake even when no socket
            // does — an all-idle connection set would otherwise park the
            // loop forever.
            api.poll(ctx, &sources, policy.idle_timeout)?.expect("poll")
        };
        let turn_start = ctx.now();
        for ev in events {
            if ev.token == LISTENER {
                // Drain the whole accept queue while we are here.
                while accepted < n_conns {
                    match l.try_accept(ctx)? {
                        Ok(conn) => {
                            accepted += 1;
                            if policy.max_conns.is_some_and(|m| (open as usize) >= m) {
                                // Over budget: degrade response, close.
                                let _ = conn.try_write(ctx, &policy.shed_response)?;
                                let _ = conn.flush(ctx)?;
                                let _ = conn.close(ctx);
                                report.shed += 1;
                                shed_ctr.add(1);
                                continue;
                            }
                            open += 1;
                            conns.push(Some(ConnState {
                                conn,
                                inbuf: Vec::new(),
                                out: greeting.to_vec(),
                                sent: 0,
                                last_activity: ctx.now(),
                            }));
                        }
                        Err(NetError::WouldBlock) => break,
                        Err(e) => panic!("event-loop accept failed: {e}"),
                    }
                }
                continue;
            }
            let Some(st) = conns[ev.token].as_mut() else {
                continue;
            };
            let mut dead = false;
            let before = (st.sent, st.inbuf.len());
            // Flush pending output first; while a response is in flight
            // the loop does not read (the client is waiting on us).
            flush(ctx, st, &mut dead)?;
            while !dead && st.out.is_empty() {
                match st.conn.try_read(ctx, READ_CHUNK)? {
                    Ok(chunk) if chunk.is_empty() => dead = true, // EOF
                    Ok(chunk) => {
                        st.inbuf.extend_from_slice(&chunk);
                        service(&mut st.inbuf, &mut st.out);
                    }
                    Err(NetError::WouldBlock) => break,
                    Err(_) => dead = true,
                }
            }
            // Opportunistically push what the service just produced.
            flush(ctx, st, &mut dead)?;
            if (st.sent, st.inbuf.len()) != before || !st.out.is_empty() {
                st.last_activity = ctx.now();
            }
            let over_queue = policy
                .max_queued_bytes
                .is_some_and(|cap| st.out.len() - st.sent > cap);
            if dead || over_queue {
                let st = conns[ev.token].take().expect("live state");
                let _ = st.conn.close(ctx);
                open -= 1;
                if over_queue && !dead {
                    report.shed += 1;
                    shed_ctr.add(1);
                } else {
                    report.served += 1;
                }
            }
        }
        if let Some(patience) = policy.idle_timeout {
            for slot in conns.iter_mut() {
                let idle = slot
                    .as_ref()
                    .is_some_and(|st| ctx.now().since(st.last_activity) >= patience);
                if idle {
                    let st = slot.take().expect("live state");
                    let _ = st.conn.close(ctx);
                    open -= 1;
                    report.reaped += 1;
                    reaped_ctr.add(1);
                }
            }
        }
        turn_hist.record((ctx.now() - turn_start).nanos());
    }
    Ok(report)
}

/// Write as much pending output as the stack will take right now.
fn flush(ctx: &ProcessCtx, st: &mut ConnState, dead: &mut bool) -> SimResult<()> {
    while !*dead && st.sent < st.out.len() {
        match st.conn.try_write(ctx, &st.out[st.sent..])? {
            Ok(n) => st.sent += n,
            Err(NetError::WouldBlock) => break,
            Err(_) => *dead = true,
        }
    }
    if st.sent == st.out.len() {
        st.out.clear();
        st.sent = 0;
        // The response is fully handed to the stack: push out anything it
        // staged for aggregation before going back to the poll (the
        // client is waiting on these bytes).
        if !*dead && st.conn.flush(ctx)?.is_err() {
            *dead = true;
        }
    }
    Ok(())
}
