//! # emp-apps — the applications of the paper's evaluation (§7)
//!
//! Every application is written once against the stack-agnostic
//! [`NetApi`] facade and runs over both the sockets-over-EMP substrate
//! and the kernel TCP baseline:
//!
//! * [`pingpong`] — the latency microbenchmark (Figures 11-13);
//! * [`bandwidth`] — the throughput microbenchmark (Figure 13);
//! * [`ftp`] — RAM-disk-backed file transfer (Figure 14);
//! * [`webserver`] — HTTP/1.0 and HTTP/1.1, one server + three clients
//!   (Figures 15-16);
//! * [`matmul`] — master/worker matrix multiply with `select()`
//!   (Figure 17);
//! * [`kvstore`] — a data-center-style key-value service (the paper's
//!   §8 future work).
//!
//! [`testbed::Testbed`] builds the 4-node cluster over either stack.

#![warn(missing_docs)]

pub mod adapters;
pub mod api;
#[cfg(test)]
mod api_tests;
pub mod asyncio;
pub mod bandwidth;
pub mod completion;
pub mod eventloop;
pub mod ftp;
pub mod kvstore;
pub mod matmul;
pub mod overload;
pub mod pingpong;
pub mod testbed;
pub mod webserver;

pub use adapters::{EmpNet, KernelNet};
pub use api::{
    Api, Conn, Cqe, CqeResult, Event, Interest, NetApi, NetConn, NetError, NetListener, NetRing,
    PollSource, PollTarget, RingConfig, RingCounters, RingDepths, RingError, RingOp, Sqe,
};
pub use asyncio::{serve_async, AsyncConnector, AsyncListener, AsyncRing, AsyncStream};
pub use completion::serve_completion;
pub use eventloop::{serve_event_loop, serve_event_loop_with, OverloadPolicy, ServeReport};
pub use overload::{run_storm, run_storm_on, OverloadReport, StormConfig};
pub use testbed::{AppNode, Testbed};
