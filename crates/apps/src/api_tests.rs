//! Unit tests for the facade layer: error display/mapping and adapter
//! plumbing that the application tests exercise only indirectly.

#![cfg(test)]

use crate::api::NetError;
use crate::testbed::Testbed;
use simnet::{Sim, SimDuration};
use std::sync::Arc;

#[test]
fn net_error_displays() {
    assert_eq!(NetError::Refused.to_string(), "connection refused");
    assert_eq!(NetError::Closed.to_string(), "socket closed");
    assert_eq!(NetError::PeerClosed.to_string(), "peer closed");
    assert_eq!(NetError::TooBig.to_string(), "message too big");
    assert_eq!(NetError::Other("x".into()).to_string(), "x");
}

#[test]
fn adapters_report_their_labels_and_hosts() {
    let tb = Testbed::emp_default(2);
    assert_eq!(tb.nodes[0].api.label(), "emp-ds-da-uq");
    assert_eq!(tb.nodes[1].api.local_host(), simnet::MacAddr(1));
    let tb = Testbed::kernel_default(3);
    assert_eq!(tb.nodes[2].api.label(), "tcp-16k");
    assert_eq!(tb.nodes[2].api.local_host(), simnet::MacAddr(2));
    assert!(tb.emp_cluster().is_none());
    assert!(Testbed::emp_default(2).emp_cluster().is_some());
}

#[test]
fn refused_connections_map_to_net_error_on_both_stacks() {
    // Kernel stack refuses synchronously; the substrate refuses lazily
    // (EMP retransmits the connection request until it gives up), which
    // surfaces on a later blocking operation.
    let tb = Testbed::kernel_default(2);
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let host = tb.nodes[1].api.local_host();
    sim.spawn("kernel-client", move |ctx| {
        let res = api.connect(ctx, host, 444)?;
        assert!(matches!(res, Err(NetError::Refused)));
        Ok(())
    });
    sim.run();

    let tb = Testbed::emp_default(2);
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let host = tb.nodes[1].api.local_host();
    sim.spawn("emp-client", move |ctx| {
        let conn = api.connect(ctx, host, 444)?.expect("connect is lazy");
        conn.write(ctx, b"hello?")?.expect("buffered send");
        // Wait out EMP's retransmission give-up, then the failure shows.
        ctx.delay(SimDuration::from_secs(2))?;
        let res = conn.write(ctx, b"again")?;
        assert!(
            matches!(res, Err(NetError::Refused | NetError::PeerClosed)),
            "got {res:?}"
        );
        Ok(())
    });
    sim.run();
}

#[test]
fn cross_stack_adapters_are_independent() {
    // Two testbeds can coexist in one simulation-free scope: handles are
    // plain values, nothing global.
    let a = Testbed::emp_default(2);
    let b = Testbed::kernel_default(2);
    assert_ne!(a.nodes[0].api.label(), b.nodes[0].api.label());
}
