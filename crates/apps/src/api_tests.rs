//! Unit tests for the facade layer: error display/mapping and adapter
//! plumbing that the application tests exercise only indirectly.

#![cfg(test)]

use crate::api::NetError;
use crate::testbed::Testbed;
use simnet::{Sim, SimDuration};
use std::sync::Arc;

#[test]
fn net_error_displays() {
    assert_eq!(NetError::Refused.to_string(), "connection refused");
    assert_eq!(NetError::Closed.to_string(), "socket closed");
    assert_eq!(NetError::PeerClosed.to_string(), "peer closed");
    assert_eq!(NetError::TooBig.to_string(), "message too big");
    assert_eq!(NetError::Other("x".into()).to_string(), "x");
}

#[test]
fn adapters_report_their_labels_and_hosts() {
    let tb = Testbed::emp_default(2);
    assert_eq!(tb.nodes[0].api.label(), "emp-ds-da-uq");
    assert_eq!(tb.nodes[1].api.local_host(), simnet::MacAddr(1));
    let tb = Testbed::kernel_default(3);
    assert_eq!(tb.nodes[2].api.label(), "tcp-16k");
    assert_eq!(tb.nodes[2].api.local_host(), simnet::MacAddr(2));
    assert!(tb.emp_cluster().is_none());
    assert!(Testbed::emp_default(2).emp_cluster().is_some());
}

#[test]
fn refused_connections_map_to_net_error_on_both_stacks() {
    // Kernel stack refuses synchronously; the substrate refuses lazily
    // (EMP retransmits the connection request until it gives up), which
    // surfaces on a later blocking operation.
    let tb = Testbed::kernel_default(2);
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let host = tb.nodes[1].api.local_host();
    sim.spawn("kernel-client", move |ctx| {
        let res = api.connect(ctx, host, 444)?;
        assert!(matches!(res, Err(NetError::Refused)));
        Ok(())
    });
    sim.run();

    let tb = Testbed::emp_default(2);
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let host = tb.nodes[1].api.local_host();
    sim.spawn("emp-client", move |ctx| {
        let conn = api.connect(ctx, host, 444)?.expect("connect is lazy");
        conn.write(ctx, b"hello?")?.expect("buffered send");
        // Wait out EMP's retransmission give-up, then the failure shows.
        ctx.delay(SimDuration::from_secs(2))?;
        let res = conn.write(ctx, b"again")?;
        assert!(
            matches!(res, Err(NetError::Refused | NetError::PeerClosed)),
            "got {res:?}"
        );
        Ok(())
    });
    sim.run();
}

#[test]
fn cross_stack_adapters_are_independent() {
    // Two testbeds can coexist in one simulation-free scope: handles are
    // plain values, nothing global.
    let a = Testbed::emp_default(2);
    let b = Testbed::kernel_default(2);
    assert_ne!(a.nodes[0].api.label(), b.nodes[0].api.label());
}

/// One scenario, both stacks, one trace: each overload condition must
/// surface the *same* typed [`NetError`] through the facade regardless
/// of which stack produced it. This is the differential test for the
/// unified error taxonomy — refusal, deadline expiry, and budget
/// exhaustion are three distinct, deterministic outcomes everywhere.
fn taxonomy_trace(tb: Testbed) -> Vec<String> {
    use simnet::Completion;
    use std::sync::Mutex;

    let ms = SimDuration::from_millis;
    let sim = Sim::new();
    let client = Arc::clone(&tb.nodes[0].api);
    let server = Arc::clone(&tb.nodes[1].api);
    let host = tb.nodes[1].api.local_host();
    let trace: Arc<Mutex<Vec<String>>> = Arc::default();
    let t2 = Arc::clone(&trace);
    let probes_done = Completion::new();
    let (pd2, pd3) = (probes_done.clone(), probes_done.clone());
    let sdone = Completion::new();
    let sd2 = sdone.clone();

    sim.spawn("taxonomy-server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        // Hold both budgeted connections open until the client has run
        // every probe, so the connection budget stays saturated.
        let a = l.accept(ctx)?.expect("first conn");
        let b = l.accept(ctx)?.expect("second conn");
        pd2.wait(ctx)?;
        a.close(ctx)?;
        b.close(ctx)?;
        sd2.complete(ctx);
        Ok(())
    });
    sim.spawn("taxonomy-client", move |ctx| {
        let mut tr = Vec::new();
        // Refusal: nobody listens on port 444.
        let r = client.connect_deadline(ctx, host, 444, ms(50))?;
        tr.push(format!("connect-noone:{:?}", r.err().expect("no listener")));
        // Deadline on accept: a local listener nobody connects to.
        let idle = client.listen(ctx, 81, 2)?.expect("port free");
        let r = idle.accept_deadline(ctx, ms(5))?;
        tr.push(format!("accept-idle:{:?}", r.err().expect("nobody comes")));
        // Fill the 2-connection budget, then one more.
        let c1 = client
            .connect_deadline(ctx, host, 80, ms(50))?
            .expect("conn 1");
        let c2 = client
            .connect_deadline(ctx, host, 80, ms(50))?
            .expect("conn 2");
        let r = client.connect_deadline(ctx, host, 80, ms(50))?;
        tr.push(format!("connect-overbudget:{:?}", r.err().expect("cap")));
        // Deadline on read: the server never writes.
        let r = c1.read_deadline(ctx, 64, ms(5))?;
        tr.push(format!("read-idle:{:?}", r.expect_err("silent peer")));
        c1.close(ctx)?;
        c2.close(ctx)?;
        *t2.lock().unwrap() = tr;
        pd3.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(sdone.is_done(), "server did not finish");
    Arc::try_unwrap(trace).unwrap().into_inner().unwrap()
}

#[test]
fn overload_errors_are_typed_identically_on_both_stacks() {
    use emp_proto::EmpConfig;
    use sockets_emp::SubstrateConfig;

    let emp = taxonomy_trace(Testbed::emp(
        2,
        EmpConfig::default(),
        SubstrateConfig::ds_da_uq().with_max_connections(2),
        "emp-capped",
    ));
    let tcp = {
        let tb = Testbed::kernel_default(2);
        let stack = tb.nodes[0].api.tcp_stack().expect("kernel introspection");
        stack.set_max_conns(Some(2));
        taxonomy_trace(tb)
    };
    let want = vec![
        "connect-noone:Refused".to_string(),
        "accept-idle:Timeout".to_string(),
        "connect-overbudget:Exhausted".to_string(),
        "read-idle:Timeout".to_string(),
    ];
    assert_eq!(emp, want, "substrate taxonomy");
    assert_eq!(tcp, want, "kernel taxonomy");
}
