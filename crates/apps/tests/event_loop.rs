//! Acceptance test for the readiness-first core: one single-process
//! event-loop web server — no per-connection processes, every socket
//! operation nonblocking, every wait a `poll()` — serving 32 concurrent
//! persistent connections byte-exact on both stacks.
//!
//! Byte-exactness is enforced inside the client of
//! [`webserver::concurrent_throughput`]: each response body byte is a
//! function of (connection, request, position), so a response delivered
//! to the wrong connection, out of order, or corrupted fails the run.

use emp_apps::webserver::{concurrent_throughput, ServerModel};
use emp_apps::Testbed;

const CONNS: u32 = 32;
const REQS_PER_CONN: u32 = 4;
const RESPONSE: usize = 1024;

#[test]
fn event_loop_serves_32_connections_on_the_substrate() {
    let tb = Testbed::emp_default(5);
    let r = concurrent_throughput(&tb, ServerModel::EventLoop, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn event_loop_serves_32_connections_on_kernel_tcp() {
    let tb = Testbed::kernel_default(5);
    let r = concurrent_throughput(&tb, ServerModel::EventLoop, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn event_loop_and_per_connection_servers_agree_on_the_workload() {
    // Same testbed, same workload, both server models: identical request
    // counts and positive throughput from each (the figure generator
    // compares their throughput curves).
    let tb = Testbed::emp_default(5);
    let el = concurrent_throughput(&tb, ServerModel::EventLoop, CONNS, REQS_PER_CONN, RESPONSE);
    let pc = concurrent_throughput(
        &tb,
        ServerModel::PerConnection,
        CONNS,
        REQS_PER_CONN,
        RESPONSE,
    );
    assert_eq!(el.requests, pc.requests);
    assert!(el.elapsed_us > 0.0 && pc.elapsed_us > 0.0);
}
