//! Acceptance tests for the async/await front end: straight-line
//! `async fn` handlers ([`emp_apps::serve_async`]) serving 32 concurrent
//! connections byte-exact on both stacks, same-seed determinism of the
//! whole executor schedule, and the cancellation/waker contracts the
//! futures are built on:
//!
//! * dropping a ring-op future mid-read is its cancellation — the
//!   registered buffer comes back to the pool and the ring drains;
//! * readiness that fired *before* a waker was registered is found by
//!   the check-then-arm recheck (no lost wakeup);
//! * spurious wakes re-poll, re-check, re-arm — and the data still
//!   arrives intact;
//! * abandoning an armed write-interest wait and switching to read
//!   interest disarms cleanly (the substrate's flow-control ack watch)
//!   and the new interest still wakes.

use std::future::{poll_fn, Future};
use std::pin::pin;
use std::sync::Arc;
use std::task::Poll;

use emp_apps::kvstore;
use emp_apps::webserver::{concurrent_throughput, ServerModel};
use emp_apps::{AsyncRing, AsyncStream, Interest, NetError, RingConfig, Testbed};
use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimAccessExt, SimDuration, SimResult};

const CONNS: u32 = 32;
const REQS_PER_CONN: u32 = 4;
const RESPONSE: usize = 1024;

#[test]
fn async_server_serves_32_connections_on_the_substrate() {
    let tb = Testbed::emp_default(5);
    let r = concurrent_throughput(&tb, ServerModel::Async, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn async_server_serves_32_connections_on_kernel_tcp() {
    let tb = Testbed::kernel_default(5);
    let r = concurrent_throughput(&tb, ServerModel::Async, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn all_four_server_models_agree_on_the_workload() {
    // Same testbed, same workload, all four I/O models: identical
    // request counts (the figure generator compares their curves), and
    // the async model competitive with the event loop it desugars to.
    let tb = Testbed::emp_default(5);
    let aw = concurrent_throughput(&tb, ServerModel::Async, CONNS, REQS_PER_CONN, RESPONSE);
    let cq = concurrent_throughput(&tb, ServerModel::Completion, CONNS, REQS_PER_CONN, RESPONSE);
    let el = concurrent_throughput(&tb, ServerModel::EventLoop, CONNS, REQS_PER_CONN, RESPONSE);
    let pc = concurrent_throughput(
        &tb,
        ServerModel::PerConnection,
        CONNS,
        REQS_PER_CONN,
        RESPONSE,
    );
    assert_eq!(aw.requests, cq.requests);
    assert_eq!(aw.requests, el.requests);
    assert_eq!(aw.requests, pc.requests);
    assert!(
        aw.reqs_per_sec >= 0.85 * el.reqs_per_sec,
        "async goodput fell >15% behind the event loop: {} vs {}",
        aw.reqs_per_sec,
        el.reqs_per_sec
    );
}

const KV_CLIENTS: usize = 32;
const KV_OPS: u32 = 8;

#[test]
fn async_kvstore_serves_32_clients_on_the_substrate() {
    let tb = Testbed::emp_default(KV_CLIENTS + 1);
    let r = kvstore::run_workload_with(&tb, ServerModel::Async, KV_CLIENTS, KV_OPS, 256, 0.5, 7);
    assert_eq!(r.ops, (KV_CLIENTS as u64) * u64::from(KV_OPS));
    assert!(r.hits > 0, "warmed keys must produce hits");
    assert!(r.ops_per_sec > 0.0);
}

#[test]
fn async_kvstore_serves_32_clients_on_kernel_tcp() {
    let tb = Testbed::kernel_default(KV_CLIENTS + 1);
    let r = kvstore::run_workload_with(&tb, ServerModel::Async, KV_CLIENTS, KV_OPS, 256, 0.5, 7);
    assert_eq!(r.ops, (KV_CLIENTS as u64) * u64::from(KV_OPS));
    assert!(r.hits > 0, "warmed keys must produce hits");
    assert!(r.ops_per_sec > 0.0);
}

#[test]
fn async_server_runs_are_deterministic() {
    // The executor inherits the engine's (time, sequence) order, so two
    // same-seed async-served runs on fresh sims produce byte-identical
    // telemetry — executor counters included — and bit-equal results.
    use emp_apps::webserver;

    let run = || {
        let sim = Sim::new();
        let tb = Testbed::emp_default(3);
        let r = webserver::concurrent_throughput_on(&sim, &tb, ServerModel::Async, 8, 6, 512);
        let reg = sim.telemetry();
        reg.sample_now(sim.now().nanos());
        (r, reg.snapshot().deterministic_text())
    };
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert!(
        ta.contains("exec.wakes"),
        "executor telemetry missing from the registry"
    );
    assert!(ta.contains("exec.poll_spins"), "poll-spin counter missing");
    assert_eq!(
        ta, tb,
        "async-model telemetry diverged across same-seed runs"
    );
    assert_eq!(ra.requests, rb.requests);
    assert_eq!(ra.elapsed_us.to_bits(), rb.elapsed_us.to_bits());
}

// ---- cancellation: dropping a ring-op future releases its resources ----

const DROP_PORT: u16 = 1200;
const DROP_CFG: RingConfig = RingConfig {
    sq_depth: 4,
    cq_depth: 8,
    buf_count: 2,
    buf_size: 512,
    max_registered_bytes: None,
};

fn ring_drop_run(tb: &Testbed) {
    let sim = Sim::new();
    let server = Arc::clone(&tb.nodes[0].api);
    sim.spawn("silent-server", move |ctx| {
        let l = server.listen(ctx, DROP_PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        // Hold the connection open and never send a byte: the client's
        // ring read must be cancelled by its deadline, not completed.
        ctx.delay(SimDuration::from_millis(5))?;
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    let api = Arc::clone(&tb.nodes[1].api);
    let host = tb.nodes[0].api.local_host();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = Arc::clone(&checked);
    sim.spawn("ring-drop-client", move |ctx| {
        let conn = api.connect(ctx, host, DROP_PORT)?.expect("connect");
        emp_async::block_on(ctx, async move {
            let ring = AsyncRing::new(api.as_ref(), DROP_CFG, "drop-guard");
            let id = ring.add_conn(conn);
            let got = emp_async::timeout(SimDuration::from_micros(500), ring.read(id)).await;
            assert!(got.is_none(), "peer is silent; the read must time out");
            // The dropped future's guard cancelled the stalled op: its
            // registered buffer is back in the pool and the ring is
            // fully drained.
            assert_eq!(
                ring.pool_free(),
                DROP_CFG.buf_count,
                "cancelled read leaked its registered buffer"
            );
            let d = ring.depths();
            assert_eq!(
                (d.sq, d.in_flight, d.cq),
                (0, 0, 0),
                "cancelled op left ring residue"
            );
            emp_async::with_ctx(|ctx| ring.shutdown(ctx))?;
            *checked2.lock() = true;
            SimResult::Ok(())
        })??;
        Ok(())
    });
    sim.run();
    assert!(*checked.lock(), "client assertions never ran");
    // Shutdown republished the ring gauges: all drained to zero.
    let reg = sim.telemetry();
    for g in ["sq", "in_flight", "cq"] {
        assert_eq!(
            reg.gauge(&format!("ring.drop-guard.{g}")).get(),
            0,
            "ring.drop-guard.{g} gauge left non-zero after cancellation"
        );
    }
}

#[test]
fn dropping_a_ring_read_future_releases_its_buffer_on_the_substrate() {
    ring_drop_run(&Testbed::emp_default(2));
}

#[test]
fn dropping_a_ring_read_future_releases_its_buffer_on_kernel_tcp() {
    ring_drop_run(&Testbed::kernel_default(2));
}

// ---- waker re-arm edges -------------------------------------------------

const EDGE_PORT: u16 = 1300;

/// Readiness that fired before any waker existed must be observed by the
/// registration-time check — the lost-wakeup edge of check-then-arm.
fn late_registration_run(tb: &Testbed) {
    let sim = Sim::new();
    let server = Arc::clone(&tb.nodes[0].api);
    sim.spawn("eager-server", move |ctx| {
        let l = server.listen(ctx, EDGE_PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        conn.write(ctx, &[0x5a])?.expect("greeting");
        conn.flush(ctx)?.expect("flush");
        // Wait for the client to consume and hang up.
        loop {
            match conn.read_deadline(ctx, 1 << 16, SimDuration::from_millis(5))? {
                Ok(b) if !b.is_empty() => continue,
                _ => break,
            }
        }
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    let api = Arc::clone(&tb.nodes[1].api);
    let host = tb.nodes[0].api.local_host();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = Arc::clone(&checked);
    sim.spawn("late-client", move |ctx| {
        let conn = api.connect(ctx, host, EDGE_PORT)?.expect("connect");
        // Let the server's byte land long before any waker exists.
        ctx.delay(SimDuration::from_millis(2))?;
        emp_async::block_on(ctx, async move {
            let stream = AsyncStream::new(conn);
            let before = emp_async::with_ctx(|ctx| ctx.now());
            let r = stream
                .ready(Interest::READABLE)
                .await?
                .expect("readiness check");
            assert!(
                r.contains(Interest::READABLE),
                "byte arrived long ago; readiness must report it"
            );
            let after = emp_async::with_ctx(|ctx| ctx.now());
            assert_eq!(
                before, after,
                "pre-fired readiness resolved via a wake instead of the recheck"
            );
            let b = stream.read(16).await?.expect("data");
            assert_eq!(&b[..], &[0x5a]);
            stream.close().await?;
            *checked2.lock() = true;
            SimResult::Ok(())
        })??;
        Ok(())
    });
    sim.run();
    assert!(*checked.lock(), "client assertions never ran");
}

#[test]
fn readiness_fired_before_registration_is_not_lost_on_the_substrate() {
    late_registration_run(&Testbed::emp_default(2));
}

#[test]
fn readiness_fired_before_registration_is_not_lost_on_kernel_tcp() {
    late_registration_run(&Testbed::kernel_default(2));
}

const SPURIOUS_PORT: u16 = 1400;

/// Spurious wakes — wakes with no readiness behind them — must re-poll,
/// re-check, re-arm, and leave the eventual delivery intact.
fn spurious_wake_run(tb: &Testbed) {
    let sim = Sim::new();
    let server = Arc::clone(&tb.nodes[0].api);
    sim.spawn("slow-server", move |ctx| {
        let l = server.listen(ctx, SPURIOUS_PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        // Send only after the client has eaten several spurious wakes.
        ctx.delay(SimDuration::from_millis(1))?;
        conn.write(ctx, b"payload!")?.expect("payload");
        conn.flush(ctx)?.expect("flush");
        loop {
            match conn.read_deadline(ctx, 1 << 16, SimDuration::from_millis(5))? {
                Ok(b) if !b.is_empty() => continue,
                _ => break,
            }
        }
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    let api = Arc::clone(&tb.nodes[1].api);
    let host = tb.nodes[0].api.local_host();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = Arc::clone(&checked);
    sim.spawn("spurious-client", move |ctx| {
        let conn = api.connect(ctx, host, SPURIOUS_PORT)?.expect("connect");
        emp_async::block_on(ctx, async move {
            let stream = AsyncStream::new(conn);
            let read = stream.read(64);
            let mut read = pin!(read);
            let mut injected = false;
            let b = poll_fn(|cx| {
                if !injected {
                    injected = true;
                    // Fire three wakes with nothing ready behind them,
                    // all before the server's 1ms send.
                    emp_async::with_ctx(|ctx| {
                        for i in 1..=3u64 {
                            let w = cx.waker().clone();
                            ctx.schedule_after(SimDuration::from_micros(100 * i), move |_| {
                                w.wake()
                            });
                        }
                    });
                }
                read.as_mut().poll(cx)
            })
            .await?
            .expect("data");
            assert_eq!(&b[..], b"payload!", "spurious wakes corrupted delivery");
            stream.close().await?;
            *checked2.lock() = true;
            SimResult::Ok(())
        })??;
        Ok(())
    });
    sim.run();
    assert!(*checked.lock(), "client assertions never ran");
}

#[test]
fn spurious_wakes_rearm_and_still_deliver_on_the_substrate() {
    spurious_wake_run(&Testbed::emp_default(2));
}

#[test]
fn spurious_wakes_rearm_and_still_deliver_on_kernel_tcp() {
    spurious_wake_run(&Testbed::kernel_default(2));
}

const SWITCH_PORT: u16 = 1500;

/// Arm write interest against a full window, abandon the wait (its drop
/// guard disarms what it armed — the substrate's flow-control ack
/// watch), then wait for *read* interest instead: the changed interest
/// must still wake, and the write path must still work afterwards.
fn interest_switch_run(tb: &Testbed) {
    let sim = Sim::new();
    let server = Arc::clone(&tb.nodes[0].api);
    sim.spawn("draining-server", move |ctx| {
        let l = server.listen(ctx, SWITCH_PORT, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        // Let the client fill its send window and park a write wait.
        ctx.delay(SimDuration::from_millis(1))?;
        // Drain everything it managed to send, then signal readability.
        loop {
            match conn.read_deadline(ctx, 1 << 16, SimDuration::from_millis(1))? {
                Ok(b) if !b.is_empty() => continue,
                _ => break,
            }
        }
        conn.write(ctx, &[0x99])?.expect("marker");
        conn.flush(ctx)?.expect("flush");
        loop {
            match conn.read_deadline(ctx, 1 << 16, SimDuration::from_millis(5))? {
                Ok(b) if !b.is_empty() => continue,
                _ => break,
            }
        }
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    let api = Arc::clone(&tb.nodes[1].api);
    let host = tb.nodes[0].api.local_host();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = Arc::clone(&checked);
    sim.spawn("switching-client", move |ctx| {
        let conn = api.connect(ctx, host, SWITCH_PORT)?.expect("connect");
        emp_async::block_on(ctx, async move {
            let stream = AsyncStream::new(conn);
            // Fill the send window; the server is not reading yet.
            let chunk = vec![0x42u8; 4096];
            let mut stuffed = false;
            for _ in 0..4096 {
                match emp_async::with_ctx(|ctx| stream.get_ref().try_write(ctx, &chunk))? {
                    Ok(_) => {}
                    Err(NetError::WouldBlock) => {
                        stuffed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected write error: {e:?}"),
                }
            }
            assert!(stuffed, "send window never filled");
            // Arm write interest, observe Pending, then change our
            // mind: drop the wait and wait for readability instead.
            {
                let wr = stream.ready(Interest::WRITABLE);
                let mut wr = pin!(wr);
                let pending = poll_fn(|cx| Poll::Ready(wr.as_mut().poll(cx).is_pending())).await;
                assert!(pending, "window is full; write interest must park");
            } // dropped here — the armed source is disarmed
            let r = stream
                .ready(Interest::READABLE)
                .await?
                .expect("readiness after interest switch");
            assert!(r.contains(Interest::READABLE));
            let marker = stream
                .read_exact(1)
                .await?
                .expect("marker")
                .expect("marker byte");
            assert_eq!(marker[0], 0x99);
            // The write path still works after the abandoned wait.
            stream.write_all(b"bye").await?.expect("write after switch");
            stream.flush().await?.expect("flush");
            stream.close().await?;
            *checked2.lock() = true;
            SimResult::Ok(())
        })??;
        Ok(())
    });
    sim.run();
    assert!(*checked.lock(), "client assertions never ran");
}

#[test]
fn interest_change_between_poll_and_wake_is_safe_on_the_substrate() {
    interest_switch_run(&Testbed::emp_default(2));
}

#[test]
fn interest_change_between_poll_and_wake_is_safe_on_kernel_tcp() {
    interest_switch_run(&Testbed::kernel_default(2));
}
