//! Acceptance test for the completion-queue I/O model: one
//! single-process completion-ring server — ops submitted on an SQ over
//! registered buffers, completions reaped in batches, no readiness
//! callbacks — serving 32 concurrent connections byte-exact on both
//! stacks, for both evaluation applications (webserver and kvstore).
//!
//! Byte-exactness is enforced inside the clients: every webserver
//! response byte is a function of (connection, request, position), and
//! every kvstore response is length- and status-checked against the
//! stored value. The echo test additionally pins down the zero-copy
//! claim: on the substrate, ring reads complete directly from NIC slots
//! into registered buffers, so `ConnStats::copies_avoided` is non-zero.

use std::sync::Arc;

use emp_apps::completion::{serve_completion, CompletionRun};
use emp_apps::kvstore;
use emp_apps::webserver::{concurrent_throughput, ServerModel};
use emp_apps::Testbed;
use parking_lot::Mutex;
use simnet::Sim;

const CONNS: u32 = 32;
const REQS_PER_CONN: u32 = 4;
const RESPONSE: usize = 1024;

#[test]
fn completion_server_serves_32_connections_on_the_substrate() {
    let tb = Testbed::emp_default(5);
    let r = concurrent_throughput(&tb, ServerModel::Completion, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn completion_server_serves_32_connections_on_kernel_tcp() {
    let tb = Testbed::kernel_default(5);
    let r = concurrent_throughput(&tb, ServerModel::Completion, CONNS, REQS_PER_CONN, RESPONSE);
    assert_eq!(r.requests, u64::from(CONNS * REQS_PER_CONN));
    assert!(r.reqs_per_sec > 0.0);
}

#[test]
fn all_three_server_models_agree_on_the_workload() {
    // Same testbed, same workload, all three I/O models: identical
    // request counts (the figure generator compares their curves).
    let tb = Testbed::emp_default(5);
    let cq = concurrent_throughput(&tb, ServerModel::Completion, CONNS, REQS_PER_CONN, RESPONSE);
    let el = concurrent_throughput(&tb, ServerModel::EventLoop, CONNS, REQS_PER_CONN, RESPONSE);
    let pc = concurrent_throughput(
        &tb,
        ServerModel::PerConnection,
        CONNS,
        REQS_PER_CONN,
        RESPONSE,
    );
    assert_eq!(cq.requests, el.requests);
    assert_eq!(cq.requests, pc.requests);
    assert!(cq.elapsed_us > 0.0 && el.elapsed_us > 0.0 && pc.elapsed_us > 0.0);
}

const KV_CLIENTS: usize = 32;
const KV_OPS: u32 = 8;

#[test]
fn completion_kvstore_serves_32_clients_on_the_substrate() {
    let tb = Testbed::emp_default(KV_CLIENTS + 1);
    let r = kvstore::run_workload_with(
        &tb,
        ServerModel::Completion,
        KV_CLIENTS,
        KV_OPS,
        256,
        0.5,
        7,
    );
    assert_eq!(r.ops, (KV_CLIENTS as u64) * u64::from(KV_OPS));
    assert!(r.hits > 0, "warmed keys must produce hits");
    assert!(r.ops_per_sec > 0.0);
}

#[test]
fn completion_kvstore_serves_32_clients_on_kernel_tcp() {
    let tb = Testbed::kernel_default(KV_CLIENTS + 1);
    let r = kvstore::run_workload_with(
        &tb,
        ServerModel::Completion,
        KV_CLIENTS,
        KV_OPS,
        256,
        0.5,
        7,
    );
    assert_eq!(r.ops, (KV_CLIENTS as u64) * u64::from(KV_OPS));
    assert!(r.hits > 0, "warmed keys must produce hits");
    assert!(r.ops_per_sec > 0.0);
}

// ---- zero-copy evidence: ring reads ride the direct-delivery path ----

const ECHO_PORT: u16 = 7;
const ECHO_MSG: usize = 512;
const ECHO_REQS: u32 = 4;

/// Serve `CONNS` echo connections through a completion ring and return
/// the run's accounting (ferried out of the server process).
fn echo_run(tb: &Testbed) -> CompletionRun {
    let sim = Sim::new();
    let api = Arc::clone(&tb.nodes[0].api);
    let out: Arc<Mutex<Option<CompletionRun>>> = Arc::default();
    let out2 = Arc::clone(&out);
    sim.spawn("echo-completion", move |ctx| {
        let l = api
            .listen(ctx, ECHO_PORT, CONNS as usize + 8)?
            .expect("port free");
        let run = serve_completion(ctx, api.as_ref(), l, CONNS, &[], |inbuf, resp| {
            resp.append(inbuf);
        })?;
        *out2.lock() = Some(run);
        Ok(())
    });
    for k in 0..CONNS {
        let node = 1 + (k as usize % (tb.nodes.len() - 1));
        let api = Arc::clone(&tb.nodes[node].api);
        let host = tb.nodes[0].api.local_host();
        sim.spawn(format!("echo-client-{k}"), move |ctx| {
            let conn = api.connect(ctx, host, ECHO_PORT)?.expect("connect");
            for r in 0..ECHO_REQS {
                let msg: Vec<u8> = (0..ECHO_MSG)
                    .map(|j| ((j * 17 + r as usize * 5 + k as usize) % 251) as u8)
                    .collect();
                conn.write(ctx, &msg)?.expect("request");
                let back = conn
                    .read_exact(ctx, ECHO_MSG)?
                    .expect("echo")
                    .expect("echo bytes");
                assert_eq!(&back[..], &msg[..], "conn {k} req {r}: echo corrupted");
            }
            conn.close(ctx)?;
            Ok(())
        });
    }
    sim.run();
    let run = out.lock().take().expect("server finished");
    run
}

#[test]
fn ring_reads_avoid_copies_on_the_substrate() {
    let run = echo_run(&Testbed::emp_default(5));
    let c = run.counters;
    assert!(
        c.pushed == c.completed && c.completed == c.reaped,
        "completion conservation violated: {c:?}"
    );
    let stats = run.substrate_stats.expect("substrate run has conn stats");
    assert!(
        stats.copies_avoided > 0,
        "ring reads never took the direct-delivery path: {stats:?}"
    );
    assert_eq!(
        stats.bytes_received,
        u64::from(CONNS) * u64::from(ECHO_REQS) * ECHO_MSG as u64,
        "server-side byte accounting wrong"
    );
}

#[test]
fn kernel_ring_reports_no_substrate_stats() {
    // The same echo workload on the kernel stack: byte-exact too, but
    // there is no substrate to report copy-avoidance from.
    let run = echo_run(&Testbed::kernel_default(5));
    let c = run.counters;
    assert!(
        c.pushed == c.completed && c.completed == c.reaped,
        "completion conservation violated: {c:?}"
    );
    assert!(run.substrate_stats.is_none());
}
