//! A firmware CPU: a serial task executor with cost accounting.
//!
//! The Tigon2 carries two general-purpose embedded CPUs (~88 MHz MIPS
//! cores). EMP dedicates one to the transmit path and one to the receive
//! path. Each CPU executes firmware tasks strictly serially; per-task costs
//! are what ultimately bound EMP's small-message latency and large-message
//! bandwidth, so the model tracks busy time precisely: a task posted while
//! the CPU is busy starts when the CPU frees up.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimAccessExt, SimDuration, SimTime};

struct CpuState {
    busy_until: SimTime,
    busy_total: SimDuration,
    tasks_run: u64,
    last_seen: SimTime,
    registered: bool,
}

/// One embedded firmware CPU.
#[derive(Clone)]
pub struct FirmwareCpu {
    name: &'static str,
    node: u16,
    state: Arc<Mutex<CpuState>>,
}

impl FirmwareCpu {
    /// A fresh, idle CPU. `name` labels it in diagnostics ("tx", "rx").
    pub fn new(name: &'static str) -> Self {
        FirmwareCpu {
            name,
            node: simnet::emp_trace::NO_NODE,
            state: Arc::new(Mutex::new(CpuState {
                busy_until: SimTime::ZERO,
                busy_total: SimDuration::ZERO,
                tasks_run: 0,
                last_seen: SimTime::ZERO,
                registered: false,
            })),
        }
    }

    /// Tag trace events from this CPU with a station id (the NIC's MAC).
    pub fn with_node(mut self, node: u16) -> Self {
        self.node = node;
        self
    }

    /// Label given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Run a task costing `cost` CPU time, no earlier than `earliest`
    /// (models e.g. PCI posting latency before a command is visible).
    /// `f` executes when the task *completes*; the returned instant is that
    /// completion time.
    pub fn exec_at<F>(
        &self,
        s: &dyn SimAccess,
        earliest: SimTime,
        cost: SimDuration,
        f: F,
    ) -> SimTime
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        let (start, done, register) = {
            let mut st = self.state.lock();
            let start = earliest.max(st.busy_until).max(s.now());
            let done = start + cost;
            st.busy_until = done;
            st.busy_total += cost;
            st.tasks_run += 1;
            st.last_seen = st.last_seen.max(done);
            let register = !st.registered;
            st.registered = true;
            (start, done, register)
        };
        if register {
            // First task: publish this CPU's task backlog (how far its
            // completion horizon runs ahead of sim time) as a sampled
            // series. Done outside the state lock — the poll closure
            // re-locks it at sample time.
            let name = if self.node == simnet::emp_trace::NO_NODE {
                format!("nicfw.{}.backlog_ns", self.name)
            } else {
                format!("nicfw.n{}.{}.backlog_ns", self.node, self.name)
            };
            let state = Arc::downgrade(&self.state);
            s.telemetry().register_sampled(&name, move |t| {
                let st = state.upgrade()?;
                let g = st.try_lock()?;
                Some(g.busy_until.nanos().saturating_sub(t) as i64)
            });
        }
        if simnet::emp_trace::ENABLED {
            s.tracer().emit(
                done.nanos(),
                self.node,
                simnet::emp_trace::NO_CONN,
                simnet::emp_trace::EventKind::FwTask,
                cost.nanos(),
                start.nanos(),
            );
        }
        s.schedule_at(done, f);
        done
    }

    /// Run a task starting as soon as the CPU is free.
    pub fn exec<F>(&self, s: &dyn SimAccess, cost: SimDuration, f: F) -> SimTime
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        self.exec_at(s, s.now(), cost, f)
    }

    /// Instant at which the CPU becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.state.lock().busy_until
    }

    /// Total CPU time consumed by tasks so far.
    pub fn busy_total(&self) -> SimDuration {
        self.state.lock().busy_total
    }

    /// Number of tasks executed (scheduled) so far.
    pub fn tasks_run(&self) -> u64 {
        self.state.lock().tasks_run
    }

    /// Fraction of time busy between t=0 and the last task completion.
    pub fn utilization(&self) -> f64 {
        let st = self.state.lock();
        if st.last_seen == SimTime::ZERO {
            return 0.0;
        }
        st.busy_total.as_secs_f64() / st.last_seen.since(SimTime::ZERO).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    #[test]
    fn tasks_serialize_on_the_cpu() {
        let sim = Sim::new();
        let cpu = FirmwareCpu::new("tx");
        let done = Arc::new(Mutex::new(Vec::new()));
        let (cpu2, done2) = (cpu.clone(), Arc::clone(&done));
        sim.schedule_at(SimTime::ZERO, move |s| {
            for i in 0..3u32 {
                let d = Arc::clone(&done2);
                cpu2.exec(s, SimDuration::from_micros(5), move |sim| {
                    d.lock().push((i, sim.now().nanos()));
                });
            }
        });
        sim.run();
        assert_eq!(*done.lock(), vec![(0, 5_000), (1, 10_000), (2, 15_000)]);
        assert_eq!(cpu.tasks_run(), 3);
        assert_eq!(cpu.busy_total(), SimDuration::from_micros(15));
    }

    #[test]
    fn earliest_bound_is_respected() {
        let sim = Sim::new();
        let cpu = FirmwareCpu::new("rx");
        let at = Arc::new(Mutex::new(0u64));
        let (cpu2, at2) = (cpu.clone(), Arc::clone(&at));
        sim.schedule_at(SimTime::ZERO, move |s| {
            cpu2.exec_at(
                s,
                SimTime::from_nanos(1_000),
                SimDuration::from_nanos(500),
                move |sim| {
                    *at2.lock() = sim.now().nanos();
                },
            );
        });
        sim.run();
        assert_eq!(*at.lock(), 1_500);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let sim = Sim::new();
        let cpu = FirmwareCpu::new("tx");
        let cpu2 = cpu.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            cpu2.exec(s, SimDuration::from_micros(2), |_| {});
        });
        let cpu3 = cpu.clone();
        sim.schedule_at(SimTime::from_micros(10), move |s| {
            cpu3.exec(s, SimDuration::from_micros(2), |_| {});
        });
        sim.run();
        assert_eq!(cpu.busy_total(), SimDuration::from_micros(4));
        assert_eq!(cpu.busy_until(), SimTime::from_nanos(12_000));
        let u = cpu.utilization();
        assert!((u - 4.0 / 12.0).abs() < 1e-9, "utilization {u}");
    }
}
