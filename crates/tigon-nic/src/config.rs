//! NIC cost constants.
//!
//! Calibrated so that the EMP protocol built on this NIC reproduces the
//! paper's end-to-end numbers: ~28 µs one-way latency for 4-byte messages
//! and a ~840 Mbps bandwidth ceiling for large ones (the receive firmware
//! path, not the wire, is EMP's large-message bottleneck — 1500 B per
//! ~14.3 µs of rx processing ≈ 840 Mbps).

use simnet::SimDuration;

/// Injectable NIC faults, seeded and deterministic like the wire-level
/// [`simnet::FaultPlan`]. All classes default to off. The two fault
/// classes model real Tigon failure modes the paper's lossless testbed
/// never hit: the receive-descriptor ring running dry (an arriving frame
/// has nowhere to land and is dropped before classification, recovered by
/// the sender's retransmission) and a DMA completion stalling behind PCI
/// bus contention.
#[derive(Clone, Copy, Debug)]
pub struct NicFaultPlan {
    /// Seed for every random decision this plan makes on a NIC.
    pub seed: u64,
    /// Probability an arriving data frame finds the receive-descriptor
    /// ring exhausted and is dropped before the firmware sees it.
    pub rx_ring_drop_prob: f64,
    /// Probability a DMA completion is delayed by [`NicFaultPlan::dma_delay`].
    pub dma_delay_prob: f64,
    /// Extra latency added to a delayed DMA completion.
    pub dma_delay: SimDuration,
}

impl NicFaultPlan {
    /// A healthy NIC: no injected faults.
    pub const fn none() -> Self {
        NicFaultPlan {
            seed: 1,
            rx_ring_drop_prob: 0.0,
            dma_delay_prob: 0.0,
            dma_delay: SimDuration::ZERO,
        }
    }

    /// An otherwise-healthy plan carrying `seed` for the builders.
    pub const fn seeded(seed: u64) -> Self {
        let mut p = NicFaultPlan::none();
        p.seed = seed;
        p
    }

    /// Receive-descriptor-ring exhaustion probability.
    pub fn with_rx_ring_drop_prob(mut self, prob: f64) -> Self {
        self.rx_ring_drop_prob = prob;
        self
    }

    /// Delayed-DMA-completion injection.
    pub fn with_dma_delay(mut self, prob: f64, delay: SimDuration) -> Self {
        self.dma_delay_prob = prob;
        self.dma_delay = delay;
        self
    }

    /// True when no fault class is enabled.
    pub fn is_healthy(&self) -> bool {
        self.rx_ring_drop_prob <= 0.0 && self.dma_delay_prob <= 0.0
    }
}

impl Default for NicFaultPlan {
    fn default() -> Self {
        NicFaultPlan::none()
    }
}

/// Cost constants of the Tigon2-style NIC.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Fixed DMA channel setup per transfer (descriptor fetch, bus
    /// arbitration).
    pub dma_setup: SimDuration,
    /// Sustained DMA bandwidth across the PCI bus (64-bit/66 MHz is
    /// 528 MB/s theoretical; ~400 MB/s effective).
    pub dma_bytes_per_sec: u64,
    /// Latency until a posted host write (doorbell/mailbox) becomes visible
    /// to firmware.
    pub pci_post_latency: SimDuration,
    /// Transmit firmware: accept and parse one host send request
    /// (descriptor decode, transmission-record setup — T1..T3 in Figure 2).
    pub tx_request_cost: SimDuration,
    /// Transmit firmware: per-frame header build + MAC handoff (T4..T5).
    pub tx_frame_cost: SimDuration,
    /// Receive firmware: per-frame classification + reliability bookkeeping
    /// (R3..R5), *excluding* tag matching and the DMA to host.
    pub rx_frame_cost: SimDuration,
    /// Tag-match walk cost per pre-posted descriptor examined. The paper
    /// measures ~550 ns per descriptor (§6.3).
    pub tag_match_per_descriptor: SimDuration,
    /// Generate or consume one protocol-level acknowledgment frame.
    pub ack_cost: SimDuration,
    /// DMA of a completion/status word to host memory plus the host cache
    /// transaction that makes it visible to a polling loop.
    pub completion_post: SimDuration,
    /// Run transmit and receive firmware on a single CPU instead of the
    /// Tigon2's two. The ablation for the authors' companion question
    /// ("Can User Level Protocols Take Advantage of Multi-CPU NICs?",
    /// IPDPS'02): with one CPU the tx and rx paths contend and the
    /// bandwidth ceiling drops.
    pub single_cpu: bool,
    /// Injectable hardware faults (default: none).
    pub faults: NicFaultPlan,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            dma_setup: SimDuration::from_nanos(800),
            dma_bytes_per_sec: 400_000_000,
            pci_post_latency: SimDuration::from_nanos(800),
            tx_request_cost: SimDuration::from_micros_f64(5.5),
            tx_frame_cost: SimDuration::from_micros(2),
            rx_frame_cost: SimDuration::from_micros(9),
            tag_match_per_descriptor: SimDuration::from_nanos(550),
            ack_cost: SimDuration::from_micros_f64(1.5),
            completion_post: SimDuration::from_micros(2),
            single_cpu: false,
            faults: NicFaultPlan::none(),
        }
    }
}

impl NicConfig {
    /// Time to DMA `bytes` across the bus (setup + transfer).
    pub fn dma_time(&self, bytes: usize) -> SimDuration {
        self.dma_setup + SimDuration::for_bytes_at_rate(bytes as u64, self.dma_bytes_per_sec)
    }

    /// Tag-match cost after walking `descriptors_examined` list entries.
    pub fn tag_match_time(&self, descriptors_examined: usize) -> SimDuration {
        self.tag_match_per_descriptor * descriptors_examined as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_time_includes_setup() {
        let c = NicConfig::default();
        assert_eq!(c.dma_time(0), c.dma_setup);
        // 400 MB/s => 2.5 ns per byte; 1500 B = 3750 ns + 800 setup.
        assert_eq!(c.dma_time(1500), SimDuration::from_nanos(4_550));
    }

    #[test]
    fn tag_match_is_linear_in_walk_length() {
        let c = NicConfig::default();
        assert_eq!(c.tag_match_time(0), SimDuration::ZERO);
        assert_eq!(c.tag_match_time(10), SimDuration::from_nanos(5_500));
    }

    #[test]
    fn rx_path_cost_supports_840mbps_ceiling() {
        // The calibration invariant: rx firmware + tag match (1 entry) +
        // DMA of a full frame ≈ 14.3 us, i.e. ~840 Mbps of 1500-byte
        // payloads through the receive CPU.
        let c = NicConfig::default();
        let per_frame = c.rx_frame_cost + c.tag_match_time(1) + c.dma_time(1500);
        let mbps = 1500.0 * 8.0 / per_frame.as_secs_f64() / 1e6;
        assert!(
            (800.0..900.0).contains(&mbps),
            "rx ceiling {mbps:.0} Mbps out of calibration range"
        );
    }
}
