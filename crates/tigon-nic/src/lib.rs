//! # tigon-nic — an Alteon Tigon2-style programmable NIC
//!
//! EMP is "a complete NIC based implementation": the entire protocol runs
//! as firmware on the NIC's two embedded CPUs, with DMA engines moving data
//! between host memory and the wire. This crate models that hardware:
//!
//! * [`FirmwareCpu`] — a serial task executor with precise busy-time
//!   accounting (two per NIC, one for each protocol direction);
//! * [`NicConfig`] — the cost constants (DMA setup/bandwidth, per-frame
//!   firmware costs, the 550 ns/descriptor tag-match walk from the paper);
//! * [`Tigon`] — the chassis binding CPUs, config and the link to the
//!   switch.
//!
//! The firmware *logic* — descriptor matching, reliability, the unexpected
//! queue — is the `emp-proto` crate; it runs "on" these CPUs by charging
//! its work to them.

#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod nic;

pub use config::{NicConfig, NicFaultPlan};
pub use cpu::FirmwareCpu;
pub use nic::Tigon;
