//! The NIC chassis: two firmware CPUs, cost configuration and the link
//! towards the switch.
//!
//! The protocol "firmware program" lives in the `emp-proto` crate; this
//! struct supplies the hardware it runs on. Frames the NIC wants on the
//! wire go out through [`Tigon::send_frame`]; frames arriving from the
//! switch are handed to whatever [`simnet::FrameSink`] the protocol crate
//! implements (the protocol object typically owns the `Tigon` and passes
//! itself to `Switch::attach`).

use parking_lot::Mutex;
use simnet::{Frame, LinkTx, MacAddr, SimAccess, SimDuration, XorShift64};

use crate::config::NicConfig;
use crate::cpu::FirmwareCpu;

/// Mutable cursor through the NIC's injected-fault schedule, plus the
/// counters observability surfaces.
struct NicFaultState {
    rng: XorShift64,
    rx_ring_drops: u64,
    dma_delays: u64,
}

/// One Tigon2-style NIC.
pub struct Tigon {
    mac: MacAddr,
    cfg: NicConfig,
    /// Transmit-path firmware CPU.
    pub cpu_tx: FirmwareCpu,
    /// Receive-path firmware CPU.
    pub cpu_rx: FirmwareCpu,
    link: Mutex<Option<LinkTx>>,
    faults: Mutex<NicFaultState>,
}

impl Tigon {
    /// Build a NIC with the given station address and cost constants.
    /// With `cfg.single_cpu` both protocol directions share one firmware
    /// CPU (the IPDPS'02 multi-CPU-NIC ablation).
    pub fn new(mac: MacAddr, cfg: NicConfig) -> Self {
        let cpu_tx = FirmwareCpu::new("tx").with_node(mac.0);
        let cpu_rx = if cfg.single_cpu {
            cpu_tx.clone()
        } else {
            FirmwareCpu::new("rx").with_node(mac.0)
        };
        let fault_seed = cfg.faults.seed ^ u64::from(mac.0);
        Tigon {
            mac,
            cfg,
            cpu_tx,
            cpu_rx,
            link: Mutex::new(None),
            faults: Mutex::new(NicFaultState {
                rng: XorShift64::new(fault_seed),
                rx_ring_drops: 0,
                dma_delays: 0,
            }),
        }
    }

    /// Station address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Cost constants.
    pub fn cfg(&self) -> &NicConfig {
        &self.cfg
    }

    /// Connect the NIC to its switch port (the `LinkTx` returned by
    /// [`simnet::Switch::attach`]).
    pub fn attach_link(&self, tx: LinkTx) {
        // Station-to-switch queueing shows up here; name the link so its
        // backlog series lands in the registry on first use.
        tx.set_name(format!("nic.n{}.uplink", self.mac.0));
        *self.link.lock() = Some(tx);
    }

    /// Hand a frame to the MAC for transmission. Panics if the NIC was
    /// never cabled up — that is a testbed construction bug.
    pub fn send_frame(&self, s: &dyn SimAccess, frame: Frame) {
        let link = self.link.lock();
        link.as_ref()
            .expect("NIC not attached to a link; call attach_link at testbed build time")
            .send(s, frame);
    }

    /// Frames handed to the MAC so far.
    pub fn frames_sent(&self) -> u64 {
        self.link.lock().as_ref().map_or(0, |l| l.frames_sent())
    }

    /// Injected-fault draw for one arriving data frame: true when the
    /// receive-descriptor ring is (simulated as) exhausted — the frame
    /// must be dropped before classification, for the sender's
    /// retransmission to recover. Deterministic in the NIC's fault seed.
    pub fn inject_rx_ring_exhausted(&self) -> bool {
        let plan = &self.cfg.faults;
        if plan.rx_ring_drop_prob <= 0.0 {
            return false;
        }
        let mut st = self.faults.lock();
        if st.rng.chance(plan.rx_ring_drop_prob) {
            st.rx_ring_drops += 1;
            true
        } else {
            false
        }
    }

    /// Injected-fault draw for one DMA completion: the extra latency (zero
    /// when the fault does not fire) to add to the transfer.
    pub fn inject_dma_delay(&self) -> SimDuration {
        let plan = &self.cfg.faults;
        if plan.dma_delay_prob <= 0.0 {
            return SimDuration::ZERO;
        }
        let mut st = self.faults.lock();
        if st.rng.chance(plan.dma_delay_prob) {
            st.dma_delays += 1;
            plan.dma_delay
        } else {
            SimDuration::ZERO
        }
    }

    /// Injected-fault counters: `(rx_ring_drops, dma_delays)`.
    pub fn fault_counts(&self) -> (u64, u64) {
        let st = self.faults.lock();
        (st.rx_ring_drops, st.dma_delays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{EtherType, FrameSink, Payload, Sim, SimAccessExt, SimTime, Switch, SwitchConfig};
    use std::sync::Arc;

    struct Collector {
        got: Mutex<Vec<u64>>,
    }

    impl FrameSink for Collector {
        fn deliver(&self, s: &dyn SimAccess, _frame: Frame) {
            self.got.lock().push(s.now().nanos());
        }
    }

    #[test]
    fn nic_sends_through_switch() {
        let sim = Sim::new();
        let switch = Switch::new(SwitchConfig::default());
        let nic = Tigon::new(MacAddr(1), NicConfig::default());
        let collector = Arc::new(Collector {
            got: Mutex::new(Vec::new()),
        });
        let nic_sink: Arc<dyn FrameSink> = Arc::new(NullSink);
        nic.attach_link(switch.attach(&nic_sink));
        switch.register_mac(MacAddr(1), 0);
        let col_sink: Arc<dyn FrameSink> = collector.clone();
        switch.attach(&col_sink);
        switch.register_mac(MacAddr(2), 1);

        let nic = Arc::new(nic);
        let nic2 = Arc::clone(&nic);
        sim.schedule_at(SimTime::ZERO, move |s| {
            nic2.send_frame(
                s,
                Frame {
                    src: MacAddr(1),
                    dst: MacAddr(2),
                    ethertype: EtherType::EMP,
                    payload: Payload::new((), 100),
                },
            );
        });
        sim.run();
        assert_eq!(collector.got.lock().len(), 1);
        assert_eq!(nic.frames_sent(), 1);
    }

    struct NullSink;
    impl FrameSink for NullSink {
        fn deliver(&self, _s: &dyn SimAccess, _f: Frame) {}
    }

    #[test]
    #[should_panic(expected = "NIC not attached")]
    fn sending_unattached_panics() {
        let sim = Sim::new();
        let nic = Arc::new(Tigon::new(MacAddr(1), NicConfig::default()));
        sim.schedule_at(SimTime::ZERO, move |s| {
            nic.send_frame(
                s,
                Frame {
                    src: MacAddr(1),
                    dst: MacAddr(2),
                    ethertype: EtherType::EMP,
                    payload: Payload::new((), 4),
                },
            );
        });
        sim.run();
    }
}
