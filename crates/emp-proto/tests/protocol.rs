//! End-to-end tests of the EMP protocol on the simulated testbed,
//! including the calibration points the rest of the reproduction depends
//! on: ~28 µs one-way latency for 4-byte messages and a ~840 Mbps
//! large-message ceiling (paper §7.1-7.2).

use bytes::Bytes;
use emp_proto::{build_cluster, EmpCluster, EmpConfig, RecvPoll, Tag};
use hostsim::VirtRange;
use parking_lot::Mutex;
use simnet::{Completion, Sim, SimAccess, SimDuration, SimTime, SwitchConfig};
use std::sync::Arc;

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

/// A stable fake buffer address per (node, purpose) so the translation
/// cache behaves as it would for a real re-used buffer.
fn buf(slot: u64, len: usize) -> VirtRange {
    VirtRange::new(0x1_0000_0000 + slot * 0x100_0000, len as u64)
}

#[test]
fn single_message_delivery_preserves_contents() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let done = Completion::new();
    let done2 = done.clone();
    let dst = b.addr();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        let h = b2.post_recv(ctx, Tag(7), None, 1024, buf(1, 1024))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("message, not cancel");
        assert_eq!(&msg.data[..], b"hello emp");
        assert_eq!(msg.tag, Tag(7));
        assert!(!msg.from_unexpected);
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(5))?; // let the receiver post
        let h = a.post_send(
            ctx,
            dst,
            Tag(7),
            Bytes::from_static(b"hello emp"),
            buf(0, 9),
        )?;
        assert!(a.wait_send(ctx, &h)?);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    assert_eq!(cl.nodes[1].nic.stats().msgs_received, 1);
    assert_eq!(cl.nodes[0].nic.stats().msgs_sent, 1);
    assert_eq!(cl.nodes[0].nic.stats().frames_retransmitted, 0);
}

#[test]
fn four_byte_latency_calibrates_to_paper() {
    // Ping-pong as in §7.1: one-way latency = RTT/2 for 4-byte messages.
    // Raw EMP must land near the paper's ~28 us (the datagram substrate
    // adds ~0.5-1 us on top of this).
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let (addr_a, addr_b) = (a.addr(), b.addr());
    let result = Arc::new(Mutex::new(0.0f64));
    let result2 = Arc::clone(&result);

    let b2 = b.clone();
    sim.spawn("echoer", move |ctx| {
        for _ in 0..100 {
            let h = b2.post_recv(ctx, Tag(1), None, 4, buf(10, 4))?;
            let msg = b2.wait_recv(ctx, &h)?.expect("ping");
            let hs = b2.post_send(ctx, addr_a, Tag(2), msg.data, buf(11, 4))?;
            b2.wait_send(ctx, &hs)?;
        }
        Ok(())
    });
    sim.spawn("pinger", move |ctx| {
        ctx.delay(SimDuration::from_micros(50))?; // warm-up: peer posted
        let iters = 100u32;
        let t0 = ctx.now();
        for _ in 0..iters {
            let hr = a.post_recv(ctx, Tag(2), None, 4, buf(12, 4))?;
            let hs = a.post_send(ctx, addr_b, Tag(1), Bytes::from_static(b"ping"), buf(13, 4))?;
            a.wait_recv(ctx, &hr)?.expect("pong");
            // wait_send after the pong: the ack always beats the reply.
            a.wait_send(ctx, &hs)?;
        }
        let rtt = (ctx.now() - t0) / iters as u64;
        *result2.lock() = rtt.as_micros_f64() / 2.0;
        Ok(())
    });
    sim.run();
    let one_way = *result.lock();
    assert!(
        (25.0..31.0).contains(&one_way),
        "raw EMP 4-byte one-way latency {one_way:.2} us; paper reports ~28 us"
    );
}

#[test]
fn large_message_bandwidth_hits_nic_ceiling() {
    // Stream 4 MB in 64 KiB messages; goodput must land near the paper's
    // 840 Mbps NIC-receive-path ceiling (not the 975 Mbps wire ceiling).
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    const MSG: usize = 64 * 1024;
    const COUNT: usize = 64;
    let result = Arc::new(Mutex::new(0.0f64));
    let result2 = Arc::clone(&result);

    let b2 = b.clone();
    sim.spawn("sink", move |ctx| {
        // Pre-post a deep pipeline of descriptors, then drain.
        let mut handles = Vec::new();
        for i in 0..COUNT {
            handles.push(b2.post_recv(ctx, Tag(1), None, MSG, buf(100 + i as u64, MSG))?);
        }
        let t0 = ctx.now();
        for h in &handles {
            b2.wait_recv(ctx, h)?.expect("data");
        }
        let elapsed = ctx.now() - t0;
        let bits = (MSG * COUNT) as f64 * 8.0;
        *result2.lock() = bits / elapsed.as_secs_f64() / 1e6;
        Ok(())
    });
    sim.spawn("source", move |ctx| {
        ctx.delay(SimDuration::from_millis(1))?; // descriptors in place
        let payload = Bytes::from(vec![0xabu8; MSG]);
        let mut pending = Vec::new();
        for _ in 0..COUNT {
            pending.push(a.post_send(ctx, dst, Tag(1), payload.clone(), buf(50, MSG))?);
        }
        for h in &pending {
            assert!(a.wait_send(ctx, h)?);
        }
        Ok(())
    });
    sim.run();
    let mbps = *result.lock();
    assert!(
        (780.0..900.0).contains(&mbps),
        "EMP large-message goodput {mbps:.0} Mbps; paper reports ~840 Mbps"
    );
    assert_eq!(cl.nodes[0].nic.stats().frames_retransmitted, 0);
}

#[test]
fn multi_frame_message_reassembles() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let len = 10_000usize;
    let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
    let expect = payload.clone();
    let done = Completion::new();
    let done2 = done.clone();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        let h = b2.post_recv(ctx, Tag(3), None, 16 * 1024, buf(1, 16 * 1024))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("data");
        assert_eq!(msg.data.len(), expect.len());
        assert_eq!(&msg.data[..], &expect[..]);
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(10))?;
        let h = a.post_send(ctx, dst, Tag(3), Bytes::from(payload), buf(0, len))?;
        assert!(a.wait_send(ctx, &h)?);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    // 10'000 bytes = 7 frames; acks at 4 and 7 (window of 4 + final).
    let stats = cl.nodes[1].nic.stats();
    assert_eq!(stats.acks_sent, 2);
}

#[test]
fn unmatched_message_is_dropped_then_retransmitted() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let done = Completion::new();
    let done2 = done.clone();

    // Sender fires immediately; nothing is posted at the receiver.
    let a2 = a.clone();
    sim.spawn("sender", move |ctx| {
        let h = a2.post_send(ctx, dst, Tag(9), Bytes::from_static(b"late"), buf(0, 4))?;
        assert!(a2.wait_send(ctx, &h)?, "retransmission must succeed");
        Ok(())
    });
    // Receiver posts only after one retransmit timeout has surely passed.
    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        ctx.delay(SimDuration::from_micros(500))?;
        let h = b2.post_recv(ctx, Tag(9), None, 64, buf(1, 64))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("data");
        assert_eq!(&msg.data[..], b"late");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    assert!(cl.nodes[1].nic.stats().frames_dropped >= 1);
    assert!(cl.nodes[0].nic.stats().frames_retransmitted >= 1);
}

#[test]
fn send_gives_up_after_max_retries() {
    let cfg = EmpConfig {
        max_retries: 3,
        retransmit_timeout: SimDuration::from_micros(100),
        ..EmpConfig::default()
    };
    let sim = Sim::new();
    let cl = build_cluster(2, cfg, SwitchConfig::default());
    let a = cl.nodes[0].endpoint();
    let dst = cl.nodes[1].addr();

    sim.spawn("sender", move |ctx| {
        let h = a.post_send(ctx, dst, Tag(5), Bytes::from_static(b"void"), buf(0, 4))?;
        assert!(!a.wait_send(ctx, &h)?, "send must fail: no descriptor ever");
        Ok(())
    });
    sim.run();
    assert_eq!(cl.nodes[0].nic.stats().sends_failed, 1);
}

#[test]
fn unexpected_queue_buffers_and_claims() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let done = Completion::new();
    let done2 = done.clone();

    let b_setup = b.clone();
    sim.spawn("receiver", move |ctx| {
        b_setup.set_unexpected_slots(ctx, 4)?;
        // Post nothing; the message must park in the unexpected queue.
        ctx.delay(SimDuration::from_micros(300))?;
        assert_eq!(b_setup.nic().stats().unexpected_msgs, 1);
        let h = b_setup.post_recv(ctx, Tag(2), None, 64, buf(1, 64))?;
        let msg = b_setup.wait_recv(ctx, &h)?.expect("claimed from pool");
        assert!(msg.from_unexpected);
        assert_eq!(&msg.data[..], b"surprise");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(20))?;
        let h = a.post_send(ctx, dst, Tag(2), Bytes::from_static(b"surprise"), buf(0, 8))?;
        assert!(a.wait_send(ctx, &h)?, "unexpected queue still acks");
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    assert_eq!(cl.nodes[1].nic.stats().frames_dropped, 0);
    assert_eq!(cl.nodes[0].nic.stats().frames_retransmitted, 0);
}

#[test]
fn unpost_completes_with_none() {
    let sim = Sim::new();
    let cl = cluster(2);
    let b = cl.nodes[1].endpoint();
    sim.spawn("owner", move |ctx| {
        let h = b.post_recv(ctx, Tag(4), None, 64, buf(1, 64))?;
        ctx.delay(SimDuration::from_micros(10))?;
        assert_eq!(b.nic().preposted_len(), 1);
        b.unpost_recv(ctx, &h)?;
        assert!(b.wait_recv(ctx, &h)?.is_none());
        assert_eq!(b.nic().preposted_len(), 0);
        Ok(())
    });
    sim.run();
}

#[test]
fn tag_and_source_filters_select_descriptors() {
    let sim = Sim::new();
    let cl = cluster(3);
    let (a, b, c) = (
        cl.nodes[0].endpoint(),
        cl.nodes[1].endpoint(),
        cl.nodes[2].endpoint(),
    );
    let dst = c.addr();
    let (addr_a, addr_b) = (a.addr(), b.addr());
    let done = Completion::new();
    let done2 = done.clone();

    let c2 = c.clone();
    sim.spawn("receiver", move |ctx| {
        // Descriptor 1: tag 1 from A only. Descriptor 2: tag 1 from anyone.
        let h_a = c2.post_recv(ctx, Tag(1), Some(addr_a), 64, buf(1, 64))?;
        let h_any = c2.post_recv(ctx, Tag(1), None, 64, buf(2, 64))?;
        let from_b = c2.wait_recv(ctx, &h_any)?.expect("b's message");
        assert_eq!(from_b.src, addr_b);
        assert_eq!(&from_b.data[..], b"from-b");
        let from_a = c2.wait_recv(ctx, &h_a)?.expect("a's message");
        assert_eq!(from_a.src, addr_a);
        assert_eq!(&from_a.data[..], b"from-a");
        done2.complete(ctx);
        Ok(())
    });
    // B sends first; its message must skip the src-filtered descriptor.
    sim.spawn("sender-b", move |ctx| {
        ctx.delay(SimDuration::from_micros(20))?;
        let h = b.post_send(ctx, dst, Tag(1), Bytes::from_static(b"from-b"), buf(0, 6))?;
        b.wait_send(ctx, &h)?;
        Ok(())
    });
    sim.spawn("sender-a", move |ctx| {
        ctx.delay(SimDuration::from_micros(120))?;
        let h = a.post_send(ctx, dst, Tag(1), Bytes::from_static(b"from-a"), buf(0, 6))?;
        a.wait_send(ctx, &h)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn tag_match_walk_is_counted() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        // Five decoy descriptors ahead of the real one: the matcher must
        // walk all six.
        for i in 0..5u64 {
            b2.post_recv(ctx, Tag(100 + i as u16), None, 64, buf(10 + i, 64))?;
        }
        let h = b2.post_recv(ctx, Tag(1), None, 64, buf(20, 64))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("data");
        assert_eq!(&msg.data[..], b"x");
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(50))?;
        let h = a.post_send(ctx, dst, Tag(1), Bytes::from_static(b"x"), buf(0, 1))?;
        a.wait_send(ctx, &h)?;
        Ok(())
    });
    sim.run();
    assert_eq!(cl.nodes[1].nic.stats().descriptors_walked, 6);
    assert_eq!(cl.nodes[1].nic.preposted_len(), 5);
}

#[test]
fn poll_recv_reports_pending_then_ready() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        let h = b2.post_recv(ctx, Tag(1), None, 64, buf(1, 64))?;
        assert!(matches!(b2.poll_recv(ctx, &h)?, RecvPoll::Pending));
        ctx.delay(SimDuration::from_micros(100))?;
        assert!(matches!(b2.poll_recv(ctx, &h)?, RecvPoll::Ready(_)));
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(10))?;
        let h = a.post_send(ctx, dst, Tag(1), Bytes::from_static(b"now"), buf(0, 3))?;
        a.wait_send(ctx, &h)?;
        Ok(())
    });
    sim.run();
}

#[test]
fn runs_are_deterministic() {
    fn run_once() -> (u64, u64, SimTime) {
        let sim = Sim::new();
        let cl = cluster(2);
        let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
        let dst = b.addr();
        let b2 = b.clone();
        sim.spawn("receiver", move |ctx| {
            for i in 0..20u64 {
                let h = b2.post_recv(ctx, Tag(1), None, 4096, buf(i % 3, 4096))?;
                b2.wait_recv(ctx, &h)?.expect("data");
            }
            Ok(())
        });
        sim.spawn("sender", move |ctx| {
            ctx.delay(SimDuration::from_micros(30))?;
            for i in 0..20usize {
                let h = a.post_send(
                    ctx,
                    dst,
                    Tag(1),
                    Bytes::from(vec![1u8; 100 * (i + 1)]),
                    buf(5, 4096),
                )?;
                a.wait_send(ctx, &h)?;
            }
            Ok(())
        });
        let end = sim.run();
        let walked = cl.nodes[1].nic.stats().descriptors_walked;
        (sim.events_executed(), walked, end)
    }
    assert_eq!(run_once(), run_once());
}
