//! Property tests of EMP's fragmentation arithmetic.

use emp_proto::wire::{chunk_range, frames_for, EmpWire, Tag, MAX_CHUNK};
use proptest::prelude::*;
use simnet::MTU;

proptest! {
    #[test]
    fn chunk_ranges_tile_any_message(len in 0usize..5_000_000) {
        let n = frames_for(len);
        prop_assert!(n >= 1);
        let mut covered = 0usize;
        for i in 0..n {
            let (a, b) = chunk_range(len, i);
            prop_assert_eq!(a, covered, "fragment {} starts at the seam", i);
            prop_assert!(b - a <= MAX_CHUNK);
            if i + 1 < n {
                prop_assert_eq!(b - a, MAX_CHUNK, "only the tail is short");
            }
            covered = b;
        }
        prop_assert_eq!(covered, len);
    }

    #[test]
    fn every_data_frame_fits_the_mtu(len in 0usize..300_000, idx_seed in any::<u32>()) {
        let n = frames_for(len);
        let idx = idx_seed % n;
        let (a, b) = chunk_range(len, idx);
        let w = EmpWire::Data {
            msg_id: 1,
            tag: Tag(3),
            frame_idx: idx,
            num_frames: n,
            total_len: len as u32,
            no_uq: false,
            chunk: bytes::Bytes::from(vec![0u8; b - a]),
        };
        prop_assert!(w.wire_len() <= MTU);
    }
}
