//! Tag-matching semantics in depth: capacity filtering, unexpected-queue
//! overflow, queue resizing, walk accounting, and cross-connection
//! isolation under interleaved traffic.

use bytes::Bytes;
use emp_proto::{build_cluster, EmpCluster, EmpConfig, Tag};
use hostsim::VirtRange;
use parking_lot::Mutex;
use simnet::{Sim, SimDuration, SwitchConfig};
use std::sync::Arc;

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn buf(slot: u64, len: usize) -> VirtRange {
    VirtRange::new(0x7_0000_0000 + slot * 0x100_0000, len.max(1) as u64)
}

#[test]
fn undersized_descriptors_are_skipped_in_the_walk() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        // Same tag, too small for the incoming 1000-byte message — the
        // matcher must pass over it and land on the adequate one.
        let small = b2.post_recv(ctx, Tag(1), None, 10, buf(1, 10))?;
        let large = b2.post_recv(ctx, Tag(1), None, 4096, buf(2, 4096))?;
        let msg = b2.wait_recv(ctx, &large)?.expect("matched the large one");
        assert_eq!(msg.data.len(), 1000);
        assert!(!small.is_done(), "undersized descriptor stays posted");
        b2.unpost_recv(ctx, &small)?;
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(20))?;
        let h = a.post_send(ctx, dst, Tag(1), Bytes::from(vec![3u8; 1000]), buf(0, 1000))?;
        assert!(a.wait_send(ctx, &h)?);
        Ok(())
    });
    sim.run();
    // Walk: small (skipped) + large (matched) = 2 entries examined.
    assert_eq!(cl.nodes[1].nic.stats().descriptors_walked, 2);
}

#[test]
fn unexpected_queue_overflow_drops_until_slots_free() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = Arc::clone(&got);

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        b2.set_unexpected_slots(ctx, 2)?;
        // Let the sender fire 4 messages into 2 slots; two must be
        // dropped and retransmitted later.
        ctx.delay(SimDuration::from_millis(1))?;
        assert_eq!(b2.nic().stats().unexpected_msgs, 2);
        assert!(b2.nic().stats().frames_dropped >= 2);
        for i in 0..4u64 {
            let h = b2.post_recv(ctx, Tag(5), None, 64, buf(10 + i, 64))?;
            let msg = b2.wait_recv(ctx, &h)?.expect("message");
            g2.lock().push(msg.data[0]);
        }
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(20))?;
        let mut handles = Vec::new();
        for i in 0..4u8 {
            handles.push(a.post_send(ctx, dst, Tag(5), Bytes::from(vec![i; 8]), buf(0, 8))?);
        }
        for h in &handles {
            assert!(a.wait_send(ctx, h)?, "all must eventually deliver");
        }
        Ok(())
    });
    sim.run();
    let mut v = got.lock().clone();
    v.sort_unstable();
    assert_eq!(v, vec![0, 1, 2, 3], "every message delivered exactly once");
    assert!(cl.nodes[0].nic.stats().frames_retransmitted >= 2);
}

#[test]
fn shrinking_the_unexpected_queue_keeps_parked_messages() {
    let sim = Sim::new();
    let cl = cluster(2);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        b2.set_unexpected_slots(ctx, 4)?;
        ctx.delay(SimDuration::from_millis(1))?; // two messages park
        b2.set_unexpected_slots(ctx, 0)?; // shrink below in-use
        ctx.delay(SimDuration::from_micros(50))?;
        // Parked messages are still claimable.
        for i in 0..2u64 {
            let h = b2.post_recv(ctx, Tag(6), None, 64, buf(20 + i, 64))?;
            assert!(b2.wait_recv(ctx, &h)?.is_some());
        }
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(20))?;
        for i in 0..2u8 {
            let h = a.post_send(ctx, dst, Tag(6), Bytes::from(vec![i; 4]), buf(0, 4))?;
            assert!(a.wait_send(ctx, &h)?);
        }
        Ok(())
    });
    sim.run();
}

#[test]
fn interleaved_connections_never_cross_messages() {
    // Two senders, two tags each, interleaved multi-frame messages: every
    // payload must arrive intact on its own (tag, src) lane.
    let sim = Sim::new();
    let cl = cluster(3);
    let c = cl.nodes[2].endpoint();
    let dst = c.addr();
    let done = Arc::new(Mutex::new(0u32));

    for sender in 0..2u16 {
        let ep = cl.nodes[sender as usize].endpoint();
        sim.spawn(format!("sender-{sender}"), move |ctx| {
            ctx.delay(SimDuration::from_micros(50 + u64::from(sender)))?;
            for tag in [10u16, 11u16] {
                for round in 0..3usize {
                    let len = 3000 + round * 1000 + usize::from(sender) * 100;
                    let fill = (sender as u8) * 16 + (tag as u8 - 10) * 4 + round as u8;
                    let h = ep.post_send(
                        ctx,
                        dst,
                        Tag(tag),
                        Bytes::from(vec![fill; len]),
                        buf(u64::from(sender), len),
                    )?;
                    assert!(ep.wait_send(ctx, &h)?);
                }
            }
            Ok(())
        });
    }
    for sender in 0..2u16 {
        for tag in [10u16, 11u16] {
            let ep = c.clone();
            let src = cl.nodes[sender as usize].addr();
            let done = Arc::clone(&done);
            sim.spawn(format!("receiver-{sender}-{tag}"), move |ctx| {
                for round in 0..3usize {
                    let len = 3000 + round * 1000 + usize::from(sender) * 100;
                    let fill = (sender as u8) * 16 + (tag as u8 - 10) * 4 + round as u8;
                    let h = ep.post_recv(
                        ctx,
                        Tag(tag),
                        Some(src),
                        8192,
                        buf(100 + u64::from(sender) * 10 + u64::from(tag), 8192),
                    )?;
                    let msg = ep.wait_recv(ctx, &h)?.expect("message");
                    assert_eq!(msg.data.len(), len, "lane ({sender},{tag}) round {round}");
                    assert!(msg.data.iter().all(|&b| b == fill), "no cross-talk");
                }
                *done.lock() += 1;
                Ok(())
            });
        }
    }
    sim.run();
    assert_eq!(*done.lock(), 4, "all four lanes complete");
}
