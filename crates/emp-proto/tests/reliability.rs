//! Failure injection: EMP's reliability machinery (cumulative acks,
//! timeout retransmission with rewind, backoff) under sustained frame
//! loss on the wire. The paper's fabric is lossless; these tests exist
//! because a reliable protocol must prove itself on a lossy one.

use bytes::Bytes;
use emp_proto::{build_cluster, EmpConfig, Tag};
use hostsim::VirtRange;
use parking_lot::Mutex;
use simnet::{Completion, FaultPlan, LinkConfig, Sim, SimDuration, SwitchConfig};
use std::sync::Arc;
use tigon_nic::{NicConfig, NicFaultPlan};

fn faulty_switch(faults: FaultPlan) -> SwitchConfig {
    SwitchConfig {
        link: LinkConfig {
            faults,
            ..LinkConfig::default()
        },
        ..SwitchConfig::default()
    }
}

fn lossy_switch(drop_every: u64) -> SwitchConfig {
    faulty_switch(FaultPlan::drop_every(drop_every))
}

fn buf(slot: u64, len: usize) -> VirtRange {
    VirtRange::new(0x5_0000_0000 + slot * 0x100_0000, len.max(1) as u64)
}

#[test]
fn small_messages_survive_loss() {
    let sim = Sim::new();
    // Every 2nd frame corrupted on every link: brutal, but EMP must win.
    let cl = build_cluster(2, EmpConfig::default(), lossy_switch(2));
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let done = Completion::new();
    let done2 = done.clone();
    const COUNT: usize = 20;

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        for i in 0..COUNT {
            let h = b2.post_recv(ctx, Tag(1), None, 64, buf(1, 64))?;
            let msg = b2.wait_recv(ctx, &h)?.expect("delivered despite loss");
            assert_eq!(&msg.data[..], format!("msg-{i:04}").as_bytes());
        }
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(10))?;
        for i in 0..COUNT {
            let h = a.post_send(
                ctx,
                dst,
                Tag(1),
                Bytes::from(format!("msg-{i:04}").into_bytes()),
                buf(0, 8),
            )?;
            assert!(a.wait_send(ctx, &h)?, "must eventually be acknowledged");
        }
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    assert!(
        cl.nodes[0].nic.stats().frames_retransmitted > 0,
        "50% loss must force retransmissions"
    );
}

#[test]
fn large_message_reassembles_exactly_under_loss() {
    let sim = Sim::new();
    let cl = build_cluster(2, EmpConfig::default(), lossy_switch(7));
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let len = 200_000usize;
    let payload: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
    let expect = payload.clone();
    let done = Completion::new();
    let done2 = done.clone();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        let h = b2.post_recv(ctx, Tag(9), None, len, buf(1, len))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("delivered");
        assert_eq!(msg.data.len(), expect.len());
        assert_eq!(&msg.data[..], &expect[..], "no corruption, no reordering");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(10))?;
        let h = a.post_send(ctx, dst, Tag(9), Bytes::from(payload), buf(0, len))?;
        assert!(a.wait_send(ctx, &h)?);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    let stats = cl.nodes[0].nic.stats();
    assert!(stats.frames_retransmitted > 0);
    assert_eq!(stats.sends_failed, 0);
}

#[test]
fn lossy_runs_are_still_deterministic() {
    fn run_once() -> (u64, u64) {
        let sim = Sim::new();
        let cl = build_cluster(2, EmpConfig::default(), lossy_switch(3));
        let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
        let dst = b.addr();
        let b2 = b.clone();
        sim.spawn("receiver", move |ctx| {
            for i in 0..10u64 {
                let h = b2.post_recv(ctx, Tag(1), None, 8 * 1024, buf(i % 2, 8 * 1024))?;
                b2.wait_recv(ctx, &h)?.expect("data");
            }
            Ok(())
        });
        sim.spawn("sender", move |ctx| {
            ctx.delay(SimDuration::from_micros(20))?;
            for i in 0..10usize {
                let h = a.post_send(
                    ctx,
                    dst,
                    Tag(1),
                    Bytes::from(vec![i as u8; 700 * (i + 1)]),
                    buf(5, 8 * 1024),
                )?;
                a.wait_send(ctx, &h)?;
            }
            Ok(())
        });
        sim.run();
        (
            sim.events_executed(),
            cl.nodes[0].nic.stats().frames_retransmitted,
        )
    }
    let first = run_once();
    assert!(first.1 > 0, "loss model must trigger retransmission");
    assert_eq!(first, run_once());
}

#[test]
fn unrelenting_loss_eventually_fails_the_send() {
    // Drop EVERY frame on the path: after max_retries the send must
    // complete unsuccessfully rather than hang.
    let cfg = EmpConfig {
        max_retries: 4,
        retransmit_timeout: SimDuration::from_micros(100),
        ..EmpConfig::default()
    };
    let sim = Sim::new();
    let cl = build_cluster(2, cfg, lossy_switch(1));
    let a = cl.nodes[0].endpoint();
    let dst = cl.nodes[1].addr();
    let finished = Arc::new(Mutex::new(false));
    let f2 = Arc::clone(&finished);

    sim.spawn("sender", move |ctx| {
        let h = a.post_send(ctx, dst, Tag(1), Bytes::from_static(b"void"), buf(0, 4))?;
        assert!(!a.wait_send(ctx, &h)?, "total loss must fail the send");
        *f2.lock() = true;
        Ok(())
    });
    sim.run();
    assert!(*finished.lock());
    assert_eq!(cl.nodes[0].nic.stats().sends_failed, 1);
}

/// One sender pushing `len` patterned bytes to one receiver over `sw`,
/// with `emp` as the protocol config. Asserts byte-exact reassembly.
fn exact_transfer(emp: EmpConfig, sw: SwitchConfig, len: usize) -> emp_proto::EmpCluster {
    let sim = Sim::new();
    let cl = build_cluster(2, emp, sw);
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    let expect = payload.clone();
    let done = Completion::new();
    let done2 = done.clone();

    let b2 = b.clone();
    sim.spawn("receiver", move |ctx| {
        let h = b2.post_recv(ctx, Tag(3), None, len, buf(1, len))?;
        let msg = b2.wait_recv(ctx, &h)?.expect("delivered");
        assert_eq!(&msg.data[..], &expect[..], "byte-exact reassembly");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.delay(SimDuration::from_micros(10))?;
        let h = a.post_send(ctx, dst, Tag(3), Bytes::from(payload), buf(0, len))?;
        assert!(a.wait_send(ctx, &h)?);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
    cl
}

#[test]
fn retransmission_survives_corruption_and_reordering() {
    // Not just periodic drop: seeded in-flight corruption plus reorder
    // windows wide enough for frames to genuinely overtake each other.
    let plan = FaultPlan::seeded(0xC0FFEE)
        .with_corrupt_prob(0.15)
        .with_reorder(0.4, SimDuration::from_micros(80));
    let cl = exact_transfer(EmpConfig::default(), faulty_switch(plan), 150_000);
    let stats = cl.nodes[0].nic.stats();
    assert!(
        stats.frames_retransmitted > 0,
        "corruption must force resend"
    );
    assert_eq!(stats.sends_failed, 0);
    let corrupted: u64 = cl
        .switch
        .port_stats()
        .iter()
        .map(|s| s.frames_corrupted)
        .sum();
    assert!(corrupted > 0, "fault plan injected no corruption");
}

#[test]
fn retransmission_survives_burst_loss_and_jitter() {
    let plan = FaultPlan::seeded(0xB00B5)
        .with_drop_prob(0.05)
        .with_burst(0.8, 5)
        .with_jitter(SimDuration::from_micros(15));
    let cl = exact_transfer(EmpConfig::default(), faulty_switch(plan), 120_000);
    let stats = cl.nodes[0].nic.stats();
    assert!(stats.frames_retransmitted > 0);
    assert_eq!(stats.sends_failed, 0);
}

#[test]
fn nic_rx_ring_exhaustion_is_recovered_by_retransmission() {
    let emp = EmpConfig {
        nic: NicConfig {
            faults: NicFaultPlan::seeded(77).with_rx_ring_drop_prob(0.25),
            ..NicConfig::default()
        },
        ..EmpConfig::default()
    };
    let cl = exact_transfer(emp, SwitchConfig::default(), 100_000);
    let rx_stats = cl.nodes[1].nic.stats();
    assert!(
        rx_stats.nic_rx_ring_drops > 0,
        "rx-ring fault never fired at p=0.25"
    );
    let tx_stats = cl.nodes[0].nic.stats();
    assert!(tx_stats.frames_retransmitted > 0);
    assert_eq!(tx_stats.sends_failed, 0);
}

#[test]
fn delayed_dma_completions_slow_but_do_not_break_transfers() {
    let emp = EmpConfig {
        nic: NicConfig {
            faults: NicFaultPlan::seeded(13).with_dma_delay(0.2, SimDuration::from_micros(40)),
            ..NicConfig::default()
        },
        ..EmpConfig::default()
    };
    let cl = exact_transfer(emp, SwitchConfig::default(), 100_000);
    let stats = cl.nodes[1].nic.stats();
    assert!(stats.nic_dma_delays > 0, "DMA-delay fault never fired");
    assert_eq!(cl.nodes[0].nic.stats().sends_failed, 0);
}

#[test]
fn seeded_fault_runs_are_deterministic() {
    fn run_once() -> (u64, u64) {
        let plan = FaultPlan::seeded(4242)
            .with_drop_prob(0.1)
            .with_corrupt_prob(0.1)
            .with_reorder(0.3, SimDuration::from_micros(40));
        let cl = exact_transfer(EmpConfig::default(), faulty_switch(plan), 60_000);
        let st = cl.nodes[0].nic.stats();
        (st.frames_retransmitted, st.acks_sent)
    }
    let first = run_once();
    assert!(first.0 > 0);
    assert_eq!(first, run_once());
}
