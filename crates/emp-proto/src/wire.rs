//! EMP wire format.
//!
//! EMP fragments messages into Ethernet frames. Every data frame carries a
//! compact header (message id, 16-bit tag, frame index/count, total length)
//! used by the receiving NIC for tag matching and reassembly; acknowledgment
//! frames carry the cumulative frame count received. Header sizes are
//! charged on the wire, so small-message latency and large-message goodput
//! both see them.

use bytes::Bytes;
use simnet::{MacAddr, MTU};

/// EMP's 16-bit matching tag (the paper: "an arbitrary user-provided 16-bit
/// tag" matched together with the sender's source index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u16);

/// Bytes of EMP header in every data frame (msg id, tag, frame idx/count,
/// total length, flags).
pub const DATA_HEADER: usize = 20;
/// On-wire payload size of an acknowledgment frame.
pub const ACK_WIRE: usize = 20;
/// Maximum message bytes carried per frame.
pub const MAX_CHUNK: usize = MTU - DATA_HEADER;

/// Number of frames needed for a message of `len` bytes (at least one; a
/// zero-length message still sends a header-only frame).
pub fn frames_for(len: usize) -> u32 {
    if len == 0 {
        1
    } else {
        len.div_ceil(MAX_CHUNK) as u32
    }
}

/// The byte range of the message carried by frame `idx`.
pub fn chunk_range(len: usize, idx: u32) -> (usize, usize) {
    let start = (idx as usize) * MAX_CHUNK;
    let end = (start + MAX_CHUNK).min(len);
    (start.min(len), end)
}

/// An EMP frame as it crosses the wire.
#[derive(Clone, Debug)]
pub enum EmpWire {
    /// One fragment of a message.
    Data {
        /// Sender-local message identifier.
        msg_id: u64,
        /// Matching tag.
        tag: Tag,
        /// Fragment index, `0..num_frames`.
        frame_idx: u32,
        /// Total fragments in the message.
        num_frames: u32,
        /// Total message length in bytes.
        total_len: u32,
        /// Header flag: this message must match a pre-posted descriptor
        /// — it may never park in the unexpected queue. An unmatched
        /// `no_uq` message is refused with an explicit [`EmpWire::Nack`]
        /// instead, which is how a connection request to a full backlog
        /// (or no listener at all) fails deterministically rather than
        /// camping in the receiver's pool.
        no_uq: bool,
        /// The fragment's bytes (a cheap slice of the message buffer —
        /// EMP is zero-copy, and so is the simulation of it).
        chunk: Bytes,
    },
    /// Cumulative acknowledgment: "I have the first `frames` fragments of
    /// your message `msg_id`". Generated and consumed entirely by the NICs;
    /// hosts never see these (paper §5.2).
    Ack {
        /// The acknowledged message (sender-local id, scoped by the
        /// acknowledging NIC's address).
        msg_id: u64,
        /// Cumulative fragments received.
        frames: u32,
    },
    /// Negative acknowledgment: the receiving NIC could not take the
    /// message. Generated and consumed by the NICs, like [`EmpWire::Ack`].
    Nack {
        /// The rejected message (sender-local id).
        msg_id: u64,
        /// `true`: transient exhaustion (rx ring / unexpected queue full)
        /// — the sender should back off and retransmit. `false`: the
        /// message was *refused* (a `no_uq` message matched nothing) —
        /// the sender must fail the send immediately.
        busy: bool,
    },
}

impl EmpWire {
    /// On-wire Ethernet payload size of this frame.
    pub fn wire_len(&self) -> usize {
        match self {
            EmpWire::Data { chunk, .. } => DATA_HEADER + chunk.len(),
            EmpWire::Ack { .. } | EmpWire::Nack { .. } => ACK_WIRE,
        }
    }
}

/// A fully reassembled incoming message, as the host sees it.
#[derive(Clone, Debug)]
pub struct RecvMsg {
    /// Sending station.
    pub src: MacAddr,
    /// Tag it matched.
    pub tag: Tag,
    /// Message contents.
    pub data: Bytes,
    /// True if it arrived through the unexpected queue (and therefore cost
    /// an extra host copy when claimed).
    pub from_unexpected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_counts() {
        assert_eq!(frames_for(0), 1);
        assert_eq!(frames_for(1), 1);
        assert_eq!(frames_for(MAX_CHUNK), 1);
        assert_eq!(frames_for(MAX_CHUNK + 1), 2);
        assert_eq!(frames_for(10 * MAX_CHUNK), 10);
    }

    #[test]
    fn chunk_ranges_tile_the_message() {
        let len = 3 * MAX_CHUNK + 17;
        let n = frames_for(len);
        assert_eq!(n, 4);
        let mut covered = 0;
        for i in 0..n {
            let (a, b) = chunk_range(len, i);
            assert_eq!(a, covered);
            covered = b;
        }
        assert_eq!(covered, len);
    }

    #[test]
    fn zero_length_message_is_one_empty_frame() {
        let (a, b) = chunk_range(0, 0);
        assert_eq!((a, b), (0, 0));
        let w = EmpWire::Data {
            msg_id: 1,
            tag: Tag(0),
            frame_idx: 0,
            num_frames: 1,
            total_len: 0,
            no_uq: false,
            chunk: Bytes::new(),
        };
        assert_eq!(w.wire_len(), DATA_HEADER);
    }

    #[test]
    fn wire_lengths() {
        let w = EmpWire::Data {
            msg_id: 1,
            tag: Tag(7),
            frame_idx: 0,
            num_frames: 1,
            total_len: 100,
            no_uq: false,
            chunk: Bytes::from(vec![0u8; 100]),
        };
        assert_eq!(w.wire_len(), 120);
        let a = EmpWire::Ack {
            msg_id: 1,
            frames: 1,
        };
        assert_eq!(a.wire_len(), ACK_WIRE);
        // A max chunk exactly fills the MTU.
        let w = EmpWire::Data {
            msg_id: 1,
            tag: Tag(7),
            frame_idx: 0,
            num_frames: 1,
            total_len: MAX_CHUNK as u32,
            no_uq: false,
            chunk: Bytes::from(vec![0u8; MAX_CHUNK]),
        };
        assert_eq!(w.wire_len(), MTU);
    }
}
