//! EMP protocol parameters.

use simnet::SimDuration;
use tigon_nic::NicConfig;

/// Tunables of the EMP protocol and its host interface.
#[derive(Clone, Debug)]
pub struct EmpConfig {
    /// NIC hardware cost constants.
    pub nic: NicConfig,
    /// Frames per NIC-level acknowledgment ("acknowledgments are sent for a
    /// certain window size of frames. In our current implementation, this
    /// was chosen to be four" — paper §2).
    pub ack_window: u32,
    /// Per-NIC cap on released-but-unacknowledged data frames. This is the
    /// reliability window that keeps the sender from racing arbitrarily
    /// far ahead of the receiving NIC's (slower) processing path.
    pub tx_window_frames: u32,
    /// Sender-side retransmission timeout for unacknowledged frames (the
    /// receiver silently drops frames with no matching descriptor).
    pub retransmit_timeout: SimDuration,
    /// Give up on a message after this many retransmission rounds; the
    /// send handle then completes unsuccessfully.
    pub max_retries: u32,
    /// Host cost of building a transmit/receive descriptor in user space.
    pub desc_build: SimDuration,
    /// Firmware cost of inserting/removing a pre-posted descriptor or
    /// adjusting the unexpected queue.
    pub rx_post_cost: SimDuration,
}

impl Default for EmpConfig {
    fn default() -> Self {
        EmpConfig {
            nic: NicConfig::default(),
            ack_window: 4,
            tx_window_frames: 16,
            retransmit_timeout: SimDuration::from_micros(500),
            max_retries: 100,
            desc_build: SimDuration::from_nanos(500),
            rx_post_cost: SimDuration::from_nanos(800),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EmpConfig::default();
        assert_eq!(c.ack_window, 4);
        assert_eq!(c.nic.tag_match_per_descriptor, SimDuration::from_nanos(550));
    }
}
