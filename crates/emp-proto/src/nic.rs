//! The EMP firmware: the protocol state machines that run on the NIC.
//!
//! This is Figure 2 of the paper in executable form. Transmit: a host
//! request (T1) is parsed by the tx CPU (T2-T3 bookkeeping), each frame is
//! DMA-fetched (T5) and sent; a transmission record tracks acknowledged
//! frames, with timeout-driven retransmission. Receive: each arriving frame
//! is classified (R3), tag-matched against the pre-posted descriptor list
//! (R4, at the measured 550 ns per descriptor walked), and DMA'd to the
//! host buffer (R6); cumulative acks go back every `ack_window` frames.
//! Frames that match nothing fall into the unexpected queue if slots are
//! available (checked last, extra host copy on claim), else are dropped for
//! the sender to retransmit.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::emp_trace::{self, EventKind};
use simnet::{
    Completion, EtherType, Frame, FrameSink, MacAddr, Sim, SimAccess, SimAccessExt, SimDuration,
};
use tigon_nic::Tigon;

use crate::config::EmpConfig;
use crate::wire::{chunk_range, frames_for, EmpWire, RecvMsg, Tag};

/// Identifier of a posted receive descriptor.
pub type DescId = u64;

/// Diagnostic view of a live transmit record:
/// `(msg_id, acked, next_to_send, num_frames, retries)`.
pub type TxRecordView = (u64, u32, u32, u32, u32);

/// Observable protocol counters.
#[derive(Clone, Debug, Default)]
pub struct EmpStats {
    /// Messages fully sent and acknowledged.
    pub msgs_sent: u64,
    /// Messages fully received (descriptor or unexpected queue).
    pub msgs_received: u64,
    /// Data frames dropped because nothing matched and no unexpected slot
    /// was free.
    pub frames_dropped: u64,
    /// Frames retransmitted after timeout.
    pub frames_retransmitted: u64,
    /// Messages abandoned after `max_retries`.
    pub sends_failed: u64,
    /// Protocol acks put on the wire.
    pub acks_sent: u64,
    /// Negative acknowledgments put on the wire (busy backpressure and
    /// refusals of `no_uq` messages that matched nothing).
    pub nacks_sent: u64,
    /// Negative acknowledgments received from peers.
    pub nacks_received: u64,
    /// Sends refused by the peer NIC (a `no_uq` message matched no
    /// descriptor there) — a subset of `sends_failed`.
    pub sends_refused: u64,
    /// Messages that completed through the unexpected queue.
    pub unexpected_msgs: u64,
    /// Total descriptors examined by the tag matcher (walk length sum).
    pub descriptors_walked: u64,
    /// Data frames lost to injected receive-descriptor-ring exhaustion
    /// (dropped before classification; retransmission recovers them).
    pub nic_rx_ring_drops: u64,
    /// DMA completions delayed by injected PCI contention.
    pub nic_dma_delays: u64,
}

/// Host-visible side of a send: completes when every frame is acked (or the
/// protocol gives up).
#[derive(Clone)]
pub struct SendState {
    pub(crate) completion: Completion,
    pub(crate) ok: Arc<Mutex<Option<bool>>>,
    /// Set (before `ok`) when the failure was an explicit peer refusal
    /// (a `no_uq` message the peer NIC NACKed), as opposed to silence.
    pub(crate) refused: Arc<Mutex<bool>>,
}

impl SendState {
    fn new() -> Self {
        SendState {
            completion: Completion::new(),
            ok: Arc::new(Mutex::new(None)),
            refused: Arc::new(Mutex::new(false)),
        }
    }
}

/// Host-visible side of a posted receive. `slot` fills with `Some(msg)` on
/// delivery or `None` if the descriptor was explicitly unposted.
#[derive(Clone)]
pub struct RecvState {
    pub(crate) completion: Completion,
    pub(crate) slot: Arc<Mutex<Option<Option<RecvMsg>>>>,
}

impl RecvState {
    pub(crate) fn new() -> Self {
        RecvState {
            completion: Completion::new(),
            slot: Arc::new(Mutex::new(None)),
        }
    }
}

/// The bytes of one outgoing message as handed to the NIC: one contiguous
/// buffer, or a header + payload pair kept as separate segments. The pair
/// form lets the host skip assembling (copying) the payload into a fresh
/// buffer — a real NIC gathers the segments by DMA — so only a frame that
/// straddles the seam pays a frame-sized copy at wire-release time.
#[derive(Clone)]
pub struct TxBuf {
    head: Bytes,
    tail: Bytes,
}

impl TxBuf {
    /// One contiguous buffer.
    pub fn one(data: Bytes) -> Self {
        TxBuf {
            head: data,
            tail: Bytes::new(),
        }
    }

    /// A two-segment message: `head` (a protocol header) followed by
    /// `tail` (the payload), without concatenating them.
    pub fn pair(head: Bytes, tail: Bytes) -> Self {
        TxBuf { head, tail }
    }

    /// Total message length.
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// True when the message carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes `a..b` — a refcounted slice unless the range straddles
    /// the head/tail seam.
    pub fn slice(&self, a: usize, b: usize) -> Bytes {
        let h = self.head.len();
        if b <= h {
            self.head.slice(a..b)
        } else if a >= h {
            self.tail.slice(a - h..b - h)
        } else {
            let mut v = Vec::with_capacity(b - a);
            v.extend_from_slice(&self.head[a..]);
            v.extend_from_slice(&self.tail[..b - h]);
            Bytes::from(v)
        }
    }
}

struct TxRecord {
    dst: MacAddr,
    tag: Tag,
    data: TxBuf,
    /// This message may not park in the receiver's unexpected queue; an
    /// unmatched delivery comes back as a refusal NACK.
    no_uq: bool,
    num_frames: u32,
    /// Sim time (ns) the host posted the send — start of the
    /// per-message latency measured at final ack.
    posted_ns: u64,
    /// Next frame index to release to the wire (rewinds on retransmit).
    next_to_send: u32,
    /// Cumulative frames acknowledged by the receiver.
    acked: u32,
    /// Consecutive timer rounds without ack progress.
    retries: u32,
    /// Whether the perpetual per-message timer is running.
    timer_armed: bool,
    state: SendState,
}

struct RecvDesc {
    id: DescId,
    tag: Tag,
    src_filter: Option<MacAddr>,
    capacity: usize,
    state: RecvState,
}

enum RecvDest {
    /// Matched a pre-posted descriptor.
    Desc(RecvState),
    /// Landed in the unexpected queue.
    Unexpected,
}

struct ActiveRecv {
    tag: Tag,
    num_frames: u32,
    total_len: u32,
    /// Fragments stored so far (any order — the sender may retransmit
    /// from an earlier offset after loss).
    received_count: u32,
    /// Length of the contiguous prefix, the value cumulative acks carry.
    contiguous: u32,
    have: Vec<bool>,
    buf: Vec<u8>,
    dest: RecvDest,
}

impl ActiveRecv {
    /// Store one fragment; returns `(was_duplicate, message_complete)`.
    fn store(&mut self, idx: u32, chunk: &[u8]) -> (bool, bool) {
        if self.have[idx as usize] {
            return (true, false);
        }
        let start = idx as usize * crate::wire::MAX_CHUNK;
        self.buf[start..start + chunk.len()].copy_from_slice(chunk);
        self.have[idx as usize] = true;
        self.received_count += 1;
        while (self.contiguous as usize) < self.have.len() && self.have[self.contiguous as usize] {
            self.contiguous += 1;
        }
        (false, self.contiguous == self.num_frames)
    }
}

struct NicState {
    next_msg_id: u64,
    next_desc_id: DescId,
    tx: HashMap<u64, TxRecord>,
    /// Messages with frames still to release, in FIFO order.
    tx_order: VecDeque<u64>,
    /// Released-but-unacknowledged frames across all messages.
    tx_inflight: u32,
    /// Pre-posted descriptors in post order — the list the tag matcher
    /// walks, 550 ns per entry examined.
    preposted: Vec<RecvDesc>,
    /// In-progress multi-frame receives, keyed by (source, message id).
    active: HashMap<(MacAddr, u64), ActiveRecv>,
    /// Slots available for unexpected messages.
    unexpected_capacity: usize,
    /// Slots consumed: active unexpected receives + unclaimed pool entries.
    unexpected_in_use: usize,
    /// Completed unexpected messages awaiting a claiming descriptor.
    pool: VecDeque<RecvMsg>,
    /// Unexpected messages whose final fragment is classified but whose
    /// DMA to the staging area has not finished: they are in neither
    /// `active` nor `pool`, yet later messages of the same lane must not
    /// overtake them into a descriptor.
    pending_unexpected: HashMap<(MacAddr, Tag), u32>,
    /// Recently completed receives, so duplicates of a message whose
    /// final ack was lost can be re-acknowledged instead of silently
    /// dropped (which would wedge the sender forever).
    recent_done: HashMap<(MacAddr, u64), u32>,
    recent_done_order: VecDeque<(MacAddr, u64)>,
    stats: EmpStats,
    /// Post-to-final-ack latency histogram (`emp.msg_latency_ns`, shared
    /// across all NICs of the sim). `None` until the first send, when the
    /// telemetry registry becomes reachable.
    msg_latency: Option<Arc<emp_trace::telemetry::LogLinHistogram>>,
}

/// Completed-receive memory depth (bounds `recent_done`).
const RECENT_DONE_CAP: usize = 4096;

/// One EMP NIC: the Tigon hardware plus the protocol state it runs.
pub struct EmpNic {
    tigon: Tigon,
    cfg: EmpConfig,
    state: Mutex<NicState>,
    self_ref: Weak<EmpNic>,
}

impl EmpNic {
    /// Build the NIC for station `mac`.
    pub fn new(mac: MacAddr, cfg: EmpConfig) -> Arc<Self> {
        Arc::new_cyclic(|weak| EmpNic {
            tigon: Tigon::new(mac, cfg.nic.clone()),
            cfg,
            state: Mutex::new(NicState {
                next_msg_id: 0,
                next_desc_id: 0,
                tx: HashMap::new(),
                tx_order: VecDeque::new(),
                tx_inflight: 0,
                preposted: Vec::new(),
                active: HashMap::new(),
                unexpected_capacity: 0,
                unexpected_in_use: 0,
                pool: VecDeque::new(),
                pending_unexpected: HashMap::new(),
                recent_done: HashMap::new(),
                recent_done_order: VecDeque::new(),
                stats: EmpStats::default(),
                msg_latency: None,
            }),
            self_ref: weak.clone(),
        })
    }

    /// Station address.
    pub fn mac(&self) -> MacAddr {
        self.tigon.mac()
    }

    /// Protocol configuration.
    pub fn cfg(&self) -> &EmpConfig {
        &self.cfg
    }

    /// The underlying NIC hardware (to attach the link, read CPU stats).
    pub fn tigon(&self) -> &Tigon {
        &self.tigon
    }

    /// Snapshot of the protocol counters (including the hardware-level
    /// injected-fault counts kept by the Tigon).
    pub fn stats(&self) -> EmpStats {
        let mut stats = self.state.lock().stats.clone();
        let (ring_drops, dma_delays) = self.tigon.fault_counts();
        stats.nic_rx_ring_drops = ring_drops;
        stats.nic_dma_delays = dma_delays;
        stats
    }

    /// Pre-posted descriptors currently on the NIC.
    pub fn preposted_len(&self) -> usize {
        self.state.lock().preposted.len()
    }

    /// Diagnostic snapshot of the pre-posted descriptor list:
    /// `(tag, source filter, capacity)` in walk order.
    pub fn debug_preposted(&self) -> Vec<(Tag, Option<MacAddr>, usize)> {
        self.state
            .lock()
            .preposted
            .iter()
            .map(|d| (d.tag, d.src_filter, d.capacity))
            .collect()
    }

    /// Diagnostic snapshot of the unexpected pool: `(tag, src, len)`.
    pub fn debug_pool(&self) -> Vec<(Tag, MacAddr, usize)> {
        self.state
            .lock()
            .pool
            .iter()
            .map(|m| (m.tag, m.src, m.data.len()))
            .collect()
    }

    /// Diagnostic: `(unexpected_in_use, unexpected_capacity)`.
    pub fn debug_unexpected(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.unexpected_in_use, st.unexpected_capacity)
    }

    /// Diagnostic: live transmit records plus the global in-flight count.
    pub fn debug_tx(&self) -> (Vec<TxRecordView>, u32) {
        let st = self.state.lock();
        let mut v: Vec<_> = st
            .tx
            .iter()
            .map(|(id, r)| (*id, r.acked, r.next_to_send, r.num_frames, r.retries))
            .collect();
        v.sort_unstable();
        (v, st.tx_inflight)
    }

    fn arc(&self) -> Arc<EmpNic> {
        self.self_ref.upgrade().expect("EmpNic is always Arc-owned")
    }

    /// First-send telemetry hookup: grab the shared per-message latency
    /// histogram and publish this NIC's queue-occupancy gauges as sampled
    /// series. The testbed builds NICs before any `Sim` exists, so this
    /// runs lazily with the first `SimAccess` we see. No locks are held
    /// across the registry calls.
    fn ensure_telemetry(&self, s: &dyn SimAccess) {
        if self.state.lock().msg_latency.is_some() {
            return;
        }
        let reg = s.telemetry();
        let hist = reg.histogram("emp.msg_latency_ns");
        let mac = self.mac().0;
        for (series, read) in [
            (
                "tx_inflight",
                Box::new(|st: &NicState| st.tx_inflight as i64)
                    as Box<dyn Fn(&NicState) -> i64 + Send>,
            ),
            (
                "preposted",
                Box::new(|st: &NicState| st.preposted.len() as i64),
            ),
            (
                "uq_used",
                Box::new(|st: &NicState| st.unexpected_in_use as i64),
            ),
        ] {
            let weak = self.self_ref.clone();
            reg.register_sampled(&format!("emp.n{mac}.{series}"), move |_| {
                let nic = weak.upgrade()?;
                let st = nic.state.try_lock()?;
                Some(read(&st))
            });
        }
        self.state.lock().msg_latency = Some(hist);
    }

    /// Record a trace event stamped with this NIC's station id. Compiles
    /// to nothing without the `trace` feature.
    fn trace(&self, s: &dyn SimAccess, kind: EventKind, a: u64, b: u64) {
        if emp_trace::ENABLED {
            s.tracer().emit(
                s.now().nanos(),
                self.mac().0,
                emp_trace::NO_CONN,
                kind,
                a,
                b,
            );
        }
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Accept a host send request (T1 has already been paid by the host;
    /// this starts the firmware side). Returns the send's host-visible
    /// state.
    pub fn start_send(
        &self,
        s: &dyn SimAccess,
        dst: MacAddr,
        tag: Tag,
        data: TxBuf,
        no_uq: bool,
    ) -> SendState {
        self.ensure_telemetry(s);
        let state = SendState::new();
        let msg_id = {
            let mut st = self.state.lock();
            let msg_id = st.next_msg_id;
            st.next_msg_id += 1;
            let num_frames = frames_for(data.len());
            st.tx.insert(
                msg_id,
                TxRecord {
                    dst,
                    tag,
                    data,
                    no_uq,
                    num_frames,
                    posted_ns: s.now().nanos(),
                    next_to_send: 0,
                    acked: 0,
                    retries: 0,
                    timer_armed: false,
                    state: state.clone(),
                },
            );
            msg_id
        };
        let me = self.arc();
        let earliest = s.now() + self.cfg.nic.pci_post_latency;
        self.tigon
            .cpu_tx
            .exec_at(s, earliest, self.cfg.nic.tx_request_cost, move |sim| {
                me.state.lock().tx_order.push_back(msg_id);
                me.release_tx(sim);
            });
        state
    }

    /// Release frames to the wire, respecting the per-NIC transmit window:
    /// at most `tx_window_frames` released-but-unacknowledged frames exist
    /// across all messages. Messages release in FIFO order, which keeps the
    /// receiver's processing backlog (and therefore ack lag) bounded — the
    /// reliability window of a NIC-driven protocol.
    fn release_tx(&self, sim: &Sim) {
        let window = self.cfg.tx_window_frames;
        let mut to_schedule = Vec::new();
        {
            let mut st = self.state.lock();
            while st.tx_inflight < window {
                let Some(&msg_id) = st.tx_order.front() else {
                    break;
                };
                // Stagger retransmission rounds: shrink the round size by
                // the retry count (mod 4) so a deterministic protocol
                // cannot phase-lock with a periodic loss pattern whose
                // period divides the round size.
                let stagger = st.tx.get(&msg_id).map_or(0, |r| r.retries % 4);
                let effective = window.saturating_sub(stagger).max(1);
                if st.tx_inflight >= effective {
                    break;
                }
                let budget = effective - st.tx_inflight;
                let Some(rec) = st.tx.get_mut(&msg_id) else {
                    // Abandoned message still queued for release.
                    st.tx_order.pop_front();
                    continue;
                };
                let end = rec.num_frames.min(rec.next_to_send + budget);
                for idx in rec.next_to_send..end {
                    let (a, b) = chunk_range(rec.data.len(), idx);
                    to_schedule.push(Frame {
                        src: self.mac(),
                        dst: rec.dst,
                        ethertype: EtherType::EMP,
                        payload: wire_payload(EmpWire::Data {
                            msg_id,
                            tag: rec.tag,
                            frame_idx: idx,
                            num_frames: rec.num_frames,
                            total_len: rec.data.len() as u32,
                            no_uq: rec.no_uq,
                            chunk: rec.data.slice(a, b),
                        }),
                    });
                }
                let released = end - rec.next_to_send;
                rec.next_to_send = end;
                let fully_released = rec.next_to_send == rec.num_frames;
                let arm = if !rec.timer_armed && rec.next_to_send > rec.acked {
                    rec.timer_armed = true;
                    Some(rec.acked)
                } else {
                    None
                };
                st.tx_inflight += released;
                if let Some(acked_snapshot) = arm {
                    // Arming only schedules an event; safe under the lock.
                    self.arm_retransmit_timer(
                        sim,
                        msg_id,
                        acked_snapshot,
                        self.cfg.retransmit_timeout,
                    );
                }
                if fully_released {
                    st.tx_order.pop_front();
                } else {
                    break; // window exhausted mid-message
                }
            }
        }
        for frame in to_schedule {
            let me = self.arc();
            let wire_len = frame.payload.wire_len();
            let dma = self.cfg.nic.dma_time(wire_len);
            // Injected NIC fault: the frame's DMA fetch may stall behind
            // (simulated) PCI contention.
            let stall = self.tigon.inject_dma_delay();
            if !stall.is_zero() {
                self.trace(sim, EventKind::NicFault, 1, stall.nanos());
            }
            let cost = dma + self.cfg.nic.tx_frame_cost + stall;
            self.tigon.cpu_tx.exec(sim, cost, move |sim| {
                if emp_trace::ENABLED {
                    me.trace(sim, EventKind::DmaCopy, wire_len as u64, dma.nanos());
                    me.trace(sim, EventKind::NicTxWire, wire_len as u64, 0);
                }
                me.tigon.send_frame(sim, frame);
            });
        }
    }

    /// The per-message retransmission timer. Re-arms while the record
    /// lives; on a silent period with no ack progress it rewinds the send
    /// pointer to the acknowledged prefix and releases again, with
    /// exponential backoff on consecutive fruitless rounds.
    fn arm_retransmit_timer(
        &self,
        s: &dyn SimAccess,
        msg_id: u64,
        acked_snapshot: u32,
        timeout: SimDuration,
    ) {
        let me = self.arc();
        s.schedule_after(timeout, move |sim| {
            enum Action {
                Rearm(u32, SimDuration),
                Fail(SendState),
                Retransmit(SimDuration, u32, u32),
            }
            let action = {
                let mut st = me.state.lock();
                let Some(rec) = st.tx.get_mut(&msg_id) else {
                    return; // acked and removed: the common case
                };
                if rec.acked > acked_snapshot {
                    // Progress since the last arming: not a loss, reset
                    // the backoff and keep watching.
                    rec.retries = 0;
                    Action::Rearm(rec.acked, me.cfg.retransmit_timeout)
                } else {
                    rec.retries += 1;
                    if rec.retries > me.cfg.max_retries {
                        let rec = st.tx.remove(&msg_id).expect("present above");
                        st.stats.sends_failed += 1;
                        // The abandoned message's outstanding frames leave
                        // the in-flight window with it.
                        st.tx_inflight -= rec.next_to_send - rec.acked;
                        // Drop any queued release entry for this message.
                        st.tx_order.retain(|&id| id != msg_id);
                        Action::Fail(rec.state)
                    } else {
                        // Rewind to the acked prefix and release again.
                        let rewound = rec.next_to_send - rec.acked;
                        rec.next_to_send = rec.acked;
                        let retries = rec.retries;
                        let acked = rec.acked;
                        st.tx_inflight -= rewound;
                        st.stats.frames_retransmitted += u64::from(rewound);
                        if !st.tx_order.contains(&msg_id) {
                            st.tx_order.push_front(msg_id);
                        }
                        let backoff = me.cfg.retransmit_timeout * 2u64.pow(retries.min(5));
                        Action::Retransmit(backoff, acked, retries)
                    }
                }
            };
            match action {
                Action::Rearm(acked, timeout) => {
                    me.arm_retransmit_timer(sim, msg_id, acked, timeout)
                }
                Action::Fail(state) => {
                    *state.ok.lock() = Some(false);
                    state.completion.complete(sim);
                }
                Action::Retransmit(backoff, acked, retries) => {
                    me.trace(sim, EventKind::Retransmit, u64::from(retries), msg_id);
                    me.arm_retransmit_timer(sim, msg_id, acked, backoff);
                    me.release_tx(sim);
                }
            }
        });
    }

    fn process_ack(&self, sim: &Sim, msg_id: u64, frames: u32) {
        let finished = {
            let mut st = self.state.lock();
            let Some(rec) = st.tx.get_mut(&msg_id) else {
                return; // duplicate ack after completion
            };
            // Invariant: this message holds `next_to_send - acked` of the
            // global in-flight window. An ack can outrun `next_to_send`
            // when it belongs to frames sent before a retransmission
            // rewind — then those frames need no resend, so the send
            // pointer jumps forward with it.
            let old_outstanding = rec.next_to_send - rec.acked;
            rec.acked = rec.acked.max(frames);
            rec.next_to_send = rec.next_to_send.max(rec.acked);
            let freed = old_outstanding - (rec.next_to_send - rec.acked);
            st.tx_inflight -= freed;
            let rec = st.tx.get_mut(&msg_id).expect("present above");
            if rec.acked >= rec.num_frames {
                let rec = st.tx.remove(&msg_id).expect("present above");
                st.stats.msgs_sent += 1;
                st.tx_order.retain(|&id| id != msg_id);
                if let Some(h) = &st.msg_latency {
                    h.record(sim.now().nanos().saturating_sub(rec.posted_ns));
                }
                Some(rec.state)
            } else {
                None
            }
        };
        if let Some(state) = finished {
            // The completion is host-visible only after the status DMA.
            let post = self.cfg.nic.completion_post;
            s_complete_send(sim, state, post);
        }
        self.release_tx(sim);
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Host posts a receive descriptor (R1/R2 already paid host-side).
    /// The descriptor becomes matchable once the rx CPU inserts it — and
    /// the *insert* first scans the unexpected queue, serialized with
    /// frame processing on the rx CPU, so a message that raced ahead of
    /// the descriptor is claimed in order rather than stranded in the
    /// pool. (The host pays the staging copy when it collects the
    /// message; see `EmpEndpoint::wait_recv`.)
    pub fn post_descriptor(
        &self,
        s: &dyn SimAccess,
        tag: Tag,
        src_filter: Option<MacAddr>,
        capacity: usize,
    ) -> (DescId, RecvState) {
        self.post_descriptors(s, vec![(tag, src_filter, capacity)])
            .pop()
            .expect("one descriptor posted")
    }

    /// Post a batch of `(tag, src filter, capacity)` descriptors behind a
    /// single doorbell: the rx CPU runs one insert task costing
    /// `rx_post_cost` per descriptor, inserts them in order, and scans the
    /// unexpected queue once — the PCI post latency and the pool walk are
    /// amortized over the batch. A batch of one costs exactly what
    /// [`EmpNic::post_descriptor`] costs.
    pub fn post_descriptors(
        &self,
        s: &dyn SimAccess,
        specs: Vec<(Tag, Option<MacAddr>, usize)>,
    ) -> Vec<(DescId, RecvState)> {
        if specs.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(specs.len());
        let mut descs = Vec::with_capacity(specs.len());
        {
            let mut st = self.state.lock();
            for (tag, src_filter, capacity) in specs {
                let id = st.next_desc_id;
                st.next_desc_id += 1;
                let state = RecvState::new();
                descs.push(RecvDesc {
                    id,
                    tag,
                    src_filter,
                    capacity,
                    state: state.clone(),
                });
                out.push((id, state));
            }
        }
        let me = self.arc();
        let earliest = s.now() + self.cfg.nic.pci_post_latency;
        let cost = self.cfg.rx_post_cost * descs.len() as u64;
        let batch = descs.len() as u64;
        self.tigon.cpu_rx.exec_at(s, earliest, cost, move |sim| {
            if batch > 1 {
                me.trace(sim, EventKind::DescPostBatch, batch, 0);
            }
            for d in descs {
                me.trace(sim, EventKind::DescPost, d.id, d.capacity as u64);
                me.state.lock().preposted.push(d);
            }
            me.drain_pool_matches(sim);
        });
        out
    }

    /// Host explicitly unposts a descriptor (§4.2: "every descriptor is
    /// required to be either used for a message or explicitly unposted").
    /// The descriptor's recv state completes with `None`.
    pub fn unpost_descriptor(&self, s: &dyn SimAccess, id: DescId) {
        let me = self.arc();
        let earliest = s.now() + self.cfg.nic.pci_post_latency;
        self.tigon
            .cpu_rx
            .exec_at(s, earliest, self.cfg.rx_post_cost, move |sim| {
                let state = {
                    let mut st = me.state.lock();
                    let pos = st.preposted.iter().position(|d| d.id == id);
                    pos.map(|p| st.preposted.remove(p).state)
                };
                if let Some(state) = state {
                    me.trace(sim, EventKind::DescUnpost, id, 0);
                    *state.slot.lock() = Some(None);
                    state.completion.complete(sim);
                }
            });
    }

    /// Resize the unexpected queue (number of in-flight-or-unclaimed
    /// unexpected messages the NIC will hold).
    pub fn set_unexpected_slots(&self, s: &dyn SimAccess, slots: usize) {
        let me = self.arc();
        let earliest = s.now() + self.cfg.nic.pci_post_latency;
        self.tigon
            .cpu_rx
            .exec_at(s, earliest, self.cfg.rx_post_cost, move |_| {
                me.state.lock().unexpected_capacity = slots;
            });
    }

    /// Host-side claim of a pooled unexpected message matching `(tag, src)`.
    /// Returns the message; the caller charges the extra copy cost.
    pub fn claim_unexpected(&self, tag: Tag, src_filter: Option<MacAddr>) -> Option<RecvMsg> {
        let mut st = self.state.lock();
        let pos = st
            .pool
            .iter()
            .position(|m| m.tag == tag && src_filter.is_none_or(|s| s == m.src))?;
        let msg = st.pool.remove(pos).expect("position just found");
        st.unexpected_in_use -= 1;
        Some(msg)
    }

    /// Classification + matching, at the completion of the first rx CPU
    /// phase. Returns the work for the second phase.
    fn rx_match(&self, sim: &Sim, frame: &Frame, wire: &EmpWire) -> RxPhase2 {
        let EmpWire::Data {
            msg_id,
            tag,
            frame_idx,
            num_frames,
            total_len,
            no_uq,
            chunk,
        } = wire
        else {
            unreachable!("rx_match is only called for data frames");
        };
        let src = frame.src;
        let mut st = self.state.lock();
        let key = (src, *msg_id);

        // A duplicate of a message that already completed (its final ack
        // was lost): re-acknowledge the full count so the sender finishes.
        if let Some(&frames) = st.recent_done.get(&key) {
            return RxPhase2 {
                walked: 0,
                dma_bytes: 0,
                ack: Some((src, *msg_id, frames)),
                nack: None,
                deliver: None,
            };
        }

        // Fragments of an already-bound message skip the walk (the match
        // is recorded in the receive data structures, R4). Fragments may
        // arrive out of order after loss; each lands at its own offset.
        if let Some(active) = st.active.get_mut(&key) {
            let (dup, done) = active.store(*frame_idx, chunk);
            if dup {
                // Retransmission overlap: nothing stored; re-ack the
                // contiguous prefix so the sender advances.
                let contiguous = active.contiguous;
                return RxPhase2 {
                    walked: 0,
                    dma_bytes: 0,
                    ack: Some((src, *msg_id, contiguous)),
                    nack: None,
                    deliver: None,
                };
            }
            let at_window = active.received_count % self.cfg.ack_window == 0;
            let ack = (done || at_window).then_some((src, *msg_id, active.contiguous));
            if done {
                let active = st.active.remove(&key).expect("present above");
                return self.finish_recv(&mut st, key, *tag, active, chunk.len(), ack);
            }
            return RxPhase2 {
                walked: 0,
                dma_bytes: chunk.len(),
                ack,
                nack: None,
                deliver: None,
            };
        }

        // First fragment seen for this message (not necessarily index 0 —
        // every fragment carries the tag and totals): walk the pre-posted
        // list (R4). A descriptor matches on tag, optional source filter,
        // and sufficient capacity.
        //
        // Lane FIFO: if an *earlier* message of the same (tag, source)
        // lane is still in the unexpected queue (parked or mid-DMA), this
        // message must queue behind it rather than overtake it into a
        // descriptor — otherwise a stream's bytes reorder whenever its
        // first messages raced ahead of the descriptors.
        let lane_blocked = st.pool.iter().any(|m| m.tag == *tag && m.src == src)
            || st
                .pending_unexpected
                .get(&(src, *tag))
                .is_some_and(|&n| n > 0)
            || st.active.iter().any(|(k, a)| {
                k.0 == src && a.tag == *tag && matches!(a.dest, RecvDest::Unexpected)
            });
        let mut walked = 0usize;
        let mut found = None;
        if !lane_blocked {
            for (i, d) in st.preposted.iter().enumerate() {
                walked = i + 1;
                if d.tag == *tag
                    && d.src_filter.is_none_or(|f| f == src)
                    && d.capacity >= *total_len as usize
                {
                    found = Some(i);
                    break;
                }
            }
        } else {
            // The matcher still walks the whole list before falling back.
            walked = st.preposted.len();
        }
        st.stats.descriptors_walked += walked as u64;

        let dest = match found {
            Some(i) => {
                let desc = st.preposted.remove(i);
                self.trace(sim, EventKind::DescConsume, desc.id, u64::from(*total_len));
                RecvDest::Desc(desc.state)
            }
            None if *no_uq => {
                // A no-park message matched nothing: refuse it outright.
                // This is the admission-control path — a connection
                // request hitting a full backlog (or no listener) fails
                // deterministically at the requester instead of camping
                // in the unexpected queue.
                st.stats.frames_dropped += 1;
                if emp_trace::ENABLED {
                    self.trace(sim, EventKind::FrameDrop, chunk.len() as u64, 0);
                }
                return RxPhase2 {
                    walked,
                    dma_bytes: 0,
                    ack: None,
                    nack: Some((src, *msg_id, false)),
                    deliver: None,
                };
            }
            None => {
                // Unexpected queue: checked after the whole pre-posted list.
                if st.unexpected_in_use < st.unexpected_capacity {
                    st.unexpected_in_use += 1;
                    st.stats.descriptors_walked += 1;
                    self.trace(sim, EventKind::UqHit, u64::from(*total_len), 0);
                    RecvDest::Unexpected
                } else {
                    // Transient exhaustion: the frame is lost, but the
                    // sender hears an explicit busy NACK (backpressure)
                    // instead of waiting out its retransmission timer.
                    st.stats.frames_dropped += 1;
                    if emp_trace::ENABLED {
                        self.trace(sim, EventKind::UqOverflow, u64::from(*total_len), 0);
                        self.trace(sim, EventKind::FrameDrop, chunk.len() as u64, 0);
                    }
                    return RxPhase2 {
                        walked,
                        dma_bytes: 0,
                        ack: None,
                        nack: Some((src, *msg_id, true)),
                        deliver: None,
                    };
                }
            }
        };

        let mut active = ActiveRecv {
            tag: *tag,
            num_frames: *num_frames,
            total_len: *total_len,
            received_count: 0,
            contiguous: 0,
            have: vec![false; *num_frames as usize],
            buf: vec![0u8; *total_len as usize],
            dest,
        };
        let (_dup, done) = active.store(*frame_idx, chunk);
        let at_window = active.received_count.is_multiple_of(self.cfg.ack_window);
        let ack = (done || at_window).then_some((src, *msg_id, active.contiguous));
        if done {
            return self.finish_recv(&mut st, key, *tag, active, chunk.len(), ack);
        }
        st.active.insert(key, active);
        RxPhase2 {
            walked,
            dma_bytes: chunk.len(),
            ack,
            nack: None,
            deliver: None,
        }
    }

    fn finish_recv(
        &self,
        st: &mut NicState,
        key: (MacAddr, u64),
        tag: Tag,
        active: ActiveRecv,
        last_chunk: usize,
        ack: Option<(MacAddr, u64, u32)>,
    ) -> RxPhase2 {
        debug_assert_eq!(active.buf.len(), active.total_len as usize);
        st.stats.msgs_received += 1;
        // Remember the completion so late duplicates are re-acked.
        st.recent_done.insert(key, active.num_frames);
        st.recent_done_order.push_back(key);
        if st.recent_done_order.len() > RECENT_DONE_CAP {
            let old = st.recent_done_order.pop_front().expect("nonempty");
            st.recent_done.remove(&old);
        }
        let (src, _) = key;
        let walked = 0; // walk already accounted when the message bound
        let data = Bytes::from(active.buf);
        let deliver = match active.dest {
            RecvDest::Desc(state) => Deliver::Host {
                state,
                msg: RecvMsg {
                    src,
                    tag,
                    data,
                    from_unexpected: false,
                },
            },
            RecvDest::Unexpected => {
                st.stats.unexpected_msgs += 1;
                *st.pending_unexpected.entry((src, tag)).or_insert(0) += 1;
                Deliver::Pool(RecvMsg {
                    src,
                    tag,
                    data,
                    from_unexpected: true,
                })
            }
        };
        RxPhase2 {
            walked,
            dma_bytes: last_chunk,
            ack,
            nack: None,
            deliver: Some(deliver),
        }
    }

    /// Finalize a message that went through the unexpected path: park it
    /// in the pool, then run the matcher — a descriptor posted while the
    /// message was in flight through the DMA engine takes it.
    fn finalize_unexpected(&self, sim: &Sim, msg: RecvMsg) {
        {
            let mut st = self.state.lock();
            let key = (msg.src, msg.tag);
            if let Some(n) = st.pending_unexpected.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    st.pending_unexpected.remove(&key);
                }
            }
            st.pool.push_back(msg);
        }
        self.drain_pool_matches(sim);
    }

    /// Match pooled unexpected messages against pre-posted descriptors.
    /// Runs on descriptor insertion and on unexpected-message completion,
    /// always serialized on the rx CPU; messages are considered in pool
    /// (arrival) order and descriptors in post order, so each traffic lane
    /// `(tag, src)` completes its descriptors in order — as long as a
    /// lane's descriptor capacities are uniform, which the substrate
    /// guarantees per connection.
    fn drain_pool_matches(&self, sim: &Sim) {
        loop {
            let delivered = {
                let mut st = self.state.lock();
                let mut found = None;
                'outer: for (mi, m) in st.pool.iter().enumerate() {
                    for (di, d) in st.preposted.iter().enumerate() {
                        if d.tag == m.tag
                            && d.src_filter.is_none_or(|f| f == m.src)
                            && d.capacity >= m.data.len()
                        {
                            found = Some((mi, di));
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some((mi, di)) => {
                        let msg = st.pool.remove(mi).expect("index just found");
                        let desc = st.preposted.remove(di);
                        st.unexpected_in_use -= 1;
                        self.trace(sim, EventKind::DescConsume, desc.id, msg.data.len() as u64);
                        Some((desc.state, msg))
                    }
                    None => None,
                }
            };
            let Some((state, msg)) = delivered else { break };
            let me = self.arc();
            let post = self.cfg.nic.completion_post;
            sim.schedule_after(post, move |sim| {
                me.trace(sim, EventKind::RecvDeliver, msg.data.len() as u64, 0);
                *state.slot.lock() = Some(Some(msg));
                state.completion.complete(sim);
            });
        }
    }

    fn send_ack(&self, sim: &Sim, dst: MacAddr, msg_id: u64, frames: u32) {
        self.state.lock().stats.acks_sent += 1;
        let me = self.arc();
        let frame = Frame {
            src: self.mac(),
            dst,
            ethertype: EtherType::EMP,
            payload: wire_payload(EmpWire::Ack { msg_id, frames }),
        };
        self.tigon
            .cpu_tx
            .exec(sim, self.cfg.nic.ack_cost, move |sim| {
                me.tigon.send_frame(sim, frame);
            });
    }

    /// Put a negative acknowledgment on the wire (same tx-CPU cost as an
    /// ack — it is the same kind of firmware-generated control frame).
    fn send_nack(&self, s: &dyn SimAccess, dst: MacAddr, msg_id: u64, busy: bool) {
        self.state.lock().stats.nacks_sent += 1;
        let me = self.arc();
        let frame = Frame {
            src: self.mac(),
            dst,
            ethertype: EtherType::EMP,
            payload: wire_payload(EmpWire::Nack { msg_id, busy }),
        };
        self.tigon
            .cpu_tx
            .exec(s, self.cfg.nic.ack_cost, move |sim| {
                me.tigon.send_frame(sim, frame);
            });
    }

    /// React to a peer's negative acknowledgment. `busy` is transient
    /// exhaustion: rewind the unacknowledged frames and release again
    /// after a short pause (explicit backpressure, cheaper than waiting
    /// out the retransmission timer). `!busy` is a refusal: the send
    /// fails immediately with the `refused` flag set, which the host
    /// maps to `ConnectionRefused`.
    fn process_nack(&self, sim: &Sim, msg_id: u64, busy: bool) {
        if busy {
            {
                let mut st = self.state.lock();
                st.stats.nacks_received += 1;
                let Some(rec) = st.tx.get_mut(&msg_id) else {
                    return; // already completed or abandoned
                };
                let rewound = rec.next_to_send - rec.acked;
                if rewound == 0 {
                    return; // nothing outstanding (already rewound)
                }
                rec.next_to_send = rec.acked;
                st.tx_inflight -= rewound;
                st.stats.frames_retransmitted += u64::from(rewound);
                if !st.tx_order.contains(&msg_id) {
                    st.tx_order.push_front(msg_id);
                }
            }
            let me = self.arc();
            let pause = SimDuration::from_nanos(self.cfg.retransmit_timeout.nanos() / 4);
            sim.schedule_after(pause, move |sim| me.release_tx(sim));
        } else {
            let state = {
                let mut st = self.state.lock();
                st.stats.nacks_received += 1;
                let Some(rec) = st.tx.remove(&msg_id) else {
                    return; // duplicate refusal
                };
                st.tx_inflight -= rec.next_to_send - rec.acked;
                st.tx_order.retain(|&id| id != msg_id);
                st.stats.sends_failed += 1;
                st.stats.sends_refused += 1;
                rec.state
            };
            *state.refused.lock() = true;
            *state.ok.lock() = Some(false);
            state.completion.complete(sim);
            self.release_tx(sim);
        }
    }
}

/// Work computed by the rx matching phase, executed as the second rx task.
struct RxPhase2 {
    walked: usize,
    dma_bytes: usize,
    ack: Option<(MacAddr, u64, u32)>,
    /// A negative acknowledgment to put on the wire: `(dst, msg_id, busy)`.
    nack: Option<(MacAddr, u64, bool)>,
    deliver: Option<Deliver>,
}

enum Deliver {
    Host { state: RecvState, msg: RecvMsg },
    Pool(RecvMsg),
}

fn wire_payload(wire: EmpWire) -> simnet::Payload {
    let len = wire.wire_len();
    simnet::Payload::new(wire, len)
}

fn s_complete_send(sim: &Sim, state: SendState, post: SimDuration) {
    sim.schedule_after(post, move |sim| {
        *state.ok.lock() = Some(true);
        state.completion.complete(sim);
    });
}

impl FrameSink for EmpNic {
    fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
        if frame.ethertype != EtherType::EMP || frame.dst != self.mac() {
            return; // flooded foreign traffic; MAC filter drops it
        }
        let Some(wire) = frame.payload.downcast::<EmpWire>().cloned() else {
            return;
        };
        match wire {
            EmpWire::Ack { msg_id, frames } => {
                let me = self.arc();
                self.tigon
                    .cpu_rx
                    .exec(s, self.cfg.nic.ack_cost, move |sim| {
                        me.process_ack(sim, msg_id, frames);
                    });
            }
            EmpWire::Nack { msg_id, busy } => {
                let me = self.arc();
                self.tigon
                    .cpu_rx
                    .exec(s, self.cfg.nic.ack_cost, move |sim| {
                        me.process_nack(sim, msg_id, busy);
                    });
            }
            EmpWire::Data { msg_id, .. } => {
                // Injected NIC fault: the receive-descriptor ring is
                // exhausted, so the frame has nowhere to land and is lost
                // before the firmware even classifies it. The loss is no
                // longer silent: the hardware path answers with a busy
                // NACK so the sender rewinds under explicit backpressure
                // instead of waiting out its retransmission timer.
                if self.tigon.inject_rx_ring_exhausted() {
                    self.trace(s, EventKind::NicFault, 0, frame.payload.wire_len() as u64);
                    self.send_nack(s, frame.src, msg_id, true);
                    return;
                }
                self.trace(s, EventKind::NicRxStart, frame.payload.wire_len() as u64, 0);
                let me = self.arc();
                // Phase 1: classification + bookkeeping, fixed cost.
                self.tigon
                    .cpu_rx
                    .exec(s, self.cfg.nic.rx_frame_cost, move |sim| {
                        let phase2 = me.rx_match(sim, &frame, &wire);
                        let cfg = &me.cfg.nic;
                        let dma = cfg.dma_time(phase2.dma_bytes);
                        let mut cost = cfg.tag_match_time(phase2.walked) + dma;
                        if phase2.dma_bytes > 0 {
                            // Injected NIC fault: this DMA completion
                            // stalls behind (simulated) PCI contention.
                            let stall = me.tigon.inject_dma_delay();
                            if !stall.is_zero() {
                                me.trace(sim, EventKind::NicFault, 1, stall.nanos());
                                cost += stall;
                            }
                        }
                        if matches!(phase2.deliver, Some(Deliver::Host { .. })) {
                            cost += cfg.completion_post;
                        }
                        // Phase 2: tag-match walk + DMA to host (+ status
                        // post), still serial on the rx CPU — this serial
                        // chain is EMP's large-message bottleneck.
                        let me2 = Arc::clone(&me);
                        me.tigon.cpu_rx.exec(sim, cost, move |sim| {
                            if emp_trace::ENABLED && phase2.dma_bytes > 0 {
                                me2.trace(
                                    sim,
                                    EventKind::DmaCopy,
                                    phase2.dma_bytes as u64,
                                    dma.nanos(),
                                );
                            }
                            if let Some((dst, msg_id, frames)) = phase2.ack {
                                me2.send_ack(sim, dst, msg_id, frames);
                            }
                            if let Some((dst, msg_id, busy)) = phase2.nack {
                                me2.send_nack(sim, dst, msg_id, busy);
                            }
                            match phase2.deliver {
                                Some(Deliver::Host { state, msg }) => {
                                    me2.trace(
                                        sim,
                                        EventKind::RecvDeliver,
                                        msg.data.len() as u64,
                                        0,
                                    );
                                    *state.slot.lock() = Some(Some(msg));
                                    state.completion.complete(sim);
                                }
                                Some(Deliver::Pool(msg)) => {
                                    me2.finalize_unexpected(sim, msg);
                                }
                                None => {}
                            }
                        });
                    });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(frames: u32, len: u32) -> ActiveRecv {
        ActiveRecv {
            tag: Tag(1),
            num_frames: frames,
            total_len: len,
            received_count: 0,
            contiguous: 0,
            have: vec![false; frames as usize],
            buf: vec![0u8; len as usize],
            dest: RecvDest::Unexpected,
        }
    }

    #[test]
    fn txbuf_slices_match_the_concatenation() {
        let head = Bytes::from_static(b"0123456789AB");
        let tail = Bytes::from(vec![7u8; 4000]);
        let mut whole = head.to_vec();
        whole.extend_from_slice(&tail);
        let buf = TxBuf::pair(head, tail);
        assert_eq!(buf.len(), whole.len());
        for (a, b) in [(0, 5), (0, 12), (12, 100), (5, 30), (0, 4012), (4000, 4012)] {
            assert_eq!(&buf.slice(a, b)[..], &whole[a..b], "range {a}..{b}");
        }
        let one = TxBuf::one(Bytes::from(whole.clone()));
        assert_eq!(&one.slice(3, 17)[..], &whole[3..17]);
        assert!(TxBuf::one(Bytes::new()).is_empty());
    }

    #[test]
    fn in_order_fragments_complete() {
        let len = (2 * crate::wire::MAX_CHUNK + 100) as u32;
        let mut a = active(3, len);
        let chunk0 = vec![1u8; crate::wire::MAX_CHUNK];
        let chunk1 = vec![2u8; crate::wire::MAX_CHUNK];
        let chunk2 = vec![3u8; 100];
        assert_eq!(a.store(0, &chunk0), (false, false));
        assert_eq!(a.contiguous, 1);
        assert_eq!(a.store(1, &chunk1), (false, false));
        assert_eq!(a.store(2, &chunk2), (false, true));
        assert_eq!(a.received_count, 3);
        assert!(a.buf[..crate::wire::MAX_CHUNK].iter().all(|&b| b == 1));
        assert!(a.buf[len as usize - 100..].iter().all(|&b| b == 3));
    }

    #[test]
    fn out_of_order_fragments_track_the_contiguous_prefix() {
        let len = (2 * crate::wire::MAX_CHUNK + 50) as u32;
        let mut a = active(3, len);
        let full = vec![9u8; crate::wire::MAX_CHUNK];
        let tail = vec![7u8; 50];
        // Arrive 2, 0, 1 (a retransmission pattern).
        assert_eq!(a.store(2, &tail), (false, false));
        assert_eq!(a.contiguous, 0, "gap at 0 holds the prefix");
        assert_eq!(a.store(0, &full), (false, false));
        assert_eq!(a.contiguous, 1);
        assert_eq!(a.store(1, &full), (false, true));
        assert_eq!(a.contiguous, 3, "prefix jumps over the stored tail");
    }

    #[test]
    fn duplicates_are_detected_and_store_nothing() {
        let mut a = active(2, (crate::wire::MAX_CHUNK + 10) as u32);
        let c = vec![5u8; crate::wire::MAX_CHUNK];
        assert_eq!(a.store(0, &c), (false, false));
        assert_eq!(a.store(0, &c), (true, false), "duplicate flagged");
        assert_eq!(a.received_count, 1);
    }
}
