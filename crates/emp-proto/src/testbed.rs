//! Testbed construction: an EMP cluster wired through one switch.
//!
//! Mirrors the paper's experimental setup (§7): hosts with Alteon NICs
//! hanging off a single Gigabit store-and-forward switch.

use std::sync::Arc;

use hostsim::Host;
use simnet::{FrameSink, MacAddr, Switch, SwitchConfig};

use crate::config::EmpConfig;
use crate::endpoint::EmpEndpoint;
use crate::nic::EmpNic;

/// One node of the cluster: a host and its EMP NIC.
pub struct EmpNode {
    /// The machine.
    pub host: Host,
    /// Its NIC (already cabled to the switch).
    pub nic: Arc<EmpNic>,
}

impl EmpNode {
    /// An endpoint for a process running on this node.
    pub fn endpoint(&self) -> EmpEndpoint {
        EmpEndpoint::new(self.host.clone(), Arc::clone(&self.nic))
    }

    /// Station address.
    pub fn addr(&self) -> MacAddr {
        self.nic.mac()
    }
}

/// A cluster of EMP nodes on one switch.
pub struct EmpCluster {
    /// The switch in the middle.
    pub switch: Switch,
    /// The nodes, addressed `MacAddr(0..n)`.
    pub nodes: Vec<EmpNode>,
}

/// Build `n` nodes attached to a fresh switch. Station `i` gets address
/// `MacAddr(i)` and is statically registered with the switch (no flooding
/// in the measurements).
pub fn build_cluster(n: usize, emp_cfg: EmpConfig, switch_cfg: SwitchConfig) -> EmpCluster {
    let switch = Switch::new(switch_cfg);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let mac = MacAddr(i as u16);
        let host = Host::new(mac);
        let nic = EmpNic::new(mac, emp_cfg.clone());
        let sink: Arc<dyn FrameSink> = Arc::clone(&nic) as Arc<dyn FrameSink>;
        nic.tigon().attach_link(switch.attach(&sink));
        switch.register_mac(mac, i);
        nodes.push(EmpNode { host, nic });
    }
    EmpCluster { switch, nodes }
}
