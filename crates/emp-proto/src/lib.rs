//! # emp-proto — Ethernet Message Passing
//!
//! A from-scratch implementation of EMP, the "zero-copy, OS-bypass,
//! NIC-level messaging system for Gigabit Ethernet" the paper's sockets
//! substrate is built on (Shivam, Wyckoff, Panda — SC'01; summarized in §2
//! of the reproduced paper). The protocol runs as firmware on the simulated
//! Tigon2 NIC:
//!
//! * [`wire`] — frame formats: data fragments with 16-bit tags, cumulative
//!   NIC-level acks;
//! * [`nic`] — the firmware: descriptor tag matching (550 ns per entry
//!   walked), transmission records, window-of-4 acknowledgments, timeout
//!   retransmission, the unexpected queue;
//! * [`endpoint`] — the host API: `post_send`/`post_recv`/`wait`, with
//!   pin+translate syscall accounting and a translation cache;
//! * [`testbed`] — clusters of EMP nodes on one switch.

#![warn(missing_docs)]

pub mod config;
pub mod endpoint;
pub mod nic;
pub mod testbed;
pub mod wire;

pub use config::EmpConfig;
pub use endpoint::{EmpEndpoint, RecvHandle, RecvPoll, SendHandle};
pub use nic::{DescId, EmpNic, EmpStats, TxBuf};
pub use testbed::{build_cluster, EmpCluster, EmpNode};
pub use wire::{RecvMsg, Tag, MAX_CHUNK};
