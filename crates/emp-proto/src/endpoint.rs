//! The host-side EMP API.
//!
//! What a user-space program (here: the sockets substrate) sees: post a
//! send, post a receive descriptor, wait for completions. Every call
//! charges realistic host costs — descriptor construction, the combined
//! pin-and-translate system call (cached after first touch), the PCI
//! doorbell write — before the firmware takes over. This is the OS-bypass
//! path: note the *absence* of per-operation kernel costs once buffers are
//! registered.

use std::sync::Arc;

use bytes::Bytes;
use hostsim::{Host, VirtRange};
use simnet::emp_trace::{self, EventKind};
use simnet::{MacAddr, ProcessCtx, SimAccess, SimResult};

use crate::nic::{DescId, EmpNic, RecvState, SendState, TxBuf};
use crate::wire::{RecvMsg, Tag};

/// Handle to an in-flight send.
#[derive(Clone)]
pub struct SendHandle {
    state: SendState,
}

impl SendHandle {
    /// True once the send completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.state.completion.is_done()
    }

    /// `Some(acked)` once complete; `None` while in flight.
    pub fn status(&self) -> Option<bool> {
        *self.state.ok.lock()
    }

    /// True when the send failed because the peer NIC *refused* it (a
    /// `no_uq` message that matched no descriptor), as opposed to failing
    /// after silence. Meaningful once [`SendHandle::status`] is
    /// `Some(false)`.
    pub fn refused(&self) -> bool {
        *self.state.refused.lock()
    }

    /// The completion to block on.
    pub fn completion(&self) -> &simnet::Completion {
        &self.state.completion
    }
}

/// Handle to a posted receive descriptor.
#[derive(Clone)]
pub struct RecvHandle {
    id: DescId,
    state: RecvState,
}

impl RecvHandle {
    /// The NIC descriptor id (for explicit unposting).
    pub fn id(&self) -> DescId {
        self.id
    }

    /// True once a message landed or the descriptor was unposted.
    pub fn is_done(&self) -> bool {
        self.state.completion.is_done()
    }

    /// The completion to block on (e.g. with [`simnet::wait_any`]).
    pub fn completion(&self) -> &simnet::Completion {
        &self.state.completion
    }
}

/// Result of polling a receive without blocking.
#[derive(Clone, Debug)]
pub enum RecvPoll {
    /// Nothing has landed yet.
    Pending,
    /// The descriptor was explicitly unposted.
    Cancelled,
    /// A message arrived.
    Ready(RecvMsg),
}

/// A host process's interface to its EMP NIC.
#[derive(Clone)]
pub struct EmpEndpoint {
    host: Host,
    nic: Arc<EmpNic>,
}

impl EmpEndpoint {
    /// Bind `host`'s process to its NIC.
    pub fn new(host: Host, nic: Arc<EmpNic>) -> Self {
        EmpEndpoint { host, nic }
    }

    /// This station's address (the EMP source index).
    pub fn addr(&self) -> MacAddr {
        self.nic.mac()
    }

    /// The host this endpoint runs on.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The NIC behind this endpoint (stats, direct firmware access).
    pub fn nic(&self) -> &Arc<EmpNic> {
        &self.nic
    }

    /// Record a trace event stamped with this station's id. Compiles to
    /// nothing without the `trace` feature.
    fn trace(&self, ctx: &ProcessCtx, kind: EventKind, a: u64, b: u64) {
        if emp_trace::ENABLED {
            ctx.tracer().emit(
                ctx.now().nanos(),
                self.nic.mac().0,
                emp_trace::NO_CONN,
                kind,
                a,
                b,
            );
        }
    }

    /// Post a message send from the buffer `buf` (whose registration state
    /// determines whether the pin syscall is paid). Returns immediately
    /// after the doorbell; use [`EmpEndpoint::wait_send`] to block until
    /// the NIC has every frame acknowledged.
    pub fn post_send(
        &self,
        ctx: &ProcessCtx,
        dst: MacAddr,
        tag: Tag,
        data: Bytes,
        buf: VirtRange,
    ) -> SimResult<SendHandle> {
        self.post_send_buf(ctx, dst, tag, TxBuf::one(data), buf, false)
    }

    /// [`EmpEndpoint::post_send`], but the message is flagged `no_uq`: it
    /// must match a pre-posted descriptor at the receiver, and an
    /// unmatched delivery comes back as an explicit refusal (the handle
    /// completes unacknowledged with [`SendHandle::refused`] set) instead
    /// of parking in the unexpected queue or timing out in silence. The
    /// admission-control send — connection requests use it.
    pub fn post_send_refusable(
        &self,
        ctx: &ProcessCtx,
        dst: MacAddr,
        tag: Tag,
        data: Bytes,
        buf: VirtRange,
    ) -> SimResult<SendHandle> {
        self.post_send_buf(ctx, dst, tag, TxBuf::one(data), buf, true)
    }

    /// [`EmpEndpoint::post_send`] with the message as a header + payload
    /// pair: the NIC gathers the two segments itself, so the host never
    /// assembles (copies) them into one buffer.
    pub fn post_send_split(
        &self,
        ctx: &ProcessCtx,
        dst: MacAddr,
        tag: Tag,
        header: Bytes,
        payload: Bytes,
        buf: VirtRange,
    ) -> SimResult<SendHandle> {
        self.post_send_buf(ctx, dst, tag, TxBuf::pair(header, payload), buf, false)
    }

    fn post_send_buf(
        &self,
        ctx: &ProcessCtx,
        dst: MacAddr,
        tag: Tag,
        data: TxBuf,
        buf: VirtRange,
        no_uq: bool,
    ) -> SimResult<SendHandle> {
        let cfg = self.nic.cfg();
        let (pin, _) = self.host.memory().lock().register(buf, self.host.cost());
        ctx.delay(cfg.desc_build + pin + self.host.cost().doorbell_write)?;
        self.trace(ctx, EventKind::TxDoorbell, data.len() as u64, 0);
        let state = self.nic.start_send(ctx, dst, tag, data, no_uq);
        Ok(SendHandle { state })
    }

    /// Block until the send is fully acknowledged (`true`) or abandoned
    /// after the retry limit (`false`).
    pub fn wait_send(&self, ctx: &ProcessCtx, h: &SendHandle) -> SimResult<bool> {
        h.state.completion.wait(ctx)?;
        ctx.delay(self.host.cost().poll_completion)?;
        Ok(h.state.ok.lock().expect("completed send has a status"))
    }

    /// Block until *every* send in the batch completed, then reap them
    /// with a single completion poll. Returns true only when all were
    /// acknowledged. A batch of one costs exactly one
    /// [`EmpEndpoint::wait_send`].
    pub fn wait_sends(&self, ctx: &ProcessCtx, hs: &[SendHandle]) -> SimResult<bool> {
        if hs.is_empty() {
            return Ok(true);
        }
        for h in hs {
            h.state.completion.wait(ctx)?;
        }
        ctx.delay(self.host.cost().poll_completion)?;
        Ok(hs
            .iter()
            .all(|h| h.state.ok.lock().expect("completed send has a status")))
    }

    /// True once the send completed (either way); never blocks.
    pub fn send_done(&self, h: &SendHandle) -> bool {
        h.state.completion.is_done()
    }

    /// Post a receive descriptor matching `tag` (and `src` if given) into a
    /// buffer of `capacity` bytes at `buf`.
    ///
    /// If a matching message is parked in the NIC's unexpected queue, the
    /// descriptor-insert firmware claims it (in order with frame
    /// processing) and the handle completes as usual; the extra staging
    /// copy the unexpected path costs (§6.4) is paid when the message is
    /// collected.
    pub fn post_recv(
        &self,
        ctx: &ProcessCtx,
        tag: Tag,
        src: Option<MacAddr>,
        capacity: usize,
        buf: VirtRange,
    ) -> SimResult<RecvHandle> {
        let cfg = self.nic.cfg();
        let (pin, _) = self.host.memory().lock().register(buf, self.host.cost());
        ctx.delay(cfg.desc_build + pin + self.host.cost().doorbell_write)?;
        let (id, state) = self.nic.post_descriptor(ctx, tag, src, capacity);
        Ok(RecvHandle { id, state })
    }

    /// Post a batch of receive descriptors behind one doorbell: each entry
    /// pays its descriptor build and (first-touch) pin, but the PCI
    /// doorbell write and the firmware's unexpected-pool rescan are paid
    /// once for the whole batch. A batch of one costs exactly one
    /// [`EmpEndpoint::post_recv`].
    pub fn post_recv_batch(
        &self,
        ctx: &ProcessCtx,
        posts: &[(Tag, Option<MacAddr>, usize, VirtRange)],
    ) -> SimResult<Vec<RecvHandle>> {
        if posts.is_empty() {
            return Ok(Vec::new());
        }
        let cfg = self.nic.cfg();
        let mut cost = self.host.cost().doorbell_write;
        for (_, _, _, buf) in posts {
            let (pin, _) = self.host.memory().lock().register(*buf, self.host.cost());
            cost += cfg.desc_build + pin;
        }
        ctx.delay(cost)?;
        let specs = posts
            .iter()
            .map(|(tag, src, cap, _)| (*tag, *src, *cap))
            .collect();
        Ok(self
            .nic
            .post_descriptors(ctx, specs)
            .into_iter()
            .map(|(id, state)| RecvHandle { id, state })
            .collect())
    }

    /// Block until the descriptor delivers a message (or `None` if it was
    /// explicitly unposted). Messages that came through the unexpected
    /// queue cost an extra staging-to-user copy here (§6.4) — free for
    /// the zero-payload acks the substrate routes that way.
    pub fn wait_recv(&self, ctx: &ProcessCtx, h: &RecvHandle) -> SimResult<Option<RecvMsg>> {
        h.state.completion.wait(ctx)?;
        ctx.delay(self.host.cost().poll_completion)?;
        let msg = h
            .state
            .slot
            .lock()
            .clone()
            .expect("completed recv has a result");
        if let Some(m) = &msg {
            if m.from_unexpected {
                let copy = self.host.cost().memcpy(m.data.len());
                ctx.delay(copy)?;
                self.trace(
                    ctx,
                    EventKind::SubstrateCopy,
                    m.data.len() as u64,
                    copy.nanos(),
                );
            }
        }
        Ok(msg)
    }

    /// Non-blocking check of a receive (costs one poll of the completion
    /// word).
    pub fn poll_recv(&self, ctx: &ProcessCtx, h: &RecvHandle) -> SimResult<RecvPoll> {
        ctx.delay(self.host.cost().poll_completion)?;
        if !h.state.completion.is_done() {
            return Ok(RecvPoll::Pending);
        }
        Ok(
            match h
                .state
                .slot
                .lock()
                .clone()
                .expect("completed recv has a result")
            {
                Some(msg) => RecvPoll::Ready(msg),
                None => RecvPoll::Cancelled,
            },
        )
    }

    /// Claim a message from the unexpected pool without posting anything
    /// if none matches. Charges the doorbell-free host path: a check of
    /// the pool plus the staging copy when a message is claimed.
    pub fn try_claim_unexpected(
        &self,
        ctx: &ProcessCtx,
        tag: Tag,
        src: Option<MacAddr>,
    ) -> SimResult<Option<RecvMsg>> {
        ctx.delay(self.host.cost().poll_completion)?;
        match self.nic.claim_unexpected(tag, src) {
            Some(msg) => {
                let copy = self.host.cost().memcpy(msg.data.len());
                ctx.delay(copy)?;
                self.trace(
                    ctx,
                    EventKind::SubstrateCopy,
                    msg.data.len() as u64,
                    copy.nanos(),
                );
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// Explicitly unpost a descriptor (garbage collection, §4.2/§5.3). The
    /// handle completes with `None` unless a message already matched it.
    pub fn unpost_recv(&self, ctx: &ProcessCtx, h: &RecvHandle) -> SimResult<()> {
        ctx.delay(self.host.cost().doorbell_write)?;
        self.nic.unpost_descriptor(ctx, h.id);
        Ok(())
    }

    /// Configure the depth of the NIC's unexpected queue.
    pub fn set_unexpected_slots(&self, ctx: &ProcessCtx, slots: usize) -> SimResult<()> {
        ctx.delay(self.host.cost().doorbell_write)?;
        self.nic.set_unexpected_slots(ctx, slots);
        Ok(())
    }
}
