//! Error type shared by everything that runs inside a simulation.

use std::fmt;

/// Result type for code running inside a simulated process.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced to simulated processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The simulation was dropped while this process was blocked. A process
    /// receiving this should unwind promptly (the `?` operator does the right
    /// thing); it is the normal way process threads are reclaimed.
    Terminated,
    /// An application-level failure. Protocol layers convert their own error
    /// types into this variant when a process gives up; the simulation run
    /// loop reports it by panicking with the message, so tests fail loudly.
    App(String),
}

impl SimError {
    /// Convenience constructor for application errors.
    pub fn app(msg: impl Into<String>) -> Self {
        SimError::App(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Terminated => write!(f, "simulation terminated"),
            SimError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SimError::Terminated.to_string(), "simulation terminated");
        assert_eq!(SimError::app("boom").to_string(), "application error: boom");
    }
}
