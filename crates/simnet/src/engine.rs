//! The discrete-event engine.
//!
//! A [`Sim`] owns a priority queue of events ordered by `(time, sequence)`.
//! Events are boxed closures executed on the thread that calls [`Sim::run`];
//! ties in time are broken by scheduling order, which makes every run
//! deterministic. Simulated *processes* (threads with blocking semantics)
//! are layered on top in [`crate::process`]; exactly one entity — the event
//! loop or a single resumed process — executes at any instant, so component
//! state guarded by [`parking_lot::Mutex`] is never contended.
//!
//! Ownership discipline (important, see `DESIGN.md` §6): components must
//! **not** store `Sim` handles. Every component method takes a
//! `&dyn SimAccess` argument; events receive `&Sim`. This keeps the `Sim` the
//! unique strong owner of the engine, so dropping it deterministically
//! terminates all parked process threads.

use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::SimResult;
use crate::process::{ProcId, ProcTable, ProcessCtx, StepOutcome};
use crate::sync::Completion;
use crate::time::{SimDuration, SimTime};

/// A scheduled event: a one-shot closure run on the event-loop thread.
pub type EventFn = Box<dyn FnOnce(&Sim) + Send>;

struct Event {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed so that `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

pub(crate) struct SimCore {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Event>,
    executed: u64,
}

/// Engine state shared between the event loop and process threads.
///
/// This type has no public API of its own; use it through [`SimAccess`].
pub struct SimShared {
    pub(crate) core: Mutex<SimCore>,
    pub(crate) procs: Mutex<ProcTable>,
    pub(crate) tracer: emp_trace::Tracer,
    pub(crate) telemetry: Arc<emp_trace::telemetry::Registry>,
}

impl SimShared {
    pub(crate) fn now(&self) -> SimTime {
        self.core.lock().now
    }

    pub(crate) fn schedule_boxed(&self, at: SimTime, f: EventFn) {
        let mut core = self.core.lock();
        // Never schedule into the past; clamp to "now" (runs after events
        // already queued for the current instant, preserving causality).
        let time = at.max(core.now);
        let seq = core.next_seq;
        core.next_seq += 1;
        core.queue.push(Event { time, seq, f });
    }

    /// Schedule the wake-up of a parked process. Crate-private: the 1:1
    /// park/wake discipline is maintained by the blocking primitives in
    /// [`crate::process`] and [`crate::sync`].
    pub(crate) fn schedule_wake(&self, pid: ProcId, at: SimTime) {
        self.schedule_boxed(at, Box::new(move |sim| sim.step_process(pid)));
    }
}

/// Access to the engine from either the event loop (`&Sim`) or a simulated
/// process (`&ProcessCtx`).
///
/// Component methods should take `&dyn SimAccess` so they can be called from
/// both contexts. The extension trait [`SimAccessExt`] adds the generic
/// convenience methods.
pub trait SimAccess {
    /// The shared engine state. Panics if the simulation no longer exists
    /// (only possible from a process thread racing teardown, which the
    /// termination protocol prevents for well-behaved processes).
    #[doc(hidden)]
    fn shared(&self) -> Arc<SimShared>;

    /// The current simulated time.
    fn now(&self) -> SimTime {
        self.shared().now()
    }

    /// Schedule a boxed event at an absolute time (clamped to now).
    fn schedule_boxed(&self, at: SimTime, f: EventFn) {
        self.shared().schedule_boxed(at, f);
    }

    /// This simulation's event tracer (a cheap shared handle). All layers
    /// record into the same per-simulation ring; recording is a no-op
    /// unless the `trace` feature is enabled, and emission sites should be
    /// gated on [`emp_trace::ENABLED`] so they compile out entirely.
    fn tracer(&self) -> emp_trace::Tracer {
        self.shared().tracer.clone()
    }

    /// This simulation's always-on telemetry registry. Unlike the tracer
    /// this is live in every build; layers register counters, gauges,
    /// histograms, and sampled series under stable dotted names. The
    /// engine drives its sampler after every executed event.
    fn telemetry(&self) -> Arc<emp_trace::telemetry::Registry> {
        Arc::clone(&self.shared().telemetry)
    }
}

/// Generic conveniences on top of [`SimAccess`].
pub trait SimAccessExt: SimAccess {
    /// Schedule `f` to run `after` from now.
    fn schedule_after<F>(&self, after: SimDuration, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        self.schedule_boxed(self.now() + after, Box::new(f));
    }

    /// Schedule `f` at the absolute instant `at` (clamped to now).
    fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        self.schedule_boxed(at, Box::new(f));
    }
}

impl<T: SimAccess + ?Sized> SimAccessExt for T {}

/// A discrete-event simulation.
///
/// `Sim` is deliberately **not** `Clone`: it is the unique strong owner of
/// the engine. Dropping it terminates and joins all process threads.
///
/// # Example
///
/// ```
/// use simnet::{Sim, SimAccess, SimDuration};
///
/// let sim = Sim::new();
/// sim.spawn("hello", |ctx| {
///     ctx.delay(SimDuration::from_micros(5))?;
///     assert_eq!(ctx.now().nanos(), 5_000);
///     Ok(())
/// });
/// sim.run();
/// assert_eq!(sim.now().nanos(), 5_000);
/// ```
pub struct Sim {
    shared: Arc<SimShared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at t = 0.
    pub fn new() -> Sim {
        Sim {
            shared: Arc::new(SimShared {
                core: Mutex::new(SimCore {
                    now: SimTime::ZERO,
                    next_seq: 0,
                    queue: BinaryHeap::new(),
                    executed: 0,
                }),
                procs: Mutex::new(ProcTable::new()),
                tracer: emp_trace::Tracer::new(),
                telemetry: emp_trace::telemetry::Registry::new(),
            }),
        }
    }

    /// Spawn a simulated process that starts at the current simulated time.
    ///
    /// The closure runs on a dedicated OS thread but in strict alternation
    /// with the event loop: it executes only between [`ProcessCtx`] blocking
    /// calls, so it may freely manipulate shared component state.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut ProcessCtx) -> SimResult<()> + Send + 'static,
    {
        let pid = ProcTable::spawn(&self.shared, name.into(), f);
        self.shared.schedule_wake(pid, self.shared.now());
        pid
    }

    /// Run until the event queue is empty. Returns the final simulated time.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run events with `time <= deadline`. The clock advances only to
    /// executed events, so a drained queue leaves it at the last event that
    /// ran. Returns the current simulated time.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        loop {
            let ev = {
                let mut core = self.shared.core.lock();
                match core.queue.peek() {
                    Some(top) if top.time <= deadline => {
                        let ev = core.queue.pop().expect("peeked event exists");
                        core.now = ev.time;
                        core.executed += 1;
                        ev
                    }
                    _ => break,
                }
            };
            let t = ev.time;
            (ev.f)(self);
            self.shared.telemetry.maybe_sample(t.nanos());
        }
        self.shared.now()
    }

    /// Run until `done` completes or the event queue drains, with a hard
    /// `deadline` as a backstop against runaway protocol timers. Returns
    /// `true` if the completion fired.
    pub fn run_until_complete(&self, done: &Completion, deadline: SimTime) -> bool {
        loop {
            if done.is_done() {
                return true;
            }
            let ev = {
                let mut core = self.shared.core.lock();
                match core.queue.peek() {
                    Some(top) if top.time <= deadline => {
                        let ev = core.queue.pop().expect("peeked event exists");
                        core.now = ev.time;
                        core.executed += 1;
                        ev
                    }
                    _ => return done.is_done(),
                }
            };
            let t = ev.time;
            (ev.f)(self);
            self.shared.telemetry.maybe_sample(t.nanos());
        }
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.shared.core.lock().executed
    }

    /// Number of events currently queued.
    pub fn events_pending(&self) -> usize {
        self.shared.core.lock().queue.len()
    }

    /// Resume a parked process and block until it parks again or finishes.
    /// Only called from wake events scheduled via `schedule_wake`.
    pub(crate) fn step_process(&self, pid: ProcId) {
        let step = {
            let table = self.shared.procs.lock();
            table.begin_step(pid)
        };
        let Some(step) = step else { return };
        match step.run() {
            StepOutcome::Parked => {}
            StepOutcome::Finished => {
                self.shared.procs.lock().mark_finished(pid);
            }
            StepOutcome::Failed(msg) => {
                self.shared.procs.lock().mark_finished(pid);
                panic!("simulated process failed: {msg}");
            }
        }
    }
}

impl SimAccess for Sim {
    fn shared(&self) -> Arc<SimShared> {
        Arc::clone(&self.shared)
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.shared.procs.lock().terminate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn events_run_in_time_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for &t in &[30u64, 10, 20] {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                log.lock().push(sim.now().nanos());
            });
        }
        sim.run();
        assert_eq!(*log.lock(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(100), move |_| log.lock().push(i));
        }
        sim.run();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new();
        let count = Arc::new(AtomicU64::new(0));
        fn chain(sim: &Sim, count: Arc<AtomicU64>, left: u64) {
            if left == 0 {
                return;
            }
            count.fetch_add(1, Ordering::Relaxed);
            sim.schedule_after(SimDuration::from_nanos(7), move |sim| {
                chain(sim, count, left - 1)
            });
        }
        let c2 = Arc::clone(&count);
        sim.schedule_at(SimTime::ZERO, move |sim| chain(sim, c2, 10));
        sim.run();
        assert_eq!(count.load(Ordering::Relaxed), 10);
        assert_eq!(sim.now().nanos(), 10 * 7);
        assert_eq!(sim.events_executed(), 11);
    }

    #[test]
    fn run_until_respects_deadline() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicU64::new(0));
        for t in [10u64, 20, 30, 40] {
            let hits = Arc::clone(&hits);
            sim.schedule_at(SimTime::from_nanos(t), move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scheduling_into_the_past_clamps_to_now() {
        let sim = Sim::new();
        let seen = Arc::new(Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        sim.schedule_at(SimTime::from_nanos(100), move |sim| {
            let seen3 = Arc::clone(&seen2);
            // Try to schedule at t=5, which is in the past.
            sim.schedule_at(SimTime::from_nanos(5), move |sim| {
                *seen3.lock() = Some(sim.now().nanos());
            });
        });
        sim.run();
        assert_eq!(*seen.lock(), Some(100));
    }

    #[test]
    fn identical_runs_are_deterministic() {
        fn run_once() -> Vec<u64> {
            let sim = Sim::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..50u64 {
                let log = Arc::clone(&log);
                sim.schedule_at(SimTime::from_nanos(i % 7), move |_| {
                    log.lock().push(i);
                });
            }
            sim.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
