//! Lightweight instrumentation used across the simulator: running summary
//! statistics, throughput meters and fixed-bucket histograms.

use crate::time::{SimDuration, SimTime};

/// Incremental min/mean/max over a stream of samples.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn record(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Add a duration sample in microseconds.
    pub fn record_duration_us(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Payload throughput between the first and last recorded transfer.
#[derive(Clone, Debug, Default)]
pub struct Throughput {
    bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl Throughput {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` moving at instant `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = self.last.max(t);
        self.bytes += bytes;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean throughput in megabits per second over the observed interval,
    /// or `None` if fewer than two distinct instants were seen.
    pub fn mbps(&self) -> Option<f64> {
        let first = self.first?;
        let span = self.last.since(first);
        if span.is_zero() {
            return None;
        }
        Some(self.bytes as f64 * 8.0 / span.as_secs_f64() / 1e6)
    }
}

/// Snapshot of one [`crate::LinkTx`]'s counters, with injected-fault
/// outcomes broken out per class: `frames_dropped` counts frames lost
/// outright (periodic/probabilistic/burst loss and down windows), while
/// `frames_corrupted` counts frames that occupied the wire but failed the
/// receiver's FCS check — the two used to be conflated in one counter.
#[derive(Clone, Copy, Debug)]
pub struct LinkStats {
    /// Total frames handed to the transmitter.
    pub frames_sent: u64,
    /// Frames lost outright to the injected fault model.
    pub frames_dropped: u64,
    /// Frames corrupted in flight (never delivered, FCS failure).
    pub frames_corrupted: u64,
    /// Frames held back by injected reorder/jitter delay.
    pub frames_delayed: u64,
    /// Longest time a frame waited behind earlier traffic.
    pub max_backlog: SimDuration,
    /// Total payload bytes recorded by the throughput meter.
    pub payload_bytes: u64,
    /// Payload throughput observed so far (Mbps), if any traffic flowed.
    pub payload_mbps: Option<f64>,
}

impl LinkStats {
    /// Frames the fault model prevented from being delivered.
    pub fn frames_lost(&self) -> u64 {
        self.frames_dropped + self.frames_corrupted
    }

    /// Frames that actually reached the peer sink.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_sent - self.frames_lost()
    }
}

/// Fixed-boundary histogram of `u64` samples (e.g. latencies in ns).
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build with ascending bucket upper bounds; an implicit overflow bucket
    /// catches everything above the last bound.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(upper_bound, count)` pairs; the final entry has `u64::MAX` as its
    /// bound (the overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// q-th sample. `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bound, count) in self.buckets() {
            seen += count;
            if seen >= target {
                return Some(bound);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_summary() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), None);
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn throughput_computes_mbps() {
        let mut t = Throughput::new();
        assert_eq!(t.mbps(), None);
        t.record(SimTime::from_nanos(0), 500_000);
        assert_eq!(t.mbps(), None); // single instant
        t.record(SimTime::from_nanos(8_000_000), 500_000);
        // 1 MB over 8 ms = 1e6 * 8 bits / 0.008 s = 1000 Mbps.
        let mbps = t.mbps().unwrap();
        assert!((mbps - 1000.0).abs() < 1e-6, "got {mbps}");
        assert_eq!(t.bytes(), 1_000_000);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 7, 50, 500, 5000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (1000, 1), (u64::MAX, 1)]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![10, 10]);
    }
}
