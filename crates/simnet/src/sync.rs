//! Synchronization primitives for simulated processes.
//!
//! These are the only legal ways (besides [`ProcessCtx::delay`]) for a
//! process to block, preserving the engine's 1:1 park/wake discipline:
//!
//! * [`Completion`] — one-shot broadcast ("this operation finished").
//! * [`SimCondvar`] — multi-shot condition variable; pair it with shared
//!   state and a re-check loop, exactly like a real condvar.
//! * [`SimQueue`] — FIFO queue with blocking pop (accept queues, mailboxes).
//! * [`SimSemaphore`] — counting semaphore (credit pools).
//!
//! All of them may be signalled from event context (`&Sim`) or from another
//! process (`&ProcessCtx`) via the common [`SimAccess`] bound.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::SimAccess;
use crate::error::SimResult;
use crate::process::{ProcId, ProcessCtx};

/// Guard ensuring a parked process receives at most one wake-up even when
/// registered with several completions (`wait_any`). The first completion
/// to fire claims the guard; the rest see it spent and skip the wake.
struct WaitGuard {
    pid: ProcId,
    woken: std::sync::atomic::AtomicBool,
}

impl WaitGuard {
    fn new(pid: ProcId) -> Arc<Self> {
        Arc::new(WaitGuard {
            pid,
            woken: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Claim the guard; true exactly once.
    fn claim(&self) -> bool {
        !self.woken.swap(true, std::sync::atomic::Ordering::Relaxed)
    }

    fn spent(&self) -> bool {
        self.woken.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A one-shot event: processes wait, anyone completes it exactly once.
#[derive(Clone, Default)]
pub struct Completion {
    inner: Arc<Mutex<CompletionState>>,
}

#[derive(Default)]
struct CompletionState {
    done: bool,
    waiters: Vec<Arc<WaitGuard>>,
    /// Task wakers (async front end) fired alongside process wakes.
    wakers: Vec<std::task::Waker>,
}

impl Completion {
    /// A fresh, incomplete completion.
    pub fn new() -> Self {
        Self::default()
    }

    /// A completion born already complete (waiters return immediately).
    pub fn new_done() -> Self {
        let c = Completion::new();
        c.inner.lock().done = true;
        c
    }

    /// True once [`Completion::complete`] has been called.
    pub fn is_done(&self) -> bool {
        self.inner.lock().done
    }

    /// Mark complete and wake all waiters. Subsequent calls are no-ops.
    pub fn complete(&self, s: &dyn SimAccess) {
        let (waiters, wakers) = {
            let mut st = self.inner.lock();
            if st.done {
                return;
            }
            st.done = true;
            (
                std::mem::take(&mut st.waiters),
                std::mem::take(&mut st.wakers),
            )
        };
        let shared = s.shared();
        let now = shared.now();
        for guard in waiters {
            if guard.claim() {
                shared.schedule_wake(guard.pid, now);
            }
        }
        // Task wakers fire after process wakes, in registration order — a
        // fixed sequence, so the executor's ready queue stays deterministic.
        for waker in wakers {
            waker.wake();
        }
    }

    fn register(&self, guard: &Arc<WaitGuard>) -> bool {
        let mut st = self.inner.lock();
        if st.done {
            return false;
        }
        // Prune guards spent by other completions so long-lived completions
        // (e.g. a control channel polled by every read) stay small.
        st.waiters.retain(|w| !w.spent());
        st.waiters.push(Arc::clone(guard));
        true
    }

    /// Register a task waker to be fired (once) when this completion
    /// completes. Returns `false` — registering nothing — when already
    /// complete: the caller must treat that as "ready now" and re-check
    /// instead of sleeping, which closes the classic lost-wakeup race.
    ///
    /// Re-registering a waker that [`std::task::Waker::will_wake`] an
    /// already-stored one is a no-op, so a task polling the same
    /// long-lived completion many times costs one slot, not one per poll.
    pub fn watch_waker(&self, waker: &std::task::Waker) -> bool {
        let mut st = self.inner.lock();
        if st.done {
            return false;
        }
        if !st.wakers.iter().any(|w| w.will_wake(waker)) {
            st.wakers.push(waker.clone());
        }
        true
    }

    /// Block the calling process until complete. Returns immediately if
    /// already complete; consumes no simulated time.
    pub fn wait(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let guard = WaitGuard::new(ctx.pid());
        if self.register(&guard) {
            ctx.park()?;
            debug_assert!(self.is_done(), "completion waiter woken before completion");
        }
        Ok(())
    }
}

/// Block until any of `completions` is done; returns the index of the
/// first done one (ties broken by position). Completions the process
/// remains registered with after waking cannot re-wake it: wake-up rights
/// are mediated by a one-shot guard.
pub fn wait_any(ctx: &ProcessCtx, completions: &[&Completion]) -> SimResult<usize> {
    assert!(!completions.is_empty(), "wait_any on an empty set");
    loop {
        if let Some(idx) = completions.iter().position(|c| c.is_done()) {
            return Ok(idx);
        }
        let guard = WaitGuard::new(ctx.pid());
        let mut registered_any = false;
        let mut fired = false;
        for c in completions {
            if !c.register(&guard) {
                // Completed during registration — impossible under strict
                // alternation, but handle it defensively: claim our own
                // guard so a racing complete() cannot double-wake.
                fired = true;
                break;
            }
            registered_any = true;
        }
        if fired {
            if guard.claim() {
                // Nobody woke us; loop to pick the completed index.
                continue;
            }
            // A completion claimed the guard: a wake event is scheduled
            // for us, so we must park to consume it.
            ctx.park()?;
            continue;
        }
        debug_assert!(registered_any);
        ctx.park()?;
    }
}

/// A condition variable for simulated processes.
///
/// Usage mirrors a classic condvar: guard shared state with a
/// [`parking_lot::Mutex`], and in the waiter loop re-check the predicate
/// after every wake (wakes can be spurious when several processes contend):
///
/// ```
/// use simnet::{Sim, SimCondvar, SimAccess};
/// use parking_lot::Mutex;
/// use std::sync::Arc;
///
/// let sim = Sim::new();
/// let ready = Arc::new(Mutex::new(false));
/// let cv = SimCondvar::new();
///
/// let (r2, cv2) = (Arc::clone(&ready), cv.clone());
/// sim.spawn("consumer", move |ctx| {
///     while !*r2.lock() {
///         cv2.wait(ctx)?;
///     }
///     Ok(())
/// });
/// let (r3, cv3) = (ready, cv);
/// sim.spawn("producer", move |ctx| {
///     ctx.delay(simnet::SimDuration::from_micros(1))?;
///     *r3.lock() = true;
///     cv3.notify_all(ctx);
///     Ok(())
/// });
/// sim.run();
/// ```
///
/// Never hold the state mutex across `wait` — check, drop the guard, wait,
/// re-check (the strict-alternation engine makes the unlocked window safe:
/// nothing runs between the predicate check and the park).
#[derive(Clone, Default)]
pub struct SimCondvar {
    waiters: Arc<Mutex<CondvarWaiters>>,
}

#[derive(Default)]
struct CondvarWaiters {
    pids: Vec<ProcId>,
    wakers: Vec<std::task::Waker>,
}

impl SimCondvar {
    /// A condvar with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake every currently waiting process.
    pub fn notify_all(&self, s: &dyn SimAccess) {
        let (waiters, wakers) = {
            let mut st = self.waiters.lock();
            (std::mem::take(&mut st.pids), std::mem::take(&mut st.wakers))
        };
        let shared = s.shared();
        let now = shared.now();
        for pid in waiters {
            shared.schedule_wake(pid, now);
        }
        for waker in wakers {
            waker.wake();
        }
    }

    /// Register a task waker for the *next* `notify_all` (multi-shot: the
    /// registration is consumed by each notify, so a task that wants the
    /// one after must re-register — exactly the condvar re-check loop, in
    /// future form). Wakes may be spurious; always re-check the predicate.
    pub fn watch_waker(&self, waker: &std::task::Waker) {
        let mut st = self.waiters.lock();
        if !st.wakers.iter().any(|w| w.will_wake(waker)) {
            st.wakers.push(waker.clone());
        }
    }

    /// Block until the next `notify_all`. Always re-check the guarded
    /// predicate in a loop around this call.
    pub fn wait(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.waiters.lock().pids.push(ctx.pid());
        ctx.park()
    }
}

/// An unbounded FIFO queue with blocking pop.
#[derive(Clone)]
pub struct SimQueue<T> {
    inner: Arc<Mutex<QueueState<T>>>,
}

struct QueueState<T> {
    items: VecDeque<T>,
    waiters: VecDeque<ProcId>,
}

impl<T> Default for SimQueue<T> {
    fn default() -> Self {
        SimQueue {
            inner: Arc::new(Mutex::new(QueueState {
                items: VecDeque::new(),
                waiters: VecDeque::new(),
            })),
        }
    }
}

impl<T: Send> SimQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an item and wake the longest-waiting popper, if any.
    pub fn push(&self, s: &dyn SimAccess, item: T) {
        let waiter = {
            let mut st = self.inner.lock();
            st.items.push_back(item);
            st.waiters.pop_front()
        };
        if let Some(pid) = waiter {
            let shared = s.shared();
            let now = shared.now();
            shared.schedule_wake(pid, now);
        }
    }

    /// Remove the head item, blocking while the queue is empty.
    pub fn pop(&self, ctx: &ProcessCtx) -> SimResult<T> {
        loop {
            {
                let mut st = self.inner.lock();
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                st.waiters.push_back(ctx.pid());
            }
            ctx.park()?;
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A counting semaphore; the substrate uses one per connection as the
/// sender-side credit pool.
#[derive(Clone)]
pub struct SimSemaphore {
    inner: Arc<Mutex<SemState>>,
}

struct SemState {
    permits: u64,
    waiters: VecDeque<ProcId>,
}

impl SimSemaphore {
    /// A semaphore holding `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        SimSemaphore {
            inner: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Current number of available permits.
    pub fn available(&self) -> u64 {
        self.inner.lock().permits
    }

    /// Take `n` permits, blocking until they are available.
    pub fn acquire(&self, ctx: &ProcessCtx, n: u64) -> SimResult<()> {
        loop {
            {
                let mut st = self.inner.lock();
                if st.permits >= n {
                    st.permits -= n;
                    return Ok(());
                }
                st.waiters.push_back(ctx.pid());
            }
            ctx.park()?;
        }
    }

    /// Try to take `n` permits without blocking.
    pub fn try_acquire(&self, n: u64) -> bool {
        let mut st = self.inner.lock();
        if st.permits >= n {
            st.permits -= n;
            true
        } else {
            false
        }
    }

    /// Return `n` permits and wake all waiters to re-contend (wakes may be
    /// spurious; `acquire` re-checks).
    pub fn release(&self, s: &dyn SimAccess, n: u64) {
        let waiters = {
            let mut st = self.inner.lock();
            st.permits += n;
            std::mem::take(&mut st.waiters)
        };
        let shared = s.shared();
        let now = shared.now();
        for pid in waiters {
            shared.schedule_wake(pid, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, SimAccessExt};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn completion_wakes_waiter_at_completion_time() {
        let sim = Sim::new();
        let done = Completion::new();
        let woke_at = Arc::new(Mutex::new(None));
        let (d2, w2) = (done.clone(), Arc::clone(&woke_at));
        sim.spawn("waiter", move |ctx| {
            d2.wait(ctx)?;
            *w2.lock() = Some(ctx.now().nanos());
            Ok(())
        });
        let d3 = done.clone();
        sim.schedule_at(SimTime::from_nanos(42), move |sim| d3.complete(sim));
        sim.run();
        assert_eq!(*woke_at.lock(), Some(42));
        assert!(done.is_done());
    }

    #[test]
    fn wait_on_done_completion_returns_immediately() {
        let sim = Sim::new();
        let done = Completion::new();
        let d2 = done.clone();
        sim.spawn("completer-then-waiter", move |ctx| {
            d2.complete(ctx);
            d2.wait(ctx)?; // must not block
            assert_eq!(ctx.now(), SimTime::ZERO);
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn completion_wakes_all_waiters() {
        let sim = Sim::new();
        let done = Completion::new();
        let count = Arc::new(Mutex::new(0u32));
        for i in 0..5 {
            let (d, c) = (done.clone(), Arc::clone(&count));
            sim.spawn(format!("w{i}"), move |ctx| {
                d.wait(ctx)?;
                *c.lock() += 1;
                Ok(())
            });
        }
        let d = done.clone();
        sim.schedule_at(SimTime::from_nanos(10), move |sim| d.complete(sim));
        sim.run();
        assert_eq!(*count.lock(), 5);
    }

    #[test]
    fn queue_delivers_in_fifo_order_and_blocks() {
        let sim = Sim::new();
        let q: SimQueue<u32> = SimQueue::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let (q2, g2) = (q.clone(), Arc::clone(&got));
        sim.spawn("popper", move |ctx| {
            for _ in 0..3 {
                let v = q2.pop(ctx)?;
                g2.lock().push((v, ctx.now().nanos()));
            }
            Ok(())
        });
        let q3 = q.clone();
        sim.spawn("pusher", move |ctx| {
            for v in 1..=3u32 {
                ctx.delay(SimDuration::from_nanos(100))?;
                q3.push(ctx, v);
            }
            Ok(())
        });
        sim.run();
        assert_eq!(*got.lock(), vec![(1, 100), (2, 200), (3, 300)]);
    }

    #[test]
    fn queue_try_pop_and_len() {
        let sim = Sim::new();
        let q: SimQueue<&'static str> = SimQueue::new();
        let q2 = q.clone();
        sim.spawn("p", move |ctx| {
            q2.push(ctx, "a");
            q2.push(ctx, "b");
            assert_eq!(q2.len(), 2);
            assert_eq!(q2.try_pop(), Some("a"));
            assert_eq!(q2.try_pop(), Some("b"));
            assert_eq!(q2.try_pop(), None);
            assert!(q2.is_empty());
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn semaphore_blocks_until_released() {
        let sim = Sim::new();
        let sem = SimSemaphore::new(2);
        let acquired_at = Arc::new(Mutex::new(Vec::new()));
        let (s2, a2) = (sem.clone(), Arc::clone(&acquired_at));
        sim.spawn("taker", move |ctx| {
            for _ in 0..4 {
                s2.acquire(ctx, 1)?;
                a2.lock().push(ctx.now().nanos());
            }
            Ok(())
        });
        let s3 = sem.clone();
        sim.spawn("giver", move |ctx| {
            ctx.delay(SimDuration::from_nanos(500))?;
            s3.release(ctx, 1);
            ctx.delay(SimDuration::from_nanos(500))?;
            s3.release(ctx, 1);
            Ok(())
        });
        sim.run();
        // Two immediate (permits=2), then one per release.
        assert_eq!(*acquired_at.lock(), vec![0, 0, 500, 1000]);
        assert_eq!(sem.available(), 0);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = SimSemaphore::new(3);
        assert!(sem.try_acquire(2));
        assert!(!sem.try_acquire(2));
        assert!(sem.try_acquire(1));
        assert_eq!(sem.available(), 0);
    }

    #[test]
    fn wait_any_returns_first_completed() {
        let sim = Sim::new();
        let (a, b, c) = (Completion::new(), Completion::new(), Completion::new());
        let got = Arc::new(Mutex::new(Vec::new()));
        let (a2, b2, c2, g2) = (a.clone(), b.clone(), c.clone(), Arc::clone(&got));
        sim.spawn("waiter", move |ctx| {
            let idx = crate::sync::wait_any(ctx, &[&a2, &b2, &c2])?;
            g2.lock().push((idx, ctx.now().nanos()));
            // b fired; now also wait for c — the stale registration with a
            // must not produce a spurious wake.
            c2.wait(ctx)?;
            g2.lock().push((99, ctx.now().nanos()));
            // Park once more via a delay; a's later completion must not
            // break this sleep.
            ctx.delay(SimDuration::from_nanos(500))?;
            g2.lock().push((100, ctx.now().nanos()));
            Ok(())
        });
        let b3 = b.clone();
        sim.schedule_at(SimTime::from_nanos(10), move |s| b3.complete(s));
        let c3 = c.clone();
        sim.schedule_at(SimTime::from_nanos(20), move |s| c3.complete(s));
        let a3 = a.clone();
        sim.schedule_at(SimTime::from_nanos(25), move |s| a3.complete(s));
        sim.run();
        assert_eq!(*got.lock(), vec![(1, 10), (99, 20), (100, 520)]);
    }

    #[test]
    fn wait_any_with_already_done_completion_is_immediate() {
        let sim = Sim::new();
        let (a, b) = (Completion::new(), Completion::new());
        let b2 = b.clone();
        sim.spawn("p", move |ctx| {
            b2.complete(ctx);
            let idx = crate::sync::wait_any(ctx, &[&a, &b2])?;
            assert_eq!(idx, 1);
            assert_eq!(ctx.now(), SimTime::ZERO);
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn condvar_wakes_all_and_recheck_loops_work() {
        let sim = Sim::new();
        let state = Arc::new(Mutex::new(0u32));
        let cv = SimCondvar::new();
        let finished = Arc::new(Mutex::new(Vec::new()));
        // Two waiters with different thresholds; both must eventually pass.
        for threshold in [1u32, 2u32] {
            let (st, cv2, fin) = (Arc::clone(&state), cv.clone(), Arc::clone(&finished));
            sim.spawn(format!("waiter-{threshold}"), move |ctx| {
                while *st.lock() < threshold {
                    cv2.wait(ctx)?;
                }
                fin.lock().push((threshold, ctx.now().nanos()));
                Ok(())
            });
        }
        let (st, cv3) = (Arc::clone(&state), cv.clone());
        sim.spawn("setter", move |ctx| {
            for _ in 0..2 {
                ctx.delay(SimDuration::from_nanos(10))?;
                *st.lock() += 1;
                cv3.notify_all(ctx);
            }
            Ok(())
        });
        sim.run();
        assert_eq!(*finished.lock(), vec![(1, 10), (2, 20)]);
    }

    /// Waker counting its `wake` calls, for watch_waker tests.
    struct CountWaker(std::sync::atomic::AtomicUsize);

    impl CountWaker {
        fn pair() -> (Arc<Self>, std::task::Waker) {
            let w = Arc::new(CountWaker(std::sync::atomic::AtomicUsize::new(0)));
            let waker = std::task::Waker::from(Arc::clone(&w));
            (w, waker)
        }

        fn count(&self) -> usize {
            self.0.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl std::task::Wake for CountWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn completion_watch_waker_fires_once_and_dedupes() {
        let sim = Sim::new();
        let done = Completion::new();
        let (count, waker) = CountWaker::pair();
        // Registering the same task twice stores one slot.
        assert!(done.watch_waker(&waker));
        assert!(done.watch_waker(&waker.clone()));
        let d = done.clone();
        sim.schedule_at(SimTime::from_nanos(5), move |s| {
            d.complete(s);
            d.complete(s); // second complete must not re-fire wakers
        });
        sim.run();
        assert_eq!(count.count(), 1);
        // Registration after completion reports "ready now".
        let (late, late_waker) = CountWaker::pair();
        assert!(!done.watch_waker(&late_waker));
        assert_eq!(late.count(), 0);
    }

    #[test]
    fn condvar_watch_waker_is_consumed_per_notify() {
        let sim = Sim::new();
        let cv = SimCondvar::new();
        let (count, waker) = CountWaker::pair();
        cv.watch_waker(&waker);
        cv.watch_waker(&waker); // deduped
        let cv2 = cv.clone();
        let w2 = waker.clone();
        sim.schedule_at(SimTime::from_nanos(5), move |s| {
            cv2.notify_all(s); // fires the registration once
            cv2.notify_all(s); // nothing registered: no extra wake
            cv2.watch_waker(&w2); // re-arm, multi-shot
            cv2.notify_all(s);
        });
        sim.run();
        assert_eq!(count.count(), 2);
    }
}
