//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All timing in the simulator is expressed in integer nanoseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible. One
//! nanosecond of resolution is fine enough for every cost in the modelled
//! testbed (the smallest is the ~550 ns per-descriptor tag-match walk on the
//! NIC; a single bit time on Gigabit Ethernet is exactly 1 ns).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds (rounded to the nearest ns).
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us >= 0.0, "durations cannot be negative");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// The time it takes to move `bits` over a serial medium running at
    /// `bits_per_sec`, rounded up to the next nanosecond.
    ///
    /// On Gigabit Ethernet (10^9 bps) this is exactly one nanosecond per bit.
    pub fn for_bits_at_rate(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "rate must be positive");
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(u64::try_from(ns).expect("transfer time overflows u64 nanoseconds"))
    }

    /// The time it takes to move `bytes` at a memory-style rate expressed in
    /// bytes per second (e.g. a memcpy or DMA bandwidth), rounded up.
    pub fn for_bytes_at_rate(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "rate must be positive");
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(u64::try_from(ns).expect("transfer time overflows u64 nanoseconds"))
    }

    /// Raw nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// This duration in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a longer SimDuration from a shorter one"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("simulated duration overflow"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).nanos(), 3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_micros(6));
        assert_eq!(d / 2, SimDuration::from_micros(1));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.since(a).nanos(), 10);
        assert_eq!(a.since(b).nanos(), 0);
    }

    #[test]
    fn gigabit_bit_time_is_one_nanosecond() {
        // 1 Gbps = 1 ns per bit: the serialization time of a 1538-byte
        // on-wire frame must be exactly 12304 ns.
        let d = SimDuration::for_bits_at_rate(1538 * 8, 1_000_000_000);
        assert_eq!(d.nanos(), 12_304);
    }

    #[test]
    fn byte_rate_rounds_up() {
        // 3 bytes at 2 bytes/sec is 1.5 s, which must round up to keep
        // transfers from completing early.
        let d = SimDuration::for_bytes_at_rate(3, 2);
        assert_eq!(d.nanos(), 1_500_000_000);
        let d = SimDuration::for_bytes_at_rate(1, 3);
        assert_eq!(d.nanos(), 333_333_334);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_micros_f64(1.5),
            SimDuration::from_nanos(1_500)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(28).to_string(), "28.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
