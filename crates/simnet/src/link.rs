//! Full-duplex point-to-point links.
//!
//! A [`LinkTx`] models one direction of a link: frames serialize at the
//! configured line rate (back-to-back frames queue behind `busy_until`, i.e.
//! an infinite output FIFO whose depth is tracked in the stats), then arrive
//! at the peer [`FrameSink`] after the propagation delay.

use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::engine::{SimAccess, SimAccessExt};
use crate::frame::Frame;
use crate::stats::Throughput;
use crate::time::{SimDuration, SimTime};

/// Anything that can receive Ethernet frames: a NIC's MAC, a switch port.
pub trait FrameSink: Send + Sync {
    /// Called when the last bit of `frame` has arrived.
    fn deliver(&self, s: &dyn SimAccess, frame: Frame);
}

/// Physical-layer parameters of a link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable length + PHY latency).
    pub propagation: SimDuration,
    /// Failure injection: drop every `n`-th frame (deterministic, so
    /// lossy runs stay reproducible). `None` = lossless, the testbed
    /// default (a machine-room Gigabit switch corrupts essentially
    /// nothing; loss is injected only to exercise reliability paths).
    pub drop_every: Option<u64>,
}

impl Default for LinkConfig {
    /// Gigabit Ethernet over a short machine-room cable.
    fn default() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_nanos(500),
            drop_every: None,
        }
    }
}

struct TxState {
    busy_until: SimTime,
    throughput: Throughput,
    frames_sent: u64,
    frames_dropped: u64,
    max_backlog: SimDuration,
}

/// The transmitting end of one direction of a link.
///
/// Holds only a weak reference to the peer sink, so component graphs built
/// through a switch contain no `Arc` cycles and are reclaimed when the
/// testbed drops.
#[derive(Clone)]
pub struct LinkTx {
    cfg: LinkConfig,
    peer: Weak<dyn FrameSink>,
    state: Arc<Mutex<TxState>>,
}

impl LinkTx {
    /// Create a transmitter delivering to `peer`.
    pub fn new(cfg: LinkConfig, peer: &Arc<dyn FrameSink>) -> Self {
        LinkTx {
            cfg,
            peer: Arc::downgrade(peer),
            state: Arc::new(Mutex::new(TxState {
                busy_until: SimTime::ZERO,
                throughput: Throughput::new(),
                frames_sent: 0,
                frames_dropped: 0,
                max_backlog: SimDuration::ZERO,
            })),
        }
    }

    /// Queue `frame` for transmission. Serialization begins when the wire
    /// frees up; delivery fires at `start + serialization + propagation`.
    pub fn send(&self, s: &dyn SimAccess, frame: Frame) {
        let Some(peer) = self.peer.upgrade() else {
            return; // peer torn down; drop the frame silently
        };
        let now = s.now();
        let tx_time = SimDuration::for_bits_at_rate(frame.wire_bits(), self.cfg.bandwidth_bps);
        let (start, deliver_at, dropped) = {
            let mut st = self.state.lock();
            let start = now.max(st.busy_until);
            let backlog = start.since(now);
            st.max_backlog = st.max_backlog.max(backlog);
            st.busy_until = start + tx_time;
            st.frames_sent += 1;
            st.throughput
                .record(s.now(), frame.payload.wire_len() as u64);
            // Failure injection: the frame still occupies the wire (it is
            // corrupted in flight, FCS fails at the receiver) but is
            // never delivered.
            let dropped = self
                .cfg
                .drop_every
                .is_some_and(|n| st.frames_sent.is_multiple_of(n));
            if dropped {
                st.frames_dropped += 1;
            }
            (start, st.busy_until + self.cfg.propagation, dropped)
        };
        if emp_trace::ENABLED {
            // Stamped at serialization start, which may be in the future
            // when the frame queues behind earlier traffic.
            let kind = if dropped {
                emp_trace::EventKind::FrameDrop
            } else {
                emp_trace::EventKind::WireTx
            };
            s.tracer().emit(
                start.nanos(),
                frame.src.0,
                emp_trace::NO_CONN,
                kind,
                frame.payload.wire_len() as u64,
                u64::from(frame.dst.0),
            );
        }
        if !dropped {
            s.schedule_at(deliver_at, move |sim| {
                if emp_trace::ENABLED {
                    sim.tracer().emit(
                        sim.now().nanos(),
                        frame.dst.0,
                        emp_trace::NO_CONN,
                        emp_trace::EventKind::WireRx,
                        frame.payload.wire_len() as u64,
                        u64::from(frame.src.0),
                    );
                }
                peer.deliver(sim, frame);
            });
        }
    }

    /// Instant at which the wire becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.state.lock().busy_until
    }

    /// Total frames handed to this transmitter.
    pub fn frames_sent(&self) -> u64 {
        self.state.lock().frames_sent
    }

    /// Frames corrupted by the injected loss model.
    pub fn frames_dropped(&self) -> u64 {
        self.state.lock().frames_dropped
    }

    /// Longest time a frame waited behind earlier traffic.
    pub fn max_backlog(&self) -> SimDuration {
        self.state.lock().max_backlog
    }

    /// Payload throughput observed so far (Mbps), if any traffic flowed.
    pub fn payload_mbps(&self) -> Option<f64> {
        self.state.lock().throughput.mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::frame::{EtherType, MacAddr, Payload};

    struct Recorder {
        arrivals: Mutex<Vec<(u64, usize)>>,
    }

    impl FrameSink for Recorder {
        fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
            self.arrivals
                .lock()
                .push((s.now().nanos(), frame.payload.wire_len()));
        }
    }

    fn frame(len: usize) -> Frame {
        Frame {
            src: MacAddr(0),
            dst: MacAddr(1),
            ethertype: EtherType::EMP,
            payload: Payload::new((), len),
        }
    }

    #[test]
    fn single_frame_timing() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::from_nanos(100),
                drop_every: None,
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        sim.run();
        // 84 bytes on wire = 672 ns serialization + 100 ns propagation.
        assert_eq!(*rec.arrivals.lock(), vec![(772, 4)]);
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                drop_every: None,
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            // Two MTU frames sent in the same instant: the second must wait
            // a full serialization time (12304 ns) behind the first.
            tx2.send(s, frame(1500));
            tx2.send(s, frame(1500));
        });
        sim.run();
        assert_eq!(*rec.arrivals.lock(), vec![(12_304, 1500), (24_608, 1500)]);
        assert_eq!(tx.frames_sent(), 2);
        assert_eq!(tx.max_backlog(), SimDuration::from_nanos(12_304));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                drop_every: None,
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        let tx3 = tx.clone();
        sim.schedule_at(SimTime::from_nanos(100_000), move |s| tx3.send(s, frame(4)));
        sim.run();
        assert_eq!(*rec.arrivals.lock(), vec![(672, 4), (100_672, 4)]);
        assert_eq!(tx.max_backlog(), SimDuration::ZERO);
    }

    #[test]
    fn loss_injection_drops_every_nth_frame() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                drop_every: Some(3),
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            for _ in 0..9 {
                tx2.send(s, frame(4));
            }
        });
        sim.run();
        assert_eq!(rec.arrivals.lock().len(), 6, "frames 3, 6, 9 dropped");
        assert_eq!(tx.frames_dropped(), 3);
        assert_eq!(tx.frames_sent(), 9);
    }

    #[test]
    fn dropped_peer_discards_frames() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(LinkConfig::default(), &sink);
        drop(sink);
        drop(rec); // peer fully gone
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        sim.run(); // must not panic
        assert_eq!(tx.frames_sent(), 0);
    }
}
