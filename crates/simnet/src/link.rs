//! Full-duplex point-to-point links.
//!
//! A [`LinkTx`] models one direction of a link: frames serialize at the
//! configured line rate (back-to-back frames queue behind `busy_until`, i.e.
//! an infinite output FIFO whose depth is tracked in the stats), then arrive
//! at the peer [`FrameSink`] after the propagation delay.

use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::engine::{SimAccess, SimAccessExt};
use crate::fault::{FaultDecision, FaultPlan, FaultState};
use crate::frame::Frame;
use crate::stats::{LinkStats, Throughput};
use crate::time::{SimDuration, SimTime};

/// Anything that can receive Ethernet frames: a NIC's MAC, a switch port.
pub trait FrameSink: Send + Sync {
    /// Called when the last bit of `frame` has arrived.
    fn deliver(&self, s: &dyn SimAccess, frame: Frame);
}

/// Physical-layer parameters of a link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable length + PHY latency).
    pub propagation: SimDuration,
    /// Failure injection plan (seeded, deterministic — lossy runs stay
    /// reproducible). [`FaultPlan::none`] = lossless, the testbed default
    /// (a machine-room Gigabit switch corrupts essentially nothing; faults
    /// are injected only to exercise reliability paths).
    pub faults: FaultPlan,
}

impl Default for LinkConfig {
    /// Gigabit Ethernet over a short machine-room cable.
    fn default() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_nanos(500),
            faults: FaultPlan::none(),
        }
    }
}

struct TxState {
    busy_until: SimTime,
    throughput: Throughput,
    faults: FaultState,
    frames_sent: u64,
    frames_dropped: u64,
    frames_corrupted: u64,
    frames_delayed: u64,
    max_backlog: SimDuration,
    /// Telemetry name (e.g. `switch.port0`, `nic.n1.uplink`); links with
    /// no name stay anonymous and publish nothing.
    name: Option<String>,
    /// Set once the backlog series has been registered.
    registered: bool,
}

/// The transmitting end of one direction of a link.
///
/// Holds only a weak reference to the peer sink, so component graphs built
/// through a switch contain no `Arc` cycles and are reclaimed when the
/// testbed drops.
#[derive(Clone)]
pub struct LinkTx {
    cfg: LinkConfig,
    peer: Weak<dyn FrameSink>,
    state: Arc<Mutex<TxState>>,
}

impl LinkTx {
    /// Create a transmitter delivering to `peer`.
    pub fn new(cfg: LinkConfig, peer: &Arc<dyn FrameSink>) -> Self {
        LinkTx {
            cfg,
            peer: Arc::downgrade(peer),
            state: Arc::new(Mutex::new(TxState {
                busy_until: SimTime::ZERO,
                throughput: Throughput::new(),
                faults: FaultState::new(&cfg.faults),
                frames_sent: 0,
                frames_dropped: 0,
                frames_corrupted: 0,
                frames_delayed: 0,
                max_backlog: SimDuration::ZERO,
                name: None,
                registered: false,
            })),
        }
    }

    /// Name this link for telemetry. On the next [`LinkTx::send`] a
    /// `<name>.backlog_ns` time series (output-queue depth expressed as
    /// nanoseconds of queued wire time) is registered with the
    /// simulation's registry.
    pub fn set_name(&self, name: impl Into<String>) {
        self.state.lock().name = Some(name.into());
    }

    /// Queue `frame` for transmission. Serialization begins when the wire
    /// frees up; delivery fires at `start + serialization + propagation`.
    pub fn send(&self, s: &dyn SimAccess, frame: Frame) {
        let Some(peer) = self.peer.upgrade() else {
            return; // peer torn down; drop the frame silently
        };
        let now = s.now();
        let tx_time = SimDuration::for_bits_at_rate(frame.wire_bits(), self.cfg.bandwidth_bps);
        let (start, deliver_at, fate) = {
            let mut st = self.state.lock();
            let start = now.max(st.busy_until);
            let backlog = start.since(now);
            st.max_backlog = st.max_backlog.max(backlog);
            st.busy_until = start + tx_time;
            st.frames_sent += 1;
            st.throughput
                .record(s.now(), frame.payload.wire_len() as u64);
            // Failure injection. Dropped/corrupted frames still occupy the
            // wire (corruption means the FCS fails at the receiver) but
            // are never delivered; delayed frames may be overtaken.
            let frames_sent = st.frames_sent;
            let fate = st.faults.decide(&self.cfg.faults, start, frames_sent);
            match fate {
                FaultDecision::Drop | FaultDecision::Down => st.frames_dropped += 1,
                FaultDecision::Corrupt => st.frames_corrupted += 1,
                FaultDecision::Deliver { extra_delay } if !extra_delay.is_zero() => {
                    st.frames_delayed += 1
                }
                FaultDecision::Deliver { .. } => {}
            }
            (start, st.busy_until + self.cfg.propagation, fate)
        };
        self.maybe_register_telemetry(s);
        let extra_delay = match fate {
            FaultDecision::Deliver { extra_delay } => Some(extra_delay),
            _ => None,
        };
        if emp_trace::ENABLED {
            // Stamped at serialization start, which may be in the future
            // when the frame queues behind earlier traffic.
            let kind = match fate {
                FaultDecision::Drop => emp_trace::EventKind::FrameDrop,
                FaultDecision::Corrupt => emp_trace::EventKind::FrameCorrupt,
                FaultDecision::Down => emp_trace::EventKind::LinkDown,
                FaultDecision::Deliver { .. } => emp_trace::EventKind::WireTx,
            };
            s.tracer().emit(
                start.nanos(),
                frame.src.0,
                emp_trace::NO_CONN,
                kind,
                frame.payload.wire_len() as u64,
                u64::from(frame.dst.0),
            );
            if let Some(extra) = extra_delay.filter(|d| !d.is_zero()) {
                s.tracer().emit(
                    start.nanos(),
                    frame.src.0,
                    emp_trace::NO_CONN,
                    emp_trace::EventKind::FrameReorder,
                    frame.payload.wire_len() as u64,
                    extra.nanos(),
                );
            }
        }
        if let Some(extra) = extra_delay {
            s.schedule_at(deliver_at + extra, move |sim| {
                if emp_trace::ENABLED {
                    sim.tracer().emit(
                        sim.now().nanos(),
                        frame.dst.0,
                        emp_trace::NO_CONN,
                        emp_trace::EventKind::WireRx,
                        frame.payload.wire_len() as u64,
                        u64::from(frame.src.0),
                    );
                }
                peer.deliver(sim, frame);
            });
        }
    }

    /// Register the backlog series on the first named send. Runs with the
    /// state lock released so the registry's sampler (which locks state
    /// from its poll closure) can never see an inverted lock order.
    fn maybe_register_telemetry(&self, s: &dyn SimAccess) {
        let name = {
            let mut st = self.state.lock();
            if st.registered {
                return;
            }
            let Some(name) = st.name.clone() else {
                return;
            };
            st.registered = true;
            name
        };
        let state = Arc::downgrade(&self.state);
        s.telemetry()
            .register_sampled(&format!("{name}.backlog_ns"), move |t| {
                let st = state.upgrade()?;
                let g = st.try_lock()?;
                Some(g.busy_until.nanos().saturating_sub(t) as i64)
            });
    }

    /// Instant at which the wire becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.state.lock().busy_until
    }

    /// Total frames handed to this transmitter.
    pub fn frames_sent(&self) -> u64 {
        self.state.lock().frames_sent
    }

    /// Frames lost outright to the injected fault model (periodic,
    /// probabilistic or burst loss, and scheduled down windows).
    pub fn frames_dropped(&self) -> u64 {
        self.state.lock().frames_dropped
    }

    /// Frames corrupted in flight: they occupied the wire but failed the
    /// receiver's FCS check and were never delivered.
    pub fn frames_corrupted(&self) -> u64 {
        self.state.lock().frames_corrupted
    }

    /// Frames held back by injected reorder/jitter delay.
    pub fn frames_delayed(&self) -> u64 {
        self.state.lock().frames_delayed
    }

    /// Snapshot of all per-link counters.
    pub fn stats(&self) -> LinkStats {
        let st = self.state.lock();
        LinkStats {
            frames_sent: st.frames_sent,
            frames_dropped: st.frames_dropped,
            frames_corrupted: st.frames_corrupted,
            frames_delayed: st.frames_delayed,
            max_backlog: st.max_backlog,
            payload_bytes: st.throughput.bytes(),
            payload_mbps: st.throughput.mbps(),
        }
    }

    /// Longest time a frame waited behind earlier traffic.
    pub fn max_backlog(&self) -> SimDuration {
        self.state.lock().max_backlog
    }

    /// Payload throughput observed so far (Mbps), if any traffic flowed.
    pub fn payload_mbps(&self) -> Option<f64> {
        self.state.lock().throughput.mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::frame::{EtherType, MacAddr, Payload};

    struct Recorder {
        arrivals: Mutex<Vec<(u64, usize)>>,
    }

    impl FrameSink for Recorder {
        fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
            self.arrivals
                .lock()
                .push((s.now().nanos(), frame.payload.wire_len()));
        }
    }

    fn frame(len: usize) -> Frame {
        Frame {
            src: MacAddr(0),
            dst: MacAddr(1),
            ethertype: EtherType::EMP,
            payload: Payload::new((), len),
        }
    }

    #[test]
    fn single_frame_timing() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::from_nanos(100),
                faults: FaultPlan::none(),
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        sim.run();
        // 84 bytes on wire = 672 ns serialization + 100 ns propagation.
        assert_eq!(*rec.arrivals.lock(), vec![(772, 4)]);
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                faults: FaultPlan::none(),
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            // Two MTU frames sent in the same instant: the second must wait
            // a full serialization time (12304 ns) behind the first.
            tx2.send(s, frame(1500));
            tx2.send(s, frame(1500));
        });
        sim.run();
        assert_eq!(*rec.arrivals.lock(), vec![(12_304, 1500), (24_608, 1500)]);
        assert_eq!(tx.frames_sent(), 2);
        assert_eq!(tx.max_backlog(), SimDuration::from_nanos(12_304));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                faults: FaultPlan::none(),
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        let tx3 = tx.clone();
        sim.schedule_at(SimTime::from_nanos(100_000), move |s| tx3.send(s, frame(4)));
        sim.run();
        assert_eq!(*rec.arrivals.lock(), vec![(672, 4), (100_672, 4)]);
        assert_eq!(tx.max_backlog(), SimDuration::ZERO);
    }

    #[test]
    fn loss_injection_drops_every_nth_frame() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                faults: FaultPlan::drop_every(3),
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            for _ in 0..9 {
                tx2.send(s, frame(4));
            }
        });
        sim.run();
        assert_eq!(rec.arrivals.lock().len(), 6, "frames 3, 6, 9 dropped");
        assert_eq!(tx.frames_dropped(), 3);
        assert_eq!(tx.frames_sent(), 9);
    }

    fn blast(plan: FaultPlan, n: usize) -> (Arc<Recorder>, LinkTx) {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(
            LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::ZERO,
                faults: plan,
            },
            &sink,
        );
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| {
            for _ in 0..n {
                tx2.send(s, frame(4));
            }
        });
        sim.run();
        (rec, tx)
    }

    #[test]
    fn probabilistic_loss_is_seeded_and_reproducible() {
        let plan = FaultPlan::seeded(99).with_drop_prob(0.3);
        let (rec_a, tx_a) = blast(plan, 200);
        let (rec_b, tx_b) = blast(plan, 200);
        assert_eq!(*rec_a.arrivals.lock(), *rec_b.arrivals.lock());
        assert_eq!(tx_a.frames_dropped(), tx_b.frames_dropped());
        let dropped = tx_a.frames_dropped();
        assert!(
            (30..90).contains(&dropped),
            "p=0.3 over 200 frames dropped {dropped}"
        );
        assert_eq!(
            rec_a.arrivals.lock().len() as u64 + dropped,
            tx_a.frames_sent()
        );
    }

    #[test]
    fn corruption_is_counted_separately_from_drops() {
        let plan = FaultPlan::seeded(5).with_corrupt_prob(0.25);
        let (rec, tx) = blast(plan, 200);
        let stats = tx.stats();
        assert_eq!(stats.frames_dropped, 0);
        assert!(
            (20..80).contains(&stats.frames_corrupted),
            "p=0.25 over 200 frames corrupted {}",
            stats.frames_corrupted
        );
        assert_eq!(tx.frames_corrupted(), stats.frames_corrupted);
        assert_eq!(
            rec.arrivals.lock().len() as u64 + stats.frames_corrupted,
            stats.frames_sent
        );
    }

    #[test]
    fn reorder_injection_lets_later_frames_overtake() {
        let plan = FaultPlan::seeded(11).with_reorder(0.5, SimDuration::from_micros(100));
        let (rec, tx) = blast(plan, 50);
        let arrivals = rec.arrivals.lock();
        assert_eq!(arrivals.len(), 50, "reordering must not lose frames");
        assert!(tx.frames_delayed() > 0, "no reorder delays fired");
        // The recorder logs in delivery order; a delayed frame makes the
        // timestamp sequence non-monotonic relative to send order only if
        // something actually overtook. With per-frame extra delay the
        // arrival times are no longer the uniform back-to-back spacing.
        let times: Vec<u64> = arrivals.iter().map(|(t, _)| *t).collect();
        let spacing: Vec<u64> = times
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]))
            .collect();
        assert!(
            spacing.iter().any(|&gap| gap != spacing[0]),
            "delays did not perturb delivery schedule"
        );
    }

    #[test]
    fn down_window_drops_frames_while_link_is_down() {
        // Down for the first 10 µs of every 100 µs; blasting at t=0 the
        // first frames fall inside the outage.
        let plan = FaultPlan::seeded(1)
            .with_down_schedule(SimDuration::from_micros(100), SimDuration::from_micros(10));
        let (rec, tx) = blast(plan, 100);
        assert!(tx.frames_dropped() > 0, "no frames lost to the outage");
        assert_eq!(
            rec.arrivals.lock().len() as u64 + tx.frames_dropped(),
            tx.frames_sent()
        );
    }

    #[test]
    fn dropped_peer_discards_frames() {
        let sim = Sim::new();
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let sink: Arc<dyn FrameSink> = rec.clone();
        let tx = LinkTx::new(LinkConfig::default(), &sink);
        drop(sink);
        drop(rec); // peer fully gone
        let tx2 = tx.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(4)));
        sim.run(); // must not panic
        assert_eq!(tx.frames_sent(), 0);
    }
}
