//! Thread-backed simulated processes with blocking semantics.
//!
//! Each simulated process runs on a dedicated OS thread, but in **strict
//! alternation** with the event loop: a rendezvous-channel token travels
//! between the scheduler and the process, so exactly one of them executes at
//! any instant. This gives application code (ftp clients, web servers, ...)
//! natural blocking `read()`/`write()` style without an async runtime, while
//! keeping the whole simulation deterministic.
//!
//! The 1:1 park/wake discipline: a parked process has *exactly one* pending
//! wake-up — scheduled either by [`ProcessCtx::delay`] or by the sync
//! primitive it blocked on. Blocking primitives outside this crate must be
//! built from [`crate::sync`] types (or `delay`), never by scheduling raw
//! wakes, which is why `SimShared::schedule_wake` is crate-private.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::engine::{SimAccess, SimShared};
use crate::error::{SimError, SimResult};
use crate::time::SimDuration;

/// Identifier of a simulated process (index into the process table).
pub type ProcId = usize;

enum Resume {
    Run,
    Terminate,
}

enum YieldMsg {
    /// The process blocked; a wake-up event is already scheduled or will be
    /// scheduled by whichever primitive it blocked on.
    Parked,
    /// The process function returned.
    Finished(SimResult<()>),
    /// The process function panicked; the payload is the panic message.
    Panicked(String),
}

struct ProcSlot {
    name: String,
    resume_tx: Sender<Resume>,
    yield_rx: Receiver<YieldMsg>,
    join: Option<JoinHandle<()>>,
    finished: bool,
}

/// Handle given to a process closure; provides time, scheduling and the
/// blocking primitives.
pub struct ProcessCtx {
    shared: Weak<SimShared>,
    pid: ProcId,
    name: String,
    resume_rx: Receiver<Resume>,
    yield_tx: Sender<YieldMsg>,
}

impl SimAccess for ProcessCtx {
    fn shared(&self) -> Arc<SimShared> {
        self.shared
            .upgrade()
            .expect("simulation dropped while process was running")
    }
}

impl ProcessCtx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The name given at spawn time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consume `d` of simulated time (models CPU work or an explicit sleep).
    pub fn delay(&self, d: SimDuration) -> SimResult<()> {
        let shared = self.shared();
        let at = shared.now() + d;
        shared.schedule_wake(self.pid, at);
        self.park()
    }

    /// Yield the CPU: re-run this process after all events already queued
    /// for the current instant.
    pub fn yield_now(&self) -> SimResult<()> {
        let shared = self.shared();
        let now = shared.now();
        shared.schedule_wake(self.pid, now);
        self.park()
    }

    /// Spawn a sibling process starting at the current simulated time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut ProcessCtx) -> SimResult<()> + Send + 'static,
    {
        let shared = self.shared();
        let pid = ProcTable::spawn(&shared, name.into(), f);
        shared.schedule_wake(pid, shared.now());
        pid
    }

    /// Park this process. A wake-up must already be arranged (crate-internal;
    /// see module docs for the discipline).
    pub(crate) fn park(&self) -> SimResult<()> {
        self.yield_tx
            .send(YieldMsg::Parked)
            .map_err(|_| SimError::Terminated)?;
        match self.resume_rx.recv() {
            Ok(Resume::Run) => Ok(()),
            _ => Err(SimError::Terminated),
        }
    }
}

/// What happened when a process was stepped.
pub(crate) enum StepOutcome {
    Parked,
    Finished,
    Failed(String),
}

/// A single scheduler→process handoff, detached from the process-table lock.
pub(crate) struct Step {
    resume_tx: Sender<Resume>,
    yield_rx: Receiver<YieldMsg>,
    name: String,
}

/// Real-time watchdog for the scheduler/process rendezvous: a handoff
/// that takes this long means the strict-alternation protocol broke
/// (e.g. a process blocked outside the engine's primitives). Turning the
/// freeze into a panic with the process name makes such bugs debuggable.
const HANDOFF_WATCHDOG: std::time::Duration = std::time::Duration::from_secs(30);

impl Step {
    pub(crate) fn run(self) -> StepOutcome {
        match self.resume_tx.send_timeout(Resume::Run, HANDOFF_WATCHDOG) {
            Ok(()) => {}
            Err(crossbeam::channel::SendTimeoutError::Timeout(_)) => {
                panic!(
                    "engine handoff stuck: process '{}' did not accept its wake-up                      within {HANDOFF_WATCHDOG:?} — it is blocked outside the                      simulation's blocking primitives",
                    self.name
                );
            }
            Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => {
                // Thread gone (should not happen for a non-finished slot).
                return StepOutcome::Finished;
            }
        }
        let received = match self.yield_rx.recv_timeout(HANDOFF_WATCHDOG) {
            Ok(msg) => Ok(msg),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                panic!(
                    "engine handoff stuck: process '{}' was resumed but did not                      yield within {HANDOFF_WATCHDOG:?} — it is blocked outside                      the simulation's blocking primitives",
                    self.name
                );
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(()),
        };
        match received {
            Ok(YieldMsg::Parked) => StepOutcome::Parked,
            Ok(YieldMsg::Finished(Ok(()))) | Ok(YieldMsg::Finished(Err(SimError::Terminated))) => {
                StepOutcome::Finished
            }
            Ok(YieldMsg::Finished(Err(e))) => {
                StepOutcome::Failed(format!("process '{}': {e}", self.name))
            }
            Ok(YieldMsg::Panicked(msg)) => {
                StepOutcome::Failed(format!("process '{}' panicked: {msg}", self.name))
            }
            Err(()) => StepOutcome::Finished,
        }
    }
}

/// Registry of all processes in a simulation.
pub(crate) struct ProcTable {
    slots: Vec<ProcSlot>,
}

impl ProcTable {
    pub(crate) fn new() -> Self {
        ProcTable { slots: Vec::new() }
    }

    /// Spawn the backing thread and register the slot. The new process does
    /// not run until its first wake event fires.
    pub(crate) fn spawn<F>(shared: &Arc<SimShared>, name: String, f: F) -> ProcId
    where
        F: FnOnce(&mut ProcessCtx) -> SimResult<()> + Send + 'static,
    {
        let (resume_tx, resume_rx) = bounded::<Resume>(0);
        let (yield_tx, yield_rx) = bounded::<YieldMsg>(0);
        let mut table = shared.procs.lock();
        let pid = table.slots.len();
        let mut ctx = ProcessCtx {
            shared: Arc::downgrade(shared),
            pid,
            name: name.clone(),
            resume_rx,
            yield_tx,
        };
        let join = std::thread::Builder::new()
            .name(format!("sim-proc-{pid}-{name}"))
            .spawn(move || {
                // Wait for the first wake; Terminate here means the sim was
                // dropped before this process ever ran.
                match ctx.resume_rx.recv() {
                    Ok(Resume::Run) => {}
                    _ => return,
                }
                let result = catch_unwind(AssertUnwindSafe(|| (f)(&mut ctx)));
                let msg = match result {
                    Ok(res) => YieldMsg::Finished(res),
                    // `&*payload`: deref the Box explicitly, otherwise the
                    // Box itself coerces to `dyn Any` and downcasts fail.
                    Err(payload) => YieldMsg::Panicked(panic_message(&*payload)),
                };
                // Ignore failure: during teardown the receiver is dropped.
                let _ = ctx.yield_tx.send(msg);
            })
            .expect("failed to spawn simulated-process thread");
        table.slots.push(ProcSlot {
            name,
            resume_tx,
            yield_rx,
            join: Some(join),
            finished: false,
        });
        pid
    }

    /// Prepare to step `pid`; returns `None` if it already finished.
    pub(crate) fn begin_step(&self, pid: ProcId) -> Option<Step> {
        let slot = &self.slots[pid];
        if slot.finished {
            return None;
        }
        Some(Step {
            resume_tx: slot.resume_tx.clone(),
            yield_rx: slot.yield_rx.clone(),
            name: slot.name.clone(),
        })
    }

    pub(crate) fn mark_finished(&mut self, pid: ProcId) {
        let slot = &mut self.slots[pid];
        slot.finished = true;
        if let Some(join) = slot.join.take() {
            let _ = join.join();
        }
    }

    /// Terminate every live process and join its thread. Called from
    /// `Sim::drop`; afterwards the table is empty.
    pub(crate) fn terminate_all(&mut self) {
        for slot in self.slots.drain(..) {
            if !slot.finished {
                // The thread is parked in a recv; the rendezvous send hands
                // it the Terminate token.
                let _ = slot.resume_tx.send(Resume::Terminate);
            }
            // Drop our end of the yield channel so a final Finished send
            // errors out instead of blocking forever.
            drop(slot.yield_rx);
            if let Some(join) = slot.join {
                let _ = join.join();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, SimAccessExt};
    use crate::time::SimTime;
    use parking_lot::Mutex;

    #[test]
    fn delay_advances_process_time() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        sim.spawn("delayer", move |ctx| {
            for _ in 0..3 {
                ctx.delay(SimDuration::from_micros(10))?;
                log2.lock().push(ctx.now().nanos());
            }
            Ok(())
        });
        sim.run();
        assert_eq!(*log.lock(), vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let log = Arc::clone(&log);
            sim.spawn(name, move |ctx| {
                for _ in 0..4 {
                    ctx.delay(SimDuration::from_nanos(step))?;
                    log.lock().push((ctx.name().to_string(), ctx.now().nanos()));
                }
                Ok(())
            });
        }
        sim.run();
        let got: Vec<(String, u64)> = log.lock().clone();
        let expect: Vec<(String, u64)> = vec![
            ("a".into(), 3),
            ("b".into(), 5),
            ("a".into(), 6),
            ("a".into(), 9),
            ("b".into(), 10),
            ("a".into(), 12),
            ("b".into(), 15),
            ("b".into(), 20),
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn spawn_from_process_starts_at_current_time() {
        let sim = Sim::new();
        let seen = Arc::new(Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        sim.spawn("parent", move |ctx| {
            ctx.delay(SimDuration::from_micros(7))?;
            let seen3 = Arc::clone(&seen2);
            ctx.spawn("child", move |ctx| {
                *seen3.lock() = Some(ctx.now().nanos());
                Ok(())
            });
            Ok(())
        });
        sim.run();
        assert_eq!(*seen.lock(), Some(7_000));
    }

    #[test]
    fn yield_now_runs_after_queued_events() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log_p = Arc::clone(&log);
        let log_e = Arc::clone(&log);
        sim.spawn("yielder", move |ctx| {
            log_p.lock().push("proc-before");
            ctx.yield_now()?;
            log_p.lock().push("proc-after");
            Ok(())
        });
        sim.schedule_at(SimTime::ZERO, move |_| log_e.lock().push("event"));
        sim.run();
        assert_eq!(*log.lock(), vec!["proc-before", "event", "proc-after"]);
    }

    #[test]
    fn dropping_sim_terminates_parked_processes() {
        let sim = Sim::new();
        let cleanly_terminated = Arc::new(Mutex::new(false));
        let flag = Arc::clone(&cleanly_terminated);
        sim.spawn("sleeper", move |ctx| {
            // Park forever: the sim is dropped before this wake fires.
            let res = ctx.delay(SimDuration::from_secs(10_000));
            if res == Err(SimError::Terminated) {
                *flag.lock() = true;
            }
            res
        });
        sim.run_until(SimTime::from_nanos(1));
        drop(sim); // must not hang, must join the thread
        assert!(*cleanly_terminated.lock());
    }

    #[test]
    fn never_started_process_is_reclaimed() {
        let sim = Sim::new();
        sim.spawn("never-runs", |_ctx| Ok(()));
        drop(sim); // process never stepped; drop must still join it
    }

    #[test]
    #[should_panic(expected = "process 'bomber' panicked: boom")]
    fn process_panic_propagates_to_run() {
        let sim = Sim::new();
        sim.spawn("bomber", |_ctx| panic!("boom"));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "process 'failer': application error: gave up")]
    fn process_app_error_propagates_to_run() {
        let sim = Sim::new();
        sim.spawn("failer", |_ctx| Err(SimError::app("gave up")));
        sim.run();
    }
}
