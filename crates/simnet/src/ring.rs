//! Completion-queue I/O: submission/completion rings over registered
//! buffers, shared by every stack in the workspace.
//!
//! The readiness model ([`crate::readiness`]) tells an application *when*
//! an operation would succeed; the completion model submits the operation
//! itself and reports *that it finished*. That is the modern shape of the
//! paper's argument — once socket processing leaves the kernel, the
//! natural steady state is a pool of application-registered buffers the
//! stack completes into directly (io_uring-style), not a parked reader
//! per socket. Both the sockets-over-EMP substrate and the kernel TCP
//! baseline express their rings in these types so the two stacks can be
//! differentially tested against one semantic contract.
//!
//! The contract, in brief:
//!
//! * An application registers a **buffer pool** and integer-id **targets**
//!   (connections, listeners), then pushes [`Sqe`]s — `Accept`, `Read`,
//!   `Write`, `Close` — each tagged with caller-chosen `user_data`.
//! * Ops on the **same target complete in submission order** (FIFO per
//!   target); ops on different targets may interleave.
//! * Every admitted op completes **exactly once** with one [`Cqe`];
//!   nothing is lost, duplicated, or silently dropped.
//! * A buffer named by an op is **owned by the ring** from push until the
//!   matching completion is reaped; pushing a second op naming it is the
//!   typed error [`RingError::BufInFlight`], never aliasing.
//! * The CQ **cannot overflow silently**: an op is only admitted while
//!   the ring can guarantee a CQ slot for it
//!   ([`RingError::CqOverflow`] is backpressure at push time).
//! * Reads complete with at least one byte, or — at end of stream — with
//!   [`CqeResult::Close`] carrying `final_seq`, the total bytes the
//!   connection delivered over its lifetime. Writes complete with the
//!   count the stack accepted on first progress (short writes are
//!   `write(2)`-legal results, not errors).
//!
//! [`RingCore`] is the whole state machine, generic over a [`RingDriver`]
//! (the stack's nonblocking ops plus one blocking wait), so the two
//! stacks share every queueing, ordering, and backpressure decision by
//! construction.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use emp_trace::telemetry::Gauge;

use crate::engine::SimAccess;
use crate::error::SimResult;
use crate::process::ProcessCtx;
use crate::readiness::Interest;
use crate::time::{SimDuration, SimTime};

/// Ring geometry and registered-buffer-pool shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingConfig {
    /// Submission-queue depth: ops pushed but not yet submitted.
    pub sq_depth: usize,
    /// Completion-queue depth — also the cap on admitted-but-unreaped
    /// ops, since every admitted op is guaranteed a CQ slot.
    pub cq_depth: usize,
    /// Registered buffers in the pool.
    pub buf_count: usize,
    /// Bytes per registered buffer.
    pub buf_size: usize,
    /// Byte budget for the registered pool: `Some(cap)` makes
    /// [`RingCore::try_new`] refuse a pool whose `buf_count × buf_size`
    /// exceeds `cap` with the typed error [`RingError::PoolExhausted`],
    /// instead of pinning unbounded memory. `None` (the default) keeps
    /// registration unbudgeted.
    pub max_registered_bytes: Option<usize>,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            sq_depth: 64,
            cq_depth: 128,
            buf_count: 64,
            buf_size: 4096,
            max_registered_bytes: None,
        }
    }
}

impl RingConfig {
    /// Bytes the registered pool pins.
    pub fn registered_bytes(&self) -> usize {
        self.buf_count * self.buf_size
    }
}

/// One submitted operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingOp {
    /// Accept the next connection on a registered listener; completes
    /// with [`CqeResult::Accepted`] carrying the new connection's id.
    Accept {
        /// Registered listener id.
        listener: u32,
    },
    /// Read up to the buffer's size into registered buffer `buf`.
    Read {
        /// Registered connection id.
        conn: u32,
        /// Registered buffer the stack completes into.
        buf: u32,
    },
    /// Write the first `len` bytes of registered buffer `buf`.
    Write {
        /// Registered connection id.
        conn: u32,
        /// Registered buffer holding the bytes.
        buf: u32,
        /// How many of the buffer's bytes to write.
        len: u32,
    },
    /// Orderly close; queued behind this connection's earlier ops.
    Close {
        /// Registered connection id.
        conn: u32,
    },
}

impl RingOp {
    /// The registered buffer this op holds in flight, if any.
    pub fn buf(&self) -> Option<u32> {
        match *self {
            RingOp::Read { buf, .. } | RingOp::Write { buf, .. } => Some(buf),
            RingOp::Accept { .. } | RingOp::Close { .. } => None,
        }
    }
}

/// One submission-queue entry: the op plus caller-chosen tag echoed in
/// the matching [`Cqe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sqe {
    /// Caller-chosen tag, returned verbatim in the completion.
    pub user_data: u64,
    /// The operation.
    pub op: RingOp,
    /// Absolute per-op deadline. A deadlined op that reaches the head of
    /// its target's queue and *would block* past this instant completes
    /// as [`CqeResult::Failed`] with [`OpError::Timeout`] instead of
    /// stalling the target forever; an op whose progress is ready
    /// completes normally even past its deadline. `None` (the default)
    /// waits indefinitely.
    pub deadline: Option<SimTime>,
}

impl Sqe {
    /// An op with no deadline.
    pub fn new(user_data: u64, op: RingOp) -> Self {
        Sqe {
            user_data,
            op,
            deadline: None,
        }
    }

    /// Attach an absolute deadline (see [`Sqe::deadline`]).
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Submission-time errors: typed backpressure and validation. These are
/// push/ring-level failures — an admitted op never fails with one of
/// these; op failures surface as [`CqeResult::Failed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingError {
    /// The submission queue is full; submit and retry.
    SqFull,
    /// Admitting this op could overflow the completion queue; reap and
    /// retry. The CQ never drops a completion silently — this error *is*
    /// the overflow, surfaced at push time.
    CqOverflow,
    /// The named buffer is attached to an earlier op whose completion has
    /// not been reaped; the pool never aliases two in-flight ops.
    BufInFlight(u32),
    /// No such registered buffer.
    BadBuf(u32),
    /// No such registered connection or listener.
    BadTarget(u32),
    /// `len` exceeds the named buffer's size.
    BadLen {
        /// The buffer named by the op.
        buf: u32,
        /// The out-of-range length.
        len: u32,
    },
    /// A wait could never be satisfied: fewer completions pending (SQ +
    /// in-flight + CQ) than the wait asks for.
    Stalled,
    /// Registering the buffer pool would exceed the configured
    /// byte budget ([`RingConfig::max_registered_bytes`]).
    PoolExhausted {
        /// Bytes the requested pool would pin.
        requested: usize,
        /// The configured budget.
        cap: usize,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::SqFull => write!(f, "submission queue full"),
            RingError::CqOverflow => write!(f, "completion queue would overflow"),
            RingError::BufInFlight(b) => write!(f, "buffer {b} already in flight"),
            RingError::BadBuf(b) => write!(f, "no registered buffer {b}"),
            RingError::BadTarget(t) => write!(f, "no registered target {t}"),
            RingError::BadLen { buf, len } => {
                write!(f, "length {len} exceeds buffer {buf}")
            }
            RingError::Stalled => write!(f, "wait could never be satisfied"),
            RingError::PoolExhausted { requested, cap } => {
                write!(
                    f,
                    "registered pool of {requested} bytes exceeds budget {cap}"
                )
            }
        }
    }
}

impl std::error::Error for RingError {}

/// Stack-agnostic failure of an admitted op, carried in
/// [`CqeResult::Failed`]. Both stacks map their native errors into these
/// so completions compare equal across stacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpError {
    /// Nobody listening / backlog overflow.
    Refused,
    /// The target was closed locally (e.g. an op queued behind a
    /// `Close` on the same connection).
    Closed,
    /// Peer closed or reset mid-operation.
    PeerClosed,
    /// Message exceeds what the receiver accepts.
    TooBig,
    /// Invalid argument.
    Invalid,
    /// The op's deadline passed while it would still block (per-op
    /// deadlines, connect timeouts, peer watchdogs).
    Timeout,
    /// A resource budget refused the op: connection budget, reorder-
    /// buffer cap, or another byte-accounted limit.
    Exhausted,
    /// The op was cancelled by [`RingCore::cancel`] before it ran (the
    /// async front end maps dropped futures here). Later ops on the same
    /// target keep their submission order.
    Cancelled,
    /// Anything else.
    Other,
}

/// The payload of a completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeResult {
    /// `Accept` completed; the new connection is registered under `conn`.
    Accepted {
        /// The newly registered connection id.
        conn: u32,
    },
    /// `Read` completed with `len` bytes (≥ 1) in the named buffer.
    Read {
        /// The buffer the bytes landed in (ownership returns on reap).
        buf: u32,
        /// Bytes delivered.
        len: u32,
    },
    /// A `Read` met end-of-stream: the peer closed after `final_seq`
    /// total bytes, all of which have been delivered.
    Close {
        /// The connection that reached EOF.
        conn: u32,
        /// Total bytes this connection delivered over its lifetime.
        final_seq: u64,
    },
    /// `Write` completed; the stack accepted `len` bytes (short writes
    /// are legal results).
    Wrote {
        /// The buffer the bytes came from (ownership returns on reap).
        buf: u32,
        /// Bytes the stack accepted.
        len: u32,
    },
    /// `Close` completed; the connection id is retired.
    Closed {
        /// The retired connection id.
        conn: u32,
    },
    /// The op failed; any attached buffer still returns on reap.
    Failed {
        /// Why.
        err: OpError,
    },
}

/// One completion-queue entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cqe {
    /// The tag of the [`Sqe`] this completes.
    pub user_data: u64,
    /// What happened.
    pub result: CqeResult,
}

/// Point-in-time ring occupancy (also exported as telemetry gauges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingDepths {
    /// Ops pushed but not yet submitted.
    pub sq: usize,
    /// Ops submitted but not yet completed.
    pub in_flight: usize,
    /// Completions waiting to be reaped.
    pub cq: usize,
}

/// Monotonic op accounting (the no-lost/no-double-completion invariant:
/// `pushed == completed + sq + in_flight` and every reaped CQE came from
/// exactly one push).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingCounters {
    /// Sqes admitted by [`RingCore::push`].
    pub pushed: u64,
    /// Cqes produced.
    pub completed: u64,
    /// Cqes handed back by [`RingCore::reap`].
    pub reaped: u64,
}

/// A stack's nonblocking ops plus one blocking wait — everything
/// [`RingCore`] needs to drive a ring over it. Implementations: the EMP
/// substrate (`sockets-emp`, completing reads directly from NIC slots)
/// and the kernel TCP baseline (`kernel-tcp`, emulating the same
/// semantics over its nonblocking calls).
pub trait RingDriver {
    /// The stack's connection handle.
    type Conn;
    /// The stack's listener handle.
    type Listener;

    /// Nonblocking accept: `Ok(None)` when the backlog is empty.
    fn try_accept(
        &self,
        ctx: &ProcessCtx,
        l: &Self::Listener,
    ) -> SimResult<Result<Option<Self::Conn>, OpError>>;

    /// Nonblocking read into `buf`: `Ok(Some(0))` is end-of-stream,
    /// `Ok(None)` means a blocking read would park.
    fn try_read(
        &self,
        ctx: &ProcessCtx,
        c: &Self::Conn,
        buf: &mut [u8],
    ) -> SimResult<Result<Option<usize>, OpError>>;

    /// Nonblocking write: the count accepted right now (≥ 1), or
    /// `Ok(None)` when no byte could be taken.
    fn try_write(
        &self,
        ctx: &ProcessCtx,
        c: &Self::Conn,
        data: &[u8],
    ) -> SimResult<Result<Option<usize>, OpError>>;

    /// Orderly close of a connection. Never blocks indefinitely.
    fn close(&self, ctx: &ProcessCtx, c: Self::Conn) -> SimResult<()>;

    /// Close a registered listener at ring teardown.
    fn close_listener(&self, ctx: &ProcessCtx, l: Self::Listener) -> SimResult<()>;

    /// Park until one of the connections could make the named progress,
    /// a listener could accept, or `timeout` elapses (the ring passes the
    /// margin to its earliest head-op deadline). Called only with at
    /// least one entry.
    fn wait(
        &self,
        ctx: &ProcessCtx,
        conns: &[(&Self::Conn, Interest)],
        listeners: &[&Self::Listener],
        timeout: Option<SimDuration>,
    ) -> SimResult<()>;

    /// Register a task waker to fire when one of the connections could
    /// make the named progress or a listener could accept — the async
    /// executor's completion-layer wake source. Wakes may be spurious;
    /// the ring re-drives and re-registers on every poll. Returns
    /// `Ok(false)` when the driver has no waker support (the default),
    /// in which case [`RingCore::register_waker`] reports the ring as
    /// unpollable rather than losing wakeups.
    fn register_waker(
        &self,
        _ctx: &ProcessCtx,
        _conns: &[(&Self::Conn, Interest)],
        _listeners: &[&Self::Listener],
        _waker: &std::task::Waker,
    ) -> SimResult<bool> {
        Ok(false)
    }
}

enum BufState {
    /// Application-owned: may be filled and named by a new op.
    Free,
    /// Ring-owned: named by a pushed op whose CQE is not yet reaped.
    Attached,
}

struct ConnEntry<C> {
    conn: C,
    /// Total bytes delivered to completions on this connection — the
    /// `final_seq` reported at EOF, tracked here (not by the stack) so
    /// both stacks agree by construction.
    rx_bytes: u64,
    /// Submitted ops, FIFO; only the head is ever attempted.
    q: VecDeque<Sqe>,
}

struct ListenerEntry<L> {
    l: L,
    q: VecDeque<Sqe>,
}

/// Gauges exporting ring occupancy through the telemetry registry
/// (sampled automatically into time series of the same names).
struct RingGauges {
    sq: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    cq: Arc<Gauge>,
}

/// The completion-ring state machine, generic over the stack underneath.
///
/// Not `Sync`: a ring belongs to the one simulated process driving it,
/// like an io_uring belongs to its submitter.
pub struct RingCore<D: RingDriver> {
    cfg: RingConfig,
    driver: D,
    label: String,
    bufs: Vec<Vec<u8>>,
    buf_state: Vec<BufState>,
    conns: BTreeMap<u32, ConnEntry<D::Conn>>,
    listeners: BTreeMap<u32, ListenerEntry<D::Listener>>,
    next_conn: u32,
    next_listener: u32,
    sq: VecDeque<Sqe>,
    /// Completions plus the buffer each returns to the app when reaped.
    cq: VecDeque<(Cqe, Option<u32>)>,
    in_flight: usize,
    counters: RingCounters,
    gauges: Option<RingGauges>,
}

impl<D: RingDriver> RingCore<D> {
    /// A fresh ring over `driver`. `label` namespaces the telemetry
    /// gauges (`ring.<label>.sq` / `.in_flight` / `.cq`). Panics when
    /// the pool exceeds [`RingConfig::max_registered_bytes`]; use
    /// [`RingCore::try_new`] for the typed error.
    pub fn new(driver: D, cfg: RingConfig, label: impl Into<String>) -> Self {
        Self::try_new(driver, cfg, label).expect("ring registered-buffer budget")
    }

    /// [`RingCore::new`], but a pool over the configured byte budget is
    /// the typed error [`RingError::PoolExhausted`] instead of a panic —
    /// admission control at registration time.
    pub fn try_new(
        driver: D,
        cfg: RingConfig,
        label: impl Into<String>,
    ) -> Result<Self, RingError> {
        assert!(cfg.sq_depth >= 1 && cfg.cq_depth >= 1, "degenerate ring");
        assert!(cfg.buf_count >= 1 && cfg.buf_size >= 1, "degenerate pool");
        if let Some(cap) = cfg.max_registered_bytes {
            if cfg.registered_bytes() > cap {
                return Err(RingError::PoolExhausted {
                    requested: cfg.registered_bytes(),
                    cap,
                });
            }
        }
        Ok(RingCore {
            driver,
            label: label.into(),
            bufs: (0..cfg.buf_count)
                .map(|_| vec![0u8; cfg.buf_size])
                .collect(),
            buf_state: (0..cfg.buf_count).map(|_| BufState::Free).collect(),
            conns: BTreeMap::new(),
            listeners: BTreeMap::new(),
            next_conn: 0,
            next_listener: 0,
            sq: VecDeque::with_capacity(cfg.sq_depth),
            cq: VecDeque::with_capacity(cfg.cq_depth),
            in_flight: 0,
            counters: RingCounters {
                pushed: 0,
                completed: 0,
                reaped: 0,
            },
            gauges: None,
            cfg,
        })
    }

    /// The geometry this ring was built with.
    pub fn cfg(&self) -> RingConfig {
        self.cfg
    }

    /// The driver underneath (stack-specific accessors).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Register a connection; its id is valid in `Read`/`Write`/`Close`
    /// ops until a `Close` completion retires it.
    pub fn add_conn(&mut self, conn: D::Conn) -> u32 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            ConnEntry {
                conn,
                rx_bytes: 0,
                q: VecDeque::new(),
            },
        );
        id
    }

    /// Register a listener; its id is valid in `Accept` ops.
    pub fn add_listener(&mut self, l: D::Listener) -> u32 {
        let id = self.next_listener;
        self.next_listener += 1;
        self.listeners.insert(
            id,
            ListenerEntry {
                l,
                q: VecDeque::new(),
            },
        );
        id
    }

    /// Borrow a registered connection (stack-specific inspection).
    pub fn conn(&self, id: u32) -> Option<&D::Conn> {
        self.conns.get(&id).map(|e| &e.conn)
    }

    /// Registered connections currently live.
    pub fn live_conns(&self) -> usize {
        self.conns.len()
    }

    /// Read access to a registered buffer (the bytes a `Read` completed
    /// into, or what a `Write` will send).
    pub fn buf(&self, id: u32) -> Option<&[u8]> {
        self.bufs.get(id as usize).map(Vec::as_slice)
    }

    /// Copy `data` into the front of a free registered buffer (the
    /// staging step before a `Write` op names it).
    pub fn fill(&mut self, id: u32, data: &[u8]) -> Result<(), RingError> {
        let Some(b) = self.bufs.get_mut(id as usize) else {
            return Err(RingError::BadBuf(id));
        };
        if data.len() > b.len() {
            return Err(RingError::BadLen {
                buf: id,
                len: data.len() as u32,
            });
        }
        if matches!(self.buf_state[id as usize], BufState::Attached) {
            return Err(RingError::BufInFlight(id));
        }
        b[..data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Buffers currently application-owned. Equal to
    /// [`RingConfig::buf_count`] exactly when nothing is in flight or
    /// unreaped — the no-leak check the teardown tests assert.
    pub fn free_bufs(&self) -> usize {
        self.buf_state
            .iter()
            .filter(|s| matches!(s, BufState::Free))
            .count()
    }

    /// Current occupancy.
    pub fn depths(&self) -> RingDepths {
        RingDepths {
            sq: self.sq.len(),
            in_flight: self.in_flight,
            cq: self.cq.len(),
        }
    }

    /// Monotonic op accounting.
    pub fn counters(&self) -> RingCounters {
        self.counters
    }

    /// Completions admitted to but not yet retired from the ring — every
    /// one is guaranteed a CQ slot.
    fn committed(&self) -> usize {
        self.sq.len() + self.in_flight + self.cq.len()
    }

    /// Push one op onto the submission queue. All validation is here, as
    /// typed errors; an accepted op is guaranteed to complete exactly
    /// once. A buffer named by the op becomes ring-owned until its
    /// completion is reaped.
    pub fn push(&mut self, sqe: Sqe) -> Result<(), RingError> {
        if self.sq.len() >= self.cfg.sq_depth {
            return Err(RingError::SqFull);
        }
        if self.committed() >= self.cfg.cq_depth {
            return Err(RingError::CqOverflow);
        }
        match sqe.op {
            RingOp::Accept { listener } => {
                if !self.listeners.contains_key(&listener) {
                    return Err(RingError::BadTarget(listener));
                }
            }
            RingOp::Read { conn, buf } => {
                self.check_conn(conn)?;
                self.check_buf(buf, None)?;
            }
            RingOp::Write { conn, buf, len } => {
                self.check_conn(conn)?;
                self.check_buf(buf, Some(len))?;
            }
            RingOp::Close { conn } => self.check_conn(conn)?,
        }
        if let Some(b) = sqe.op.buf() {
            self.buf_state[b as usize] = BufState::Attached;
        }
        self.sq.push_back(sqe);
        self.counters.pushed += 1;
        Ok(())
    }

    fn check_conn(&self, conn: u32) -> Result<(), RingError> {
        if self.conns.contains_key(&conn) {
            Ok(())
        } else {
            Err(RingError::BadTarget(conn))
        }
    }

    fn check_buf(&self, buf: u32, len: Option<u32>) -> Result<(), RingError> {
        let Some(b) = self.bufs.get(buf as usize) else {
            return Err(RingError::BadBuf(buf));
        };
        if let Some(len) = len {
            if len as usize > b.len() {
                return Err(RingError::BadLen { buf, len });
            }
        }
        if matches!(self.buf_state[buf as usize], BufState::Attached) {
            return Err(RingError::BufInFlight(buf));
        }
        Ok(())
    }

    /// Move the SQ into the per-target queues and drive every target as
    /// far as it goes without blocking. Returns without parking.
    pub fn submit(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
        while let Some(sqe) = self.sq.pop_front() {
            self.in_flight += 1;
            match sqe.op {
                RingOp::Accept { listener } => {
                    // Validated at push; a listener is never retired
                    // while the ring lives.
                    self.listeners
                        .get_mut(&listener)
                        .expect("push validated listener")
                        .q
                        .push_back(sqe);
                }
                RingOp::Read { conn, .. } | RingOp::Write { conn, .. } | RingOp::Close { conn } => {
                    match self.conns.get_mut(&conn) {
                        Some(e) => e.q.push_back(sqe),
                        // The conn was retired by a Close that completed
                        // after this op was pushed: fail it, in order.
                        None => self.complete(
                            sqe,
                            CqeResult::Failed {
                                err: OpError::Closed,
                            },
                        ),
                    }
                }
            }
        }
        self.drive(ctx)?;
        self.publish_gauges(ctx);
        Ok(())
    }

    /// [`RingCore::submit`], then park until at least `min_complete`
    /// completions are reapable. [`RingError::Stalled`] when fewer ops
    /// than that are committed to the ring (the wait could never end).
    pub fn submit_and_wait(
        &mut self,
        ctx: &ProcessCtx,
        min_complete: usize,
    ) -> SimResult<Result<(), RingError>> {
        self.submit(ctx)?;
        while self.cq.len() < min_complete {
            if self.committed() < min_complete {
                return Ok(Err(RingError::Stalled));
            }
            self.park(ctx)?;
            self.drive(ctx)?;
            self.publish_gauges(ctx);
        }
        Ok(Ok(()))
    }

    /// Pop up to `max` completions. Each reaped CQE returns its attached
    /// buffer (if any) to application ownership.
    pub fn reap(&mut self, max: usize) -> Vec<Cqe> {
        let n = max.min(self.cq.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (cqe, buf) = self.cq.pop_front().expect("len checked");
            if let Some(b) = buf {
                self.buf_state[b as usize] = BufState::Free;
            }
            self.counters.reaped += 1;
            out.push(cqe);
        }
        out
    }

    /// Cancel the op tagged `user_data` if it has not yet run: it
    /// completes as [`CqeResult::Failed`] with [`OpError::Cancelled`]
    /// (any attached buffer returns to the application when that CQE is
    /// reaped — buffer ownership follows the normal completion path, so
    /// nothing leaks). Ops behind it on the same target keep their FIFO
    /// order. Returns `false` when no queued op carries the tag — it
    /// already completed (its CQE is in the CQ or was reaped) or never
    /// existed; distinguishing those is the caller's `user_data`
    /// discipline. The async front end calls this when an op future is
    /// dropped before completing.
    pub fn cancel(&mut self, ctx: &ProcessCtx, user_data: u64) -> bool {
        // Not yet submitted: still on the SQ.
        if let Some(pos) = self.sq.iter().position(|s| s.user_data == user_data) {
            let sqe = self.sq.remove(pos).expect("position found");
            self.in_flight += 1; // complete() expects an in-flight op
            self.complete(
                sqe,
                CqeResult::Failed {
                    err: OpError::Cancelled,
                },
            );
            self.publish_gauges(ctx);
            return true;
        }
        // Submitted: sitting in some target's FIFO.
        let found = |q: &VecDeque<Sqe>| q.iter().position(|s| s.user_data == user_data);
        let mut cancelled: Option<Sqe> = None;
        for e in self.conns.values_mut() {
            if let Some(pos) = found(&e.q) {
                cancelled = e.q.remove(pos);
                break;
            }
        }
        if cancelled.is_none() {
            for e in self.listeners.values_mut() {
                if let Some(pos) = found(&e.q) {
                    cancelled = e.q.remove(pos);
                    break;
                }
            }
        }
        match cancelled {
            Some(sqe) => {
                self.complete(
                    sqe,
                    CqeResult::Failed {
                        err: OpError::Cancelled,
                    },
                );
                self.publish_gauges(ctx);
                true
            }
            None => false,
        }
    }

    /// Register a task waker to fire when a stalled head op could make
    /// progress — the completion layer as an executor wake source.
    /// Returns the earliest head-op deadline so the caller can arm a
    /// timer for expiry, or `Ok(None)` when nothing is stalled (no
    /// registration happens; the caller should reap instead of sleeping).
    /// Wakes may be spurious: re-drive ([`RingCore::submit`]) and
    /// re-register on every poll.
    ///
    /// Panics if the driver lacks waker support (the base
    /// [`RingDriver::register_waker`]) — a sleep would otherwise never
    /// end.
    pub fn register_waker(
        &mut self,
        ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> SimResult<Option<SimTime>> {
        let mut conns: Vec<(&D::Conn, Interest)> = Vec::new();
        let mut next_deadline: Option<SimTime> = None;
        let note = |d: Option<SimTime>, next: &mut Option<SimTime>| {
            if let Some(d) = d {
                *next = Some(next.map_or(d, |n: SimTime| if d < n { d } else { n }));
            }
        };
        for e in self.conns.values() {
            let head = e.q.front();
            let interest = match head.map(|s| s.op) {
                Some(RingOp::Read { .. }) => Interest::READABLE,
                Some(RingOp::Write { .. }) => Interest::WRITABLE,
                _ => continue,
            };
            note(head.and_then(|s| s.deadline), &mut next_deadline);
            conns.push((&e.conn, interest));
        }
        let mut listeners: Vec<&D::Listener> = Vec::new();
        for e in self.listeners.values() {
            let Some(head) = e.q.front() else { continue };
            note(head.deadline, &mut next_deadline);
            listeners.push(&e.l);
        }
        if conns.is_empty() && listeners.is_empty() {
            return Ok(None);
        }
        let supported = self.driver.register_waker(ctx, &conns, &listeners, waker)?;
        assert!(supported, "ring driver has no waker support");
        Ok(next_deadline)
    }

    /// Tear the ring down: fail every queued op (as [`OpError::Closed`]
    /// completions, reaped and discarded), close every live connection
    /// and listener through the driver, and release every buffer. After
    /// this, [`RingCore::free_bufs`] equals the pool size.
    pub fn shutdown(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
        // Queued-but-unsubmitted and submitted-but-unattempted ops fail.
        let sq: Vec<Sqe> = self.sq.drain(..).collect();
        for sqe in sq {
            self.in_flight += 1;
            self.complete(
                sqe,
                CqeResult::Failed {
                    err: OpError::Closed,
                },
            );
        }
        let conn_ids: Vec<u32> = self.conns.keys().copied().collect();
        for id in conn_ids {
            let mut e = self.conns.remove(&id).expect("listed");
            let q: Vec<Sqe> = e.q.drain(..).collect();
            for sqe in q {
                self.complete(
                    sqe,
                    CqeResult::Failed {
                        err: OpError::Closed,
                    },
                );
            }
            self.driver.close(ctx, e.conn)?;
        }
        let listener_ids: Vec<u32> = self.listeners.keys().copied().collect();
        for id in listener_ids {
            let mut e = self.listeners.remove(&id).expect("listed");
            let q: Vec<Sqe> = e.q.drain(..).collect();
            for sqe in q {
                self.complete(
                    sqe,
                    CqeResult::Failed {
                        err: OpError::Closed,
                    },
                );
            }
            self.driver.close_listener(ctx, e.l)?;
        }
        // Drain the CQ (releasing buffers); discard the failures.
        let backlog = self.cq.len();
        let _ = self.reap(backlog);
        self.publish_gauges(ctx);
        Ok(())
    }

    /// Record a completion for `sqe` (which must already count as in
    /// flight) and release bookkeeping. The attached buffer stays
    /// ring-owned until the CQE is reaped.
    fn complete(&mut self, sqe: Sqe, result: CqeResult) {
        debug_assert!(self.in_flight >= 1);
        debug_assert!(self.cq.len() < self.cfg.cq_depth, "admission bounds CQ");
        self.in_flight -= 1;
        self.counters.completed += 1;
        self.cq.push_back((
            Cqe {
                user_data: sqe.user_data,
                result,
            },
            sqe.op.buf(),
        ));
    }

    /// Attempt every target's head op until nothing makes progress.
    /// Targets are visited in id order each pass, so cross-target
    /// completion order is deterministic for a given readiness history.
    fn drive(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
        loop {
            let mut progressed = false;
            let listener_ids: Vec<u32> = self.listeners.keys().copied().collect();
            for id in listener_ids {
                progressed |= self.drive_listener(ctx, id)?;
            }
            let conn_ids: Vec<u32> = self.conns.keys().copied().collect();
            for id in conn_ids {
                progressed |= self.drive_conn(ctx, id)?;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    fn drive_listener(&mut self, ctx: &ProcessCtx, id: u32) -> SimResult<bool> {
        let mut progressed = false;
        loop {
            let Some(e) = self.listeners.get_mut(&id) else {
                return Ok(progressed);
            };
            let Some(&sqe) = e.q.front() else {
                return Ok(progressed);
            };
            match self.driver.try_accept(ctx, &e.l)? {
                Ok(Some(conn)) => {
                    e.q.pop_front();
                    let cid = self.add_conn(conn);
                    self.complete(sqe, CqeResult::Accepted { conn: cid });
                    progressed = true;
                }
                Ok(None) => {
                    if Self::deadline_due(ctx, &sqe) {
                        e.q.pop_front();
                        self.complete(
                            sqe,
                            CqeResult::Failed {
                                err: OpError::Timeout,
                            },
                        );
                        progressed = true;
                        continue;
                    }
                    return Ok(progressed);
                }
                Err(err) => {
                    e.q.pop_front();
                    self.complete(sqe, CqeResult::Failed { err });
                    progressed = true;
                }
            }
        }
    }

    fn drive_conn(&mut self, ctx: &ProcessCtx, id: u32) -> SimResult<bool> {
        let mut progressed = false;
        loop {
            let Some(e) = self.conns.get_mut(&id) else {
                return Ok(progressed);
            };
            let Some(&sqe) = e.q.front() else {
                return Ok(progressed);
            };
            match sqe.op {
                RingOp::Read { buf, .. } => {
                    // Split the borrow: lift the buffer out while the
                    // stack completes into it.
                    let mut storage = std::mem::take(&mut self.bufs[buf as usize]);
                    let r = self.driver.try_read(ctx, &e.conn, &mut storage);
                    self.bufs[buf as usize] = storage;
                    match r? {
                        Ok(Some(0)) => {
                            let final_seq = e.rx_bytes;
                            e.q.pop_front();
                            self.complete(
                                sqe,
                                CqeResult::Close {
                                    conn: id,
                                    final_seq,
                                },
                            );
                            progressed = true;
                        }
                        Ok(Some(n)) => {
                            e.rx_bytes += n as u64;
                            e.q.pop_front();
                            self.complete(sqe, CqeResult::Read { buf, len: n as u32 });
                            progressed = true;
                        }
                        Ok(None) => {
                            if Self::deadline_due(ctx, &sqe) {
                                e.q.pop_front();
                                self.complete(
                                    sqe,
                                    CqeResult::Failed {
                                        err: OpError::Timeout,
                                    },
                                );
                                progressed = true;
                                continue;
                            }
                            return Ok(progressed);
                        }
                        Err(err) => {
                            e.q.pop_front();
                            self.complete(sqe, CqeResult::Failed { err });
                            progressed = true;
                        }
                    }
                }
                RingOp::Write { buf, len, .. } => {
                    let storage = std::mem::take(&mut self.bufs[buf as usize]);
                    let r = self
                        .driver
                        .try_write(ctx, &e.conn, &storage[..len as usize]);
                    self.bufs[buf as usize] = storage;
                    match r? {
                        Ok(Some(n)) => {
                            e.q.pop_front();
                            self.complete(sqe, CqeResult::Wrote { buf, len: n as u32 });
                            progressed = true;
                        }
                        Ok(None) => {
                            if Self::deadline_due(ctx, &sqe) {
                                e.q.pop_front();
                                self.complete(
                                    sqe,
                                    CqeResult::Failed {
                                        err: OpError::Timeout,
                                    },
                                );
                                progressed = true;
                                continue;
                            }
                            return Ok(progressed);
                        }
                        Err(err) => {
                            e.q.pop_front();
                            self.complete(sqe, CqeResult::Failed { err });
                            progressed = true;
                        }
                    }
                }
                RingOp::Close { .. } => {
                    // Retire the connection; later ops queued on it fail
                    // in submission order.
                    let mut e = self.conns.remove(&id).expect("borrowed above");
                    e.q.pop_front();
                    let rest: Vec<Sqe> = e.q.drain(..).collect();
                    self.driver.close(ctx, e.conn)?;
                    self.complete(sqe, CqeResult::Closed { conn: id });
                    for later in rest {
                        self.complete(
                            later,
                            CqeResult::Failed {
                                err: OpError::Closed,
                            },
                        );
                    }
                    return Ok(true);
                }
                RingOp::Accept { .. } => unreachable!("accepts queue on listeners"),
            }
        }
    }

    /// Whether this op's deadline has passed (it completes as a
    /// [`OpError::Timeout`] failure instead of blocking further).
    fn deadline_due(ctx: &ProcessCtx, sqe: &Sqe) -> bool {
        sqe.deadline.is_some_and(|d| ctx.now() >= d)
    }

    /// Park until some stalled head op could make progress, or until the
    /// earliest head-op deadline so `drive` can expire it.
    fn park(&mut self, ctx: &ProcessCtx) -> SimResult<()> {
        let mut conns: Vec<(&D::Conn, Interest)> = Vec::new();
        let mut next_deadline: Option<SimTime> = None;
        let note = |d: Option<SimTime>, next: &mut Option<SimTime>| {
            if let Some(d) = d {
                *next = Some(next.map_or(d, |n: SimTime| if d < n { d } else { n }));
            }
        };
        for e in self.conns.values() {
            let head = e.q.front();
            let interest = match head.map(|s| s.op) {
                Some(RingOp::Read { .. }) => Interest::READABLE,
                Some(RingOp::Write { .. }) => Interest::WRITABLE,
                // A Close head never stalls (drive retires it), and an
                // idle connection has nothing to wait for.
                _ => continue,
            };
            note(head.and_then(|s| s.deadline), &mut next_deadline);
            conns.push((&e.conn, interest));
        }
        let mut listeners: Vec<&D::Listener> = Vec::new();
        for e in self.listeners.values() {
            let Some(head) = e.q.front() else { continue };
            note(head.deadline, &mut next_deadline);
            listeners.push(&e.l);
        }
        debug_assert!(
            !(conns.is_empty() && listeners.is_empty()),
            "park only with stalled ops (submit_and_wait checks committed)"
        );
        let timeout = match next_deadline {
            // An already-due deadline: skip the park entirely so the
            // next drive pass expires the op.
            Some(d) if d <= ctx.now() => return Ok(()),
            Some(d) => Some(d.since(ctx.now())),
            None => None,
        };
        self.driver.wait(ctx, &conns, &listeners, timeout)
    }

    /// Export the ring depths through the telemetry registry (gauges are
    /// sampled into time series automatically).
    fn publish_gauges(&mut self, ctx: &ProcessCtx) {
        if self.gauges.is_none() {
            let reg = ctx.telemetry();
            self.gauges = Some(RingGauges {
                sq: reg.gauge(&format!("ring.{}.sq", self.label)),
                in_flight: reg.gauge(&format!("ring.{}.in_flight", self.label)),
                cq: reg.gauge(&format!("ring.{}.cq", self.label)),
            });
        }
        let g = self.gauges.as_ref().expect("just filled");
        g.sq.set(self.sq.len() as i64);
        g.in_flight.set(self.in_flight as i64);
        g.cq.set(self.cq.len() as i64);
    }
}
