//! Seeded, deterministic fault injection for the wire.
//!
//! A [`FaultPlan`] describes everything a hostile link may do to traffic:
//! periodic drops (the old `drop_every` knob), seeded probabilistic loss,
//! burst loss, in-flight corruption (the frame occupies the wire but fails
//! the receiver's FCS check), reorder windows and delay jitter (frames get
//! extra delivery delay, letting later frames overtake), and a scheduled
//! link-down/link-up cycle. The plan itself is immutable and `Copy`; the
//! mutable per-link cursor ([`FaultState`]) holds the RNG so that two links
//! configured with the same plan fault independently but reproducibly.
//!
//! Every random decision flows from one [`XorShift64`] seeded from the
//! plan, so a given `(seed, frame sequence)` always produces the identical
//! drop/corrupt/reorder schedule — lossy runs stay bit-for-bit
//! reproducible, which the property tests in this crate assert.

use crate::time::{SimDuration, SimTime};

/// Minimal xorshift64 PRNG (Marsaglia 2003). Deterministic, `Copy`, and
/// good enough for fault schedules; not for cryptography.
#[derive(Clone, Copy, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped (xorshift has a fixed
    /// point at 0) so every seed yields a live sequence.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Bernoulli draw: true with probability `prob`. Draws no randomness
    /// when `prob` is 0 or less, so disabled fault classes do not perturb
    /// the schedule of enabled ones.
    pub fn chance(&mut self, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the standard [0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < prob
    }

    /// Uniform duration in `[0, max]`. Draws nothing when `max` is zero.
    pub fn duration_upto(&mut self, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.next_u64() % (max.nanos() + 1))
    }
}

/// What a hostile link may do to traffic. All classes default to off, so
/// `FaultPlan::default()` (== [`FaultPlan::none`]) is the lossless
/// machine-room wire the paper assumes.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for every random decision this plan makes on a link.
    pub seed: u64,
    /// Deterministic periodic loss: drop every `n`-th frame.
    pub drop_every: Option<u64>,
    /// Independent per-frame drop probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Probability that a probabilistic drop opens a burst: the following
    /// `burst_len - 1` frames are dropped too (correlated loss).
    pub burst_prob: f64,
    /// Total frames lost per burst (including the one that opened it).
    pub burst_len: u64,
    /// Per-frame corruption probability: the frame occupies the wire but
    /// the receiver's FCS check fails, so it is never delivered.
    pub corrupt_prob: f64,
    /// Probability a frame is held back by an extra reorder delay,
    /// letting frames sent after it arrive first.
    pub reorder_prob: f64,
    /// Maximum extra delay for a reordered frame (uniform in `[0, max]`).
    pub reorder_delay: SimDuration,
    /// Uniform delivery jitter in `[0, jitter]` added to every frame.
    pub jitter: SimDuration,
    /// Link-down schedule period: every `down_every` of simulated time the
    /// link goes down for [`FaultPlan::down_for`], starting at t=0.
    pub down_every: Option<SimDuration>,
    /// How long each scheduled down window lasts.
    pub down_for: SimDuration,
}

impl FaultPlan {
    /// A lossless wire: no faults of any kind.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 1,
            drop_every: None,
            drop_prob: 0.0,
            burst_prob: 0.0,
            burst_len: 0,
            corrupt_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            down_every: None,
            down_for: SimDuration::ZERO,
        }
    }

    /// The legacy deterministic plan: drop every `n`-th frame.
    pub const fn drop_every(n: u64) -> Self {
        let mut p = FaultPlan::none();
        p.drop_every = Some(n);
        p
    }

    /// An otherwise-lossless plan carrying `seed` for the builder methods.
    pub const fn seeded(seed: u64) -> Self {
        let mut p = FaultPlan::none();
        p.seed = seed;
        p
    }

    /// Independent per-frame drop probability.
    pub fn with_drop_prob(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Burst loss: each probabilistic drop opens, with probability `prob`,
    /// a burst swallowing `len` frames total.
    pub fn with_burst(mut self, prob: f64, len: u64) -> Self {
        self.burst_prob = prob;
        self.burst_len = len;
        self
    }

    /// In-flight corruption probability.
    pub fn with_corrupt_prob(mut self, prob: f64) -> Self {
        self.corrupt_prob = prob;
        self
    }

    /// Reorder window: with probability `prob` a frame is delayed by up to
    /// `max_delay` beyond its natural delivery time.
    pub fn with_reorder(mut self, prob: f64, max_delay: SimDuration) -> Self {
        self.reorder_prob = prob;
        self.reorder_delay = max_delay;
        self
    }

    /// Uniform per-frame delivery jitter in `[0, jitter]`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Scheduled outages: every `every`, the link is down for `dur`.
    pub fn with_down_schedule(mut self, every: SimDuration, dur: SimDuration) -> Self {
        self.down_every = Some(every);
        self.down_for = dur;
        self
    }

    /// True when no fault class is enabled (the default wire).
    pub fn is_lossless(&self) -> bool {
        self.drop_every.is_none()
            && self.drop_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.jitter.is_zero()
            && self.down_every.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The fate of one frame, decided at transmit time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver after the link's natural latency plus `extra_delay`.
    Deliver {
        /// Reorder/jitter delay beyond serialization + propagation.
        extra_delay: SimDuration,
    },
    /// Lost outright (periodic, probabilistic or burst loss).
    Drop,
    /// Corrupted in flight: occupies the wire, fails FCS, never delivered.
    Corrupt,
    /// The link was in a scheduled down window; the frame is lost.
    Down,
}

/// Per-link mutable cursor through a [`FaultPlan`]'s schedule.
#[derive(Clone, Debug)]
pub struct FaultState {
    rng: XorShift64,
    burst_remaining: u64,
}

impl FaultState {
    /// Fresh cursor at the start of `plan`'s schedule.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultState {
            rng: XorShift64::new(plan.seed),
            burst_remaining: 0,
        }
    }

    /// Decide the fate of the `frame_index`-th frame (1-based, as counted
    /// by the link) transmitted at `now`. Deterministic in
    /// `(plan.seed, call sequence, now)`.
    pub fn decide(&mut self, plan: &FaultPlan, now: SimTime, frame_index: u64) -> FaultDecision {
        if let Some(period) = plan.down_every {
            if !period.is_zero() && now.nanos() % period.nanos() < plan.down_for.nanos() {
                return FaultDecision::Down;
            }
        }
        if plan
            .drop_every
            .is_some_and(|n| frame_index.is_multiple_of(n))
        {
            return FaultDecision::Drop;
        }
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            return FaultDecision::Drop;
        }
        if self.rng.chance(plan.drop_prob) {
            if plan.burst_len > 1 && self.rng.chance(plan.burst_prob) {
                self.burst_remaining = plan.burst_len - 1;
            }
            return FaultDecision::Drop;
        }
        if self.rng.chance(plan.corrupt_prob) {
            return FaultDecision::Corrupt;
        }
        let mut extra = self.rng.duration_upto(plan.jitter);
        if self.rng.chance(plan.reorder_prob) {
            extra += self.rng.duration_upto(plan.reorder_delay);
        }
        FaultDecision::Deliver { extra_delay: extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, frames: u64) -> Vec<FaultDecision> {
        let mut st = FaultState::new(plan);
        (1..=frames)
            .map(|i| st.decide(plan, SimTime::from_nanos(i * 1000), i))
            .collect()
    }

    #[test]
    fn lossless_plan_delivers_everything_without_delay() {
        let plan = FaultPlan::none();
        assert!(plan.is_lossless());
        for d in schedule(&plan, 100) {
            assert_eq!(
                d,
                FaultDecision::Deliver {
                    extra_delay: SimDuration::ZERO
                }
            );
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::seeded(42)
            .with_drop_prob(0.3)
            .with_corrupt_prob(0.1)
            .with_reorder(0.2, SimDuration::from_micros(50));
        assert_eq!(schedule(&plan, 500), schedule(&plan, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::seeded(1).with_drop_prob(0.5);
        let b = FaultPlan::seeded(2).with_drop_prob(0.5);
        assert_ne!(schedule(&a, 200), schedule(&b, 200));
    }

    #[test]
    fn burst_loss_swallows_consecutive_frames() {
        let plan = FaultPlan::seeded(7).with_drop_prob(0.05).with_burst(1.0, 4);
        let sched = schedule(&plan, 2000);
        // Every drop must belong to a run of exactly burst_len unless runs merge.
        let mut i = 0;
        let mut saw_burst = false;
        while i < sched.len() {
            if sched[i] == FaultDecision::Drop {
                let mut run = 0;
                while i < sched.len() && sched[i] == FaultDecision::Drop {
                    run += 1;
                    i += 1;
                }
                assert!(run >= 4, "drop run of {run} frames is shorter than a burst");
                saw_burst = true;
            } else {
                i += 1;
            }
        }
        assert!(saw_burst, "no bursts fired in 2000 frames at p=0.05");
    }

    #[test]
    fn down_window_tracks_simulated_time() {
        let plan = FaultPlan::seeded(3)
            .with_down_schedule(SimDuration::from_micros(100), SimDuration::from_micros(10));
        let mut st = FaultState::new(&plan);
        // t = 5 µs: inside the first down window.
        assert_eq!(
            st.decide(&plan, SimTime::from_micros(5), 1),
            FaultDecision::Down
        );
        // t = 50 µs: link is up.
        assert!(matches!(
            st.decide(&plan, SimTime::from_micros(50), 2),
            FaultDecision::Deliver { .. }
        ));
        // t = 103 µs: second down window.
        assert_eq!(
            st.decide(&plan, SimTime::from_micros(103), 3),
            FaultDecision::Down
        );
    }

    #[test]
    fn drop_every_remains_periodic() {
        let plan = FaultPlan::drop_every(3);
        let sched = schedule(&plan, 9);
        let drops: Vec<usize> = sched
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == FaultDecision::Drop)
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(drops, vec![3, 6, 9]);
    }
}
