//! Ethernet frames and wire-size accounting.
//!
//! The simulator moves *logical* payloads (protocol structs behind an
//! `Arc<dyn Any>`) while accounting for exact on-wire sizes: preamble + SFD,
//! MAC header, FCS, minimum-frame padding and the inter-frame gap. Getting
//! these right matters — they are why raw Gigabit Ethernet tops out at
//! ~975 Mbps of payload for 1500-byte frames and far less for small ones.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Maximum Ethernet payload (bytes) — the MTU. Upper layers fragment.
pub const MTU: usize = 1500;
/// Minimum Ethernet payload; shorter payloads are padded on the wire.
pub const MIN_PAYLOAD: usize = 46;
/// Destination + source MAC + EtherType.
pub const MAC_HEADER: usize = 14;
/// Frame check sequence.
pub const FCS: usize = 4;
/// Preamble + start-of-frame delimiter.
pub const PREAMBLE: usize = 8;
/// Inter-frame gap (expressed in byte times).
pub const INTERFRAME_GAP: usize = 12;

/// A MAC address, reduced to a small integer "station id" — which doubles as
/// the EMP *source index* used for tag matching.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub u16);

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mac:{}", self.0)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// EtherType discriminating the protocol family carried by a frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4, carried for the kernel TCP/UDP baseline.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// EMP frames (the experimental-use EtherType the real EMP firmware
    /// claims on the wire).
    pub const EMP: EtherType = EtherType(0x88B5);
}

/// A logical payload with a declared on-wire length.
///
/// Protocol crates put their own frame structs in here; the simulator only
/// needs the wire length for timing. Cloning is cheap (`Arc`), which is what
/// makes retransmission-from-record free of real copies.
#[derive(Clone)]
pub struct Payload {
    data: Arc<dyn Any + Send + Sync>,
    wire_len: usize,
}

impl Payload {
    /// Wrap `data`, declaring that it serializes to `wire_len` bytes of
    /// Ethernet payload (protocol headers included, MAC header excluded).
    pub fn new<T: Any + Send + Sync>(data: T, wire_len: usize) -> Self {
        assert!(
            wire_len <= MTU,
            "payload of {wire_len} bytes exceeds the {MTU}-byte MTU; fragment at a higher layer"
        );
        Payload {
            data: Arc::new(data),
            wire_len,
        }
    }

    /// Borrow the payload as a concrete protocol type.
    pub fn downcast<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Declared on-wire payload length in bytes.
    pub fn wire_len(&self) -> usize {
        self.wire_len
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.wire_len)
    }
}

/// An Ethernet frame in flight.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sending station.
    pub src: MacAddr,
    /// Destination station.
    pub dst: MacAddr,
    /// Protocol family of the payload.
    pub ethertype: EtherType,
    /// The logical payload.
    pub payload: Payload,
}

impl Frame {
    /// Bytes that occupy the wire for this frame, including preamble,
    /// header, payload (padded to the 46-byte minimum), FCS and the
    /// inter-frame gap. Multiply by 8 ns on Gigabit Ethernet for the
    /// serialization time.
    pub fn wire_bytes(&self) -> u64 {
        let padded = self.payload.wire_len().max(MIN_PAYLOAD);
        (PREAMBLE + MAC_HEADER + padded + FCS + INTERFRAME_GAP) as u64
    }

    /// Bits on the wire (convenience for link timing).
    pub fn wire_bits(&self) -> u64 {
        self.wire_bytes() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with(len: usize) -> Frame {
        Frame {
            src: MacAddr(1),
            dst: MacAddr(2),
            ethertype: EtherType::EMP,
            payload: Payload::new((), len),
        }
    }

    #[test]
    fn min_frame_padding_applies() {
        // A 4-byte payload still costs a full minimum frame:
        // 8 + 14 + 46 + 4 + 12 = 84 bytes.
        assert_eq!(frame_with(4).wire_bytes(), 84);
        assert_eq!(frame_with(0).wire_bytes(), 84);
        assert_eq!(frame_with(46).wire_bytes(), 84);
        assert_eq!(frame_with(47).wire_bytes(), 85);
    }

    #[test]
    fn full_mtu_frame_is_1538_bytes_on_wire() {
        assert_eq!(frame_with(MTU).wire_bytes(), 1538);
        // This is the number behind the classic ~975 Mbps payload ceiling:
        // 1500/1538 * 1000 Mbps.
        let payload_ceiling_mbps: f64 = 1500.0 / 1538.0 * 1000.0;
        assert!((payload_ceiling_mbps - 975.3).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "exceeds the 1500-byte MTU")]
    fn oversize_payload_rejected() {
        frame_with(MTU + 1);
    }

    #[test]
    fn payload_downcast_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Inner(u32);
        let p = Payload::new(Inner(7), 10);
        assert_eq!(p.downcast::<Inner>(), Some(&Inner(7)));
        assert_eq!(p.downcast::<String>(), None);
        assert_eq!(p.wire_len(), 10);
    }
}
