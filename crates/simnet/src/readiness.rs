//! Readiness primitives shared by every stack in the workspace.
//!
//! Kernel-bypass stacks scale by making *readiness* the core primitive
//! rather than blocking calls: an application registers what it cares
//! about (an [`Interest`] mask per socket) and a poll call reports which
//! registrations are actionable ([`Event`]s). Both the sockets-over-EMP
//! substrate and the kernel TCP baseline express their poll layers in
//! these types so the comparison stays apples-to-apples.

/// A readiness interest mask: which conditions a poll should report for
/// one registration. Combine with `|`; test with [`Interest::contains`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Interest(u8);

impl Interest {
    /// The empty mask (matches nothing; registrations still report
    /// [`Interest::ERROR`]).
    pub const EMPTY: Interest = Interest(0);
    /// A `read` (or `recv`) would make progress without blocking —
    /// buffered data, a completed message, or EOF.
    pub const READABLE: Interest = Interest(1 << 0);
    /// A `write` (or `send`) would make progress without blocking —
    /// credits/buffer space available.
    pub const WRITABLE: Interest = Interest(1 << 1);
    /// An `accept` would return a connection without blocking.
    pub const ACCEPTABLE: Interest = Interest(1 << 2);
    /// The registration is in an error state (peer reset/closed, refused
    /// connection, protocol violation). Reported regardless of the
    /// registered mask, like POSIX `POLLERR`.
    pub const ERROR: Interest = Interest(1 << 3);

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when `self` and `other` share at least one bit.
    pub fn intersects(self, other: Interest) -> bool {
        self.0 & other.0 != 0
    }

    /// True when no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Interest {
    fn bitor_assign(&mut self, rhs: Interest) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for Interest {
    type Output = Interest;
    fn bitand(self, rhs: Interest) -> Interest {
        Interest(self.0 & rhs.0)
    }
}

impl std::fmt::Debug for Interest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.contains(Interest::READABLE) {
            parts.push("READABLE");
        }
        if self.contains(Interest::WRITABLE) {
            parts.push("WRITABLE");
        }
        if self.contains(Interest::ACCEPTABLE) {
            parts.push("ACCEPTABLE");
        }
        if self.contains(Interest::ERROR) {
            parts.push("ERROR");
        }
        if parts.is_empty() {
            write!(f, "EMPTY")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// One ready registration out of a poll: the caller-chosen token plus the
/// readiness bits that are actually set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// The token the registration was made with.
    pub token: usize,
    /// Which of the registered interests (plus [`Interest::ERROR`]) hold.
    pub ready: Interest,
}

impl Event {
    /// Does this event report readability?
    pub fn is_readable(&self) -> bool {
        self.ready.contains(Interest::READABLE)
    }

    /// Does this event report writability?
    pub fn is_writable(&self) -> bool {
        self.ready.contains(Interest::WRITABLE)
    }

    /// Does this event report an acceptable connection?
    pub fn is_acceptable(&self) -> bool {
        self.ready.contains(Interest::ACCEPTABLE)
    }

    /// Does this event report an error state?
    pub fn is_error(&self) -> bool {
        self.ready.contains(Interest::ERROR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_algebra() {
        let rw = Interest::READABLE | Interest::WRITABLE;
        assert!(rw.contains(Interest::READABLE));
        assert!(rw.contains(Interest::WRITABLE));
        assert!(!rw.contains(Interest::ACCEPTABLE));
        assert!(rw.intersects(Interest::READABLE | Interest::ERROR));
        assert!(!rw.intersects(Interest::ERROR));
        assert!(Interest::EMPTY.is_empty());
        assert!((rw & Interest::READABLE) == Interest::READABLE);
    }

    #[test]
    fn debug_lists_set_bits() {
        let s = format!("{:?}", Interest::READABLE | Interest::ERROR);
        assert!(s.contains("READABLE") && s.contains("ERROR"));
        assert_eq!(format!("{:?}", Interest::EMPTY), "EMPTY");
    }

    #[test]
    fn event_accessors() {
        let e = Event {
            token: 7,
            ready: Interest::ACCEPTABLE,
        };
        assert!(e.is_acceptable());
        assert!(!e.is_readable() && !e.is_writable() && !e.is_error());
    }
}
