//! # simnet — deterministic discrete-event simulation + Gigabit Ethernet
//!
//! The substrate every other crate in this workspace stands on:
//!
//! * a **discrete-event engine** ([`Sim`]) with nanosecond time, strict
//!   `(time, sequence)` event ordering and bit-for-bit reproducible runs;
//! * **simulated processes** ([`ProcessCtx`]) — OS threads in strict
//!   alternation with the event loop, so protocol and application code is
//!   written in natural blocking style;
//! * **synchronization primitives** ([`Completion`], [`SimCondvar`],
//!   [`SimQueue`], [`SimSemaphore`]) that preserve the engine's park/wake
//!   discipline;
//! * a **Gigabit Ethernet physical layer**: exact frame wire-size
//!   accounting ([`Frame`]), full-duplex links ([`LinkTx`]) and a
//!   store-and-forward switch ([`Switch`]).
//!
//! Everything above this crate — the Tigon2 NIC model, the EMP protocol,
//! the kernel TCP baseline and the sockets-over-EMP substrate — plugs into
//! the [`FrameSink`]/[`LinkTx`] pair and the process/event machinery here.
//!
//! ## Ownership discipline
//!
//! Components never store a [`Sim`] handle; every component method takes a
//! `&dyn SimAccess` (events get `&Sim`, processes use their
//! [`ProcessCtx`]). Cross-component references through links are weak.
//! Consequently `Sim` is the unique owner of the world: dropping it
//! terminates and joins every simulated-process thread deterministically.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod fault;
pub mod frame;
pub mod link;
pub mod process;
pub mod readiness;
pub mod ring;
pub mod stats;
pub mod switch;
pub mod sync;
pub mod time;

pub use emp_trace;
pub use engine::{EventFn, Sim, SimAccess, SimAccessExt};
pub use error::{SimError, SimResult};
pub use fault::{FaultDecision, FaultPlan, FaultState, XorShift64};
pub use frame::{EtherType, Frame, MacAddr, Payload, MTU};
pub use link::{FrameSink, LinkConfig, LinkTx};
pub use process::{ProcId, ProcessCtx};
pub use readiness::{Event, Interest};
pub use ring::{
    Cqe, CqeResult, OpError, RingConfig, RingCore, RingCounters, RingDepths, RingDriver, RingError,
    RingOp, Sqe,
};
pub use stats::{Histogram, LinkStats, RunningStats, Throughput};
pub use switch::{Switch, SwitchConfig, BROADCAST};
pub use sync::{wait_any, Completion, SimCondvar, SimQueue, SimSemaphore};
pub use time::{SimDuration, SimTime};
