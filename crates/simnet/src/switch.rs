//! A store-and-forward Ethernet switch (the testbed's "Packet Engines"
//! switch).
//!
//! Frames fully arrive on an input port (the input link models that), pass
//! through the switching fabric after a fixed forwarding latency, then
//! serialize onto the output port's link — which is busy while earlier
//! frames drain, giving per-output-port queueing.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::engine::{SimAccess, SimAccessExt};
use crate::frame::{Frame, MacAddr};
use crate::link::{FrameSink, LinkConfig, LinkTx};
use crate::stats::LinkStats;
use crate::time::SimDuration;

/// Destination address that floods to every port.
pub const BROADCAST: MacAddr = MacAddr(0xFFFF);

/// Switch parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Fabric latency between full frame reception and the start of
    /// transmission on the output port.
    pub forwarding_latency: SimDuration,
    /// Physical parameters of every attached link.
    pub link: LinkConfig,
}

impl Default for SwitchConfig {
    /// A late-1990s store-and-forward Gigabit switch: a couple of
    /// microseconds of fabric latency on top of store-and-forward.
    fn default() -> Self {
        SwitchConfig {
            forwarding_latency: SimDuration::from_micros(2),
            link: LinkConfig::default(),
        }
    }
}

struct PortState {
    tx: LinkTx,
    // Keeps the ingress sink alive for the lifetime of the switch; the
    // node-side LinkTx only holds a Weak to it.
    _ingress: Arc<PortIngress>,
}

struct SwitchState {
    ports: Vec<PortState>,
    fdb: HashMap<MacAddr, usize>,
    forwarded: u64,
    flooded: u64,
}

struct SwitchInner {
    cfg: SwitchConfig,
    state: Mutex<SwitchState>,
}

/// The switch itself. Attach stations with [`Switch::attach`].
pub struct Switch {
    inner: Arc<SwitchInner>,
}

impl Switch {
    /// An empty switch.
    pub fn new(cfg: SwitchConfig) -> Self {
        Switch {
            inner: Arc::new(SwitchInner {
                cfg,
                state: Mutex::new(SwitchState {
                    ports: Vec::new(),
                    fdb: HashMap::new(),
                    forwarded: 0,
                    flooded: 0,
                }),
            }),
        }
    }

    /// Attach a station. `peer` receives frames the switch forwards to this
    /// port; the returned [`LinkTx`] is the station's transmitter *towards*
    /// the switch.
    pub fn attach(&self, peer: &Arc<dyn FrameSink>) -> LinkTx {
        let mut st = self.inner.state.lock();
        let port = st.ports.len();
        let egress = LinkTx::new(self.inner.cfg.link, peer);
        // Egress queueing is where cross-traffic contention shows up, so
        // each switch-to-station link publishes its backlog time series.
        egress.set_name(format!("switch.port{port}"));
        let ingress = Arc::new(PortIngress {
            switch: Arc::downgrade(&self.inner),
            port,
        });
        st.ports.push(PortState {
            tx: egress,
            _ingress: Arc::clone(&ingress),
        });
        let sink: Arc<dyn FrameSink> = ingress;
        LinkTx::new(self.inner.cfg.link, &sink)
    }

    /// Statically map `mac` to the given port (stations register at boot;
    /// dynamic learning also runs on every received frame).
    pub fn register_mac(&self, mac: MacAddr, port: usize) {
        self.inner.state.lock().fdb.insert(mac, port);
    }

    /// Frames forwarded to a known unicast destination.
    pub fn frames_forwarded(&self) -> u64 {
        self.inner.state.lock().forwarded
    }

    /// Frames flooded (unknown destination or broadcast).
    pub fn frames_flooded(&self) -> u64 {
        self.inner.state.lock().flooded
    }

    /// Per-port egress-link counters, in attach order. Surfaces the
    /// injected-fault outcomes (drops vs corruption vs reorder delays) of
    /// every switch-to-station link.
    pub fn port_stats(&self) -> Vec<LinkStats> {
        self.inner
            .state
            .lock()
            .ports
            .iter()
            .map(|p| p.tx.stats())
            .collect()
    }
}

struct PortIngress {
    switch: Weak<SwitchInner>,
    port: usize,
}

impl FrameSink for PortIngress {
    fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
        let Some(switch) = self.switch.upgrade() else {
            return;
        };
        let in_port = self.port;
        {
            let mut st = switch.state.lock();
            st.fdb.insert(frame.src, in_port);
        }
        let latency = switch.cfg.forwarding_latency;
        s.schedule_after(latency, move |sim| {
            let (txs, counted_flood) = {
                let mut st = switch.state.lock();
                match (frame.dst != BROADCAST)
                    .then(|| st.fdb.get(&frame.dst).copied())
                    .flatten()
                {
                    Some(out_port) => {
                        st.forwarded += 1;
                        (vec![st.ports[out_port].tx.clone()], false)
                    }
                    None => {
                        st.flooded += 1;
                        let txs = st
                            .ports
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != in_port)
                            .map(|(_, p)| p.tx.clone())
                            .collect();
                        (txs, true)
                    }
                }
            };
            let _ = counted_flood;
            if emp_trace::ENABLED {
                sim.tracer().emit(
                    sim.now().nanos(),
                    emp_trace::NO_NODE,
                    emp_trace::NO_CONN,
                    emp_trace::EventKind::SwitchForward,
                    frame.payload.wire_len() as u64,
                    u64::from(frame.dst.0),
                );
            }
            for tx in txs {
                tx.send(sim, frame.clone());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::frame::{EtherType, Payload};
    use crate::time::SimTime;

    struct Station {
        mac: MacAddr,
        arrivals: Mutex<Vec<(u64, MacAddr)>>,
    }

    impl FrameSink for Station {
        fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
            // Flooded frames may carry a foreign unicast destination; a real
            // NIC in non-promiscuous mode would filter them, which upper
            // layers in this workspace do. Record everything here.
            let _ = self.mac;
            self.arrivals.lock().push((s.now().nanos(), frame.src));
        }
    }

    fn testbed(n: usize) -> (Sim, Switch, Vec<Arc<Station>>, Vec<LinkTx>) {
        let sim = Sim::new();
        let switch = Switch::new(SwitchConfig {
            forwarding_latency: SimDuration::from_micros(2),
            link: LinkConfig {
                bandwidth_bps: 1_000_000_000,
                propagation: SimDuration::from_nanos(100),
                faults: crate::fault::FaultPlan::none(),
            },
        });
        let mut stations = Vec::new();
        let mut txs = Vec::new();
        for i in 0..n {
            let st = Arc::new(Station {
                mac: MacAddr(i as u16),
                arrivals: Mutex::new(Vec::new()),
            });
            let sink: Arc<dyn FrameSink> = st.clone();
            let tx = switch.attach(&sink);
            switch.register_mac(st.mac, i);
            stations.push(st);
            txs.push(tx);
        }
        (sim, switch, stations, txs)
    }

    fn frame(src: u16, dst: u16, len: usize) -> Frame {
        Frame {
            src: MacAddr(src),
            dst: MacAddr(dst),
            ethertype: EtherType::EMP,
            payload: Payload::new((), len),
        }
    }

    #[test]
    fn unicast_end_to_end_timing() {
        let (sim, switch, stations, txs) = testbed(3);
        let tx = txs[0].clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx.send(s, frame(0, 1, 4)));
        sim.run();
        // 84B min frame: 672 ns serialize + 100 ns prop (ingress link)
        // + 2000 ns fabric + 672 ns serialize + 100 ns prop (egress link).
        assert_eq!(*stations[1].arrivals.lock(), vec![(3_544, MacAddr(0))]);
        assert!(stations[2].arrivals.lock().is_empty());
        assert_eq!(switch.frames_forwarded(), 1);
        assert_eq!(switch.frames_flooded(), 0);
    }

    #[test]
    fn unknown_destination_floods_all_but_ingress() {
        let (sim, switch, stations, txs) = testbed(3);
        let tx = txs[0].clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx.send(s, frame(0, 99, 4)));
        sim.run();
        assert!(stations[0].arrivals.lock().is_empty());
        assert_eq!(stations[1].arrivals.lock().len(), 1);
        assert_eq!(stations[2].arrivals.lock().len(), 1);
        assert_eq!(switch.frames_flooded(), 1);
    }

    #[test]
    fn broadcast_floods() {
        let (sim, _switch, stations, txs) = testbed(4);
        let tx = txs[2].clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx.send(s, frame(2, BROADCAST.0, 4)));
        sim.run();
        for (i, st) in stations.iter().enumerate() {
            let n = st.arrivals.lock().len();
            assert_eq!(n, usize::from(i != 2), "station {i}");
        }
    }

    #[test]
    fn switch_learns_source_ports() {
        let (sim, switch, stations, txs) = testbed(2);
        // Forget static registrations, force learning.
        {
            let mut st = switch.inner.state.lock();
            st.fdb.clear();
        }
        let tx0 = txs[0].clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx0.send(s, frame(0, 1, 4))); // floods, learns 0
        let tx1 = txs[1].clone();
        sim.schedule_at(SimTime::from_micros(50), move |s| {
            tx1.send(s, frame(1, 0, 4))
        }); // forwarded
        sim.run();
        assert_eq!(switch.frames_flooded(), 1);
        assert_eq!(switch.frames_forwarded(), 1);
        assert_eq!(stations[0].arrivals.lock().len(), 1);
    }

    #[test]
    fn congested_output_port_queues() {
        let (sim, _switch, stations, txs) = testbed(3);
        // Stations 0 and 2 both blast an MTU frame at station 1 at t=0.
        let tx0 = txs[0].clone();
        let tx2 = txs[2].clone();
        sim.schedule_at(SimTime::ZERO, move |s| tx0.send(s, frame(0, 1, 1500)));
        sim.schedule_at(SimTime::ZERO, move |s| tx2.send(s, frame(2, 1, 1500)));
        sim.run();
        let arr = stations[1].arrivals.lock();
        assert_eq!(arr.len(), 2);
        // Second frame serializes behind the first on the egress link.
        assert_eq!(arr[1].0 - arr[0].0, 12_304);
    }
}
