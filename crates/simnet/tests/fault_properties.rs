//! Property-based tests of the fault-injection layer: a seeded plan is a
//! *schedule*, not a dice roll — the same seed must reproduce the same
//! frame fates, and the structural guarantees (periodic drops, lossless
//! plans, burst accounting) must hold for arbitrary parameters.

use proptest::prelude::*;
use simnet::{FaultDecision, FaultPlan, FaultState, SimDuration, SimTime};

/// Run `frames` decisions through a fresh cursor over `plan`, with frame
/// index and transmit time advancing the way a link would drive them.
fn schedule(plan: &FaultPlan, frames: u64) -> Vec<FaultDecision> {
    let mut st = FaultState::new(plan);
    (1..=frames)
        .map(|idx| st.decide(plan, SimTime::from_nanos(idx * 1_200), idx))
        .collect()
}

fn plan_from(seed: u64, drop_pct: u32, corrupt_pct: u32, reorder_pct: u32) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drop_prob(f64::from(drop_pct) / 100.0)
        .with_corrupt_prob(f64::from(corrupt_pct) / 100.0)
        .with_reorder(f64::from(reorder_pct) / 100.0, SimDuration::from_micros(80))
        .with_jitter(SimDuration::from_micros(3))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn same_seed_means_same_schedule(
        seed in any::<u64>(),
        drop_pct in 0u32..101,
        corrupt_pct in 0u32..101,
        reorder_pct in 0u32..101,
    ) {
        let plan = plan_from(seed, drop_pct, corrupt_pct, reorder_pct);
        prop_assert_eq!(schedule(&plan, 500), schedule(&plan, 500));
    }

    #[test]
    fn different_seeds_diverge_for_nondegenerate_plans(
        seed in 1u64..1_000_000,
    ) {
        // A 50% drop plan over 500 frames agreeing on every decision for
        // two different seeds would mean the seed does not reach the RNG.
        let a = plan_from(seed, 50, 0, 0);
        let b = plan_from(seed.wrapping_add(1), 50, 0, 0);
        prop_assert_ne!(schedule(&a, 500), schedule(&b, 500));
    }

    #[test]
    fn periodic_drop_hits_exactly_every_nth_frame(
        n in 2u64..50,
        frames in 1u64..400,
    ) {
        let plan = FaultPlan::drop_every(n);
        for (i, d) in schedule(&plan, frames).iter().enumerate() {
            let idx = i as u64 + 1;
            if idx.is_multiple_of(n) {
                prop_assert_eq!(*d, FaultDecision::Drop, "frame {} must drop", idx);
            } else {
                prop_assert_eq!(
                    *d,
                    FaultDecision::Deliver { extra_delay: SimDuration::ZERO },
                    "frame {} must deliver untouched", idx
                );
            }
        }
    }

    #[test]
    fn a_lossless_plan_never_touches_a_frame(
        seed in any::<u64>(),
        frames in 1u64..400,
    ) {
        let plan = FaultPlan::seeded(seed);
        prop_assert!(plan.is_lossless());
        for d in schedule(&plan, frames) {
            prop_assert_eq!(d, FaultDecision::Deliver { extra_delay: SimDuration::ZERO });
        }
    }

    #[test]
    fn burst_drops_come_in_full_bursts(
        seed in any::<u64>(),
        burst_len in 2u64..8,
    ) {
        // Every probabilistic drop opens a burst: runs of consecutive
        // drops must then come in multiples-of-burst_len-or-longer blocks
        // only when adjacent bursts merge; a lone shorter run is a bug.
        let plan = FaultPlan::seeded(seed)
            .with_drop_prob(0.05)
            .with_burst(1.0, burst_len);
        // The trailing run is excluded: the observation window may end
        // mid-burst, which truncates the run without being a bug.
        let sched = schedule(&plan, 2_000);
        let mut run = 0u64;
        for d in &sched {
            if *d == FaultDecision::Drop {
                run += 1;
            } else {
                if run > 0 {
                    prop_assert!(
                        run >= burst_len,
                        "drop run of {} shorter than the burst length {}", run, burst_len
                    );
                }
                run = 0;
            }
        }
    }
}
