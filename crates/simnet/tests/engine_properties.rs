//! Property-based tests of the engine's core guarantees: event ordering,
//! determinism under arbitrary schedules, and the sync primitives'
//! invariants under randomized process interleavings.

use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Sim, SimAccess, SimAccessExt, SimDuration, SimQueue, SimSemaphore, SimTime};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn events_always_execute_in_time_then_seq_order(
        times in prop::collection::vec(0u64..10_000, 1..200)
    ) {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (seq, &t) in times.iter().enumerate() {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |s| {
                log.lock().push((s.now().nanos(), seq));
            });
        }
        sim.run();
        let got = log.lock().clone();
        prop_assert_eq!(got.len(), times.len());
        // Non-decreasing times; equal times preserve scheduling order.
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties broken by scheduling order");
            }
        }
    }

    #[test]
    fn arbitrary_schedules_are_deterministic(
        times in prop::collection::vec(0u64..1_000, 1..100)
    ) {
        fn run(times: &[u64]) -> Vec<(u64, usize)> {
            let sim = Sim::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for (seq, &t) in times.iter().enumerate() {
                let log = Arc::clone(&log);
                // Each event schedules a follow-up, exercising dynamic
                // insertion too.
                sim.schedule_at(SimTime::from_nanos(t), move |s| {
                    log.lock().push((s.now().nanos(), seq));
                    let log = Arc::clone(&log);
                    s.schedule_after(SimDuration::from_nanos(t % 7 + 1), move |s2| {
                        log.lock().push((s2.now().nanos(), seq + 10_000));
                    });
                });
            }
            sim.run();
            let v = log.lock().clone();
            v
        }
        prop_assert_eq!(run(&times), run(&times));
    }

    #[test]
    fn processes_with_random_delays_preserve_per_process_order(
        delays in prop::collection::vec(1u64..500, 2..40),
        nprocs in 2usize..5,
    ) {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for p in 0..nprocs {
            let log = Arc::clone(&log);
            let delays = delays.clone();
            sim.spawn(format!("p{p}"), move |ctx| {
                for (i, &d) in delays.iter().enumerate() {
                    ctx.delay(SimDuration::from_nanos(d + p as u64))?;
                    log.lock().push((p, i));
                }
                Ok(())
            });
        }
        sim.run();
        let got = log.lock().clone();
        prop_assert_eq!(got.len(), nprocs * delays.len());
        // Each process's entries appear in its own program order.
        for p in 0..nprocs {
            let seq: Vec<usize> = got.iter().filter(|(q, _)| *q == p).map(|(_, i)| *i).collect();
            let sorted: Vec<usize> = (0..delays.len()).collect();
            prop_assert_eq!(seq, sorted);
        }
    }

    #[test]
    fn queue_delivers_every_item_exactly_once(
        items in prop::collection::vec(any::<u32>(), 1..60),
        nconsumers in 1usize..4,
    ) {
        let sim = Sim::new();
        let q: SimQueue<u32> = SimQueue::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let n = items.len();
        // Consumers contend for items.
        let quota = n / nconsumers;
        let extra = n % nconsumers;
        for c in 0..nconsumers {
            let q = q.clone();
            let got = Arc::clone(&got);
            let take = quota + usize::from(c < extra);
            sim.spawn(format!("consumer{c}"), move |ctx| {
                for _ in 0..take {
                    let v = q.pop(ctx)?;
                    got.lock().push(v);
                }
                Ok(())
            });
        }
        let q2 = q.clone();
        let items2 = items.clone();
        sim.spawn("producer", move |ctx| {
            for (i, v) in items2.into_iter().enumerate() {
                ctx.delay(SimDuration::from_nanos((i as u64 % 5) + 1))?;
                q2.push(ctx, v);
            }
            Ok(())
        });
        sim.run();
        let mut got = got.lock().clone();
        let mut want = items.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want, "every item exactly once");
        prop_assert!(q.is_empty());
    }

    #[test]
    fn semaphore_never_goes_negative_and_conserves_permits(
        ops in prop::collection::vec((1u64..4, 1u64..4), 1..30),
        initial in 0u64..8,
    ) {
        let sim = Sim::new();
        let sem = SimSemaphore::new(initial);
        let total_released: u64 = ops.iter().map(|(_, r)| r).sum();
        let total_acquired: u64 = ops.iter().map(|(a, _)| a).sum();
        let sem2 = sem.clone();
        let ops2 = ops.clone();
        sim.spawn("acquirer", move |ctx| {
            for (a, _) in &ops2 {
                sem2.acquire(ctx, *a)?;
            }
            Ok(())
        });
        let sem3 = sem.clone();
        sim.spawn("releaser", move |ctx| {
            for (i, (_, r)) in ops.iter().enumerate() {
                ctx.delay(SimDuration::from_nanos(i as u64 + 1))?;
                sem3.release(ctx, *r);
            }
            Ok(())
        });
        sim.run_until(SimTime::from_millis(1));
        // If the acquirer finished, conservation must hold exactly.
        let available = sem.available();
        if initial + total_released >= total_acquired {
            // It may or may not have finished (ordering), but available
            // can never exceed everything ever added.
            prop_assert!(available <= initial + total_released);
        }
    }
}
