//! The readiness layer end to end: nonblocking socket calls returning
//! [`SockError::WouldBlock`], and [`PollSet`] waits over connections and
//! listeners that report exactly when a retry will make progress.

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use simnet::{Completion, Sim, SimAccess, SimDuration, SwitchConfig};
use sockets_emp::{EmpSockets, Interest, PollSet, SockAddr, SockError, SubstrateConfig};

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn substrate(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

#[test]
fn try_read_would_block_until_poll_reports_readable() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        // The client stays silent for a millisecond: nothing to read yet.
        assert_eq!(conn.try_read(ctx, 64)?.unwrap_err(), SockError::WouldBlock);
        let mut set = PollSet::new();
        set.register_conn(&conn, 7, Interest::READABLE);
        let events = set.poll(ctx, None)?.expect("poll");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].is_readable());
        // Readiness is truthful: the retry now succeeds.
        let data = conn.try_read(ctx, 64)?.expect("ready data");
        assert_eq!(&data[..], b"late");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.write(ctx, b"late")?.expect("send");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn try_write_would_block_on_credit_exhaustion_until_acks_return() {
    let sim = Sim::new();
    let cl = cluster(2);
    // Two credits and immediate acks: exhaustion after two eager sends,
    // recovery as soon as the receiver consumes them.
    let cfg = SubstrateConfig::ds().with_credits(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        // Hold the credits hostage for a while before draining.
        ctx.delay(SimDuration::from_millis(2))?;
        let mut got = 0usize;
        loop {
            let chunk = conn.read(ctx, 1024)?.expect("drain");
            if chunk.is_empty() {
                break;
            }
            got += chunk.len();
        }
        assert_eq!(got, 64 * 3);
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let msg = [0x5au8; 64];
        // Both credits go out the door immediately...
        assert_eq!(conn.try_write(ctx, &msg)?.expect("credit 1"), 64);
        assert_eq!(conn.try_write(ctx, &msg)?.expect("credit 2"), 64);
        // ...and the third write has none to take.
        assert_eq!(
            conn.try_write(ctx, &msg)?.unwrap_err(),
            SockError::WouldBlock
        );
        assert!(!conn.writable());
        let mut set = PollSet::new();
        set.register_conn(&conn, 3, Interest::WRITABLE);
        let events = set.poll(ctx, None)?.expect("poll");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].is_writable());
        assert!(conn.writable());
        assert_eq!(conn.try_write(ctx, &msg)?.expect("credits back"), 64);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn try_accept_would_block_until_poll_reports_acceptable() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        assert_eq!(
            l.try_accept(ctx).map(|r| r.map(|_| ()))?.unwrap_err(),
            SockError::WouldBlock
        );
        let mut set = PollSet::new();
        set.register_listener(&l, 9, Interest::ACCEPTABLE);
        let events = set.poll(ctx, None)?.expect("poll");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);
        assert!(events[0].is_acceptable());
        let conn = l.try_accept(ctx)?.expect("queued connection");
        let data = conn.read(ctx, 64)?.expect("hello");
        assert_eq!(&data[..], b"hi");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        ctx.delay(SimDuration::from_millis(1))?;
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"hi")?.expect("send");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn select_on_an_empty_set_is_invalid_not_a_hang() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("selector", move |ctx| {
        assert_eq!(
            s.select_readable(ctx, &[])?.unwrap_err(),
            SockError::Invalid
        );
        // Same for a bare poll with nothing to wait on and no timeout.
        let mut set = PollSet::new();
        assert_eq!(set.poll(ctx, None)?.unwrap_err(), SockError::Invalid);
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn poll_timeout_returns_no_events_after_the_deadline() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        let t0 = ctx.now();
        let mut set = PollSet::new();
        set.register_conn(&conn, 0, Interest::READABLE);
        // The client never writes: the poll must give up at the deadline.
        let events = set
            .poll(ctx, Some(SimDuration::from_millis(1)))?
            .expect("poll");
        assert!(events.is_empty());
        let waited = ctx.now() - t0;
        assert!(waited >= SimDuration::from_millis(1), "waited {waited:?}");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_millis(5))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}
