//! End-to-end tests of the sockets-over-EMP substrate, including the
//! paper's headline calibration points: 28.5 µs datagram latency and
//! ~37 µs data-streaming latency for 4-byte messages (§7.1), and a peak
//! bandwidth above 840 Mbps (§7.2).

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use parking_lot::Mutex;
use simnet::{Completion, Sim, SimAccess, SimDuration, SimTime, SwitchConfig};
use sockets_emp::{EmpSockets, SockAddr, SockError, SubstrateConfig};
use std::sync::Arc;

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn substrate(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

#[test]
fn stream_roundtrip_with_partial_reads() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        // The client sent 10 bytes in one write; data streaming lets us
        // read them as 4 + 6 (§4.1.2's "two sets of 5 bytes" behaviour).
        let a = conn.read(ctx, 4)?.expect("first part");
        assert_eq!(&a[..], b"0123");
        let b = conn.read(ctx, 100)?.expect("rest");
        assert_eq!(&b[..], b"456789");
        conn.write(ctx, b"pong")?.expect("reply");
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"0123456789")?.expect("send");
        let r = conn.read(ctx, 64)?.expect("reply");
        assert_eq!(&r[..], b"pong");
        // After the peer closes, reads return EOF.
        let eof = conn.read(ctx, 64)?.expect("eof");
        assert!(eof.is_empty());
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn datagram_preserves_message_boundaries() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::dg());
    let client = substrate(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        // Two sends = two messages, never coalesced.
        let m1 = conn.read(ctx, 1024)?.expect("m1");
        assert_eq!(&m1[..], b"first");
        let m2 = conn.read(ctx, 1024)?.expect("m2");
        assert_eq!(&m2[..], b"second message");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"first")?.expect("send 1");
        conn.write(ctx, b"second message")?.expect("send 2");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// Shared ping-pong harness: returns the measured one-way latency in µs
/// for 4-byte messages under `cfg`.
fn pingpong_latency_us(cfg: SubstrateConfig) -> f64 {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);

    sim.spawn("echoer", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        loop {
            let m = conn.read(ctx, 64)?.expect("data");
            if m.is_empty() {
                break;
            }
            conn.write(ctx, &m)?.expect("echo");
        }
        Ok(())
    });
    sim.spawn("pinger", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        // Warm up (connection setup, translation caches).
        for _ in 0..4 {
            conn.write(ctx, b"warm")?.expect("w");
            conn.read_exact(ctx, 4)?.expect("r").expect("pong");
        }
        let iters = 100u32;
        let t0 = ctx.now();
        for _ in 0..iters {
            conn.write(ctx, b"ping")?.expect("w");
            conn.read_exact(ctx, 4)?.expect("r").expect("pong");
        }
        *out2.lock() = ((ctx.now() - t0) / iters as u64).as_micros_f64() / 2.0;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let us = *out.lock();
    us
}

#[test]
fn datagram_latency_calibrates_to_paper() {
    let us = pingpong_latency_us(SubstrateConfig::dg());
    assert!(
        (26.5..31.0).contains(&us),
        "datagram 4-byte one-way latency {us:.2} us; paper reports 28.5 us"
    );
}

#[test]
fn streaming_latency_calibrates_to_paper() {
    let us = pingpong_latency_us(SubstrateConfig::ds_da_uq());
    assert!(
        (33.0..40.0).contains(&us),
        "DS_DA_UQ 4-byte one-way latency {us:.2} us; paper reports 37 us"
    );
}

#[test]
fn enhancement_ordering_matches_figure_11() {
    // Figure 11: DS >= DS_DA >= DS_DA_UQ > DG, all above raw EMP.
    let ds = pingpong_latency_us(SubstrateConfig::ds());
    let ds_da = pingpong_latency_us(SubstrateConfig::ds_da());
    let ds_da_uq = pingpong_latency_us(SubstrateConfig::ds_da_uq());
    let dg = pingpong_latency_us(SubstrateConfig::dg());
    assert!(
        ds >= ds_da - 0.01,
        "delayed acks must not hurt: DS {ds:.2} vs DS_DA {ds_da:.2}"
    );
    // At 32 credits with delayed acks only ~3 ack descriptors exist, so
    // the unexpected-queue benefit is within noise here (its real effect
    // shows at small credit counts — Figure 12); it must not *hurt* by
    // more than a poll's worth.
    assert!(
        ds_da >= ds_da_uq - 0.7,
        "unexpected-queue acks must not hurt: {ds_da:.2} vs {ds_da_uq:.2}"
    );
    assert!(
        ds_da_uq > dg,
        "datagram must beat streaming: {ds_da_uq:.2} vs {dg:.2}"
    );
}

#[test]
fn stream_bandwidth_exceeds_840mbps() {
    const MSG: usize = 64 * 1024;
    const COUNT: usize = 64;
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);

    sim.spawn("sink", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        let mut got = 0usize;
        let t0 = ctx.now();
        while got < MSG * COUNT {
            let d = conn.read(ctx, MSG)?.expect("data");
            assert!(!d.is_empty());
            got += d.len();
        }
        let elapsed = ctx.now() - t0;
        *out2.lock() = (got as f64 * 8.0) / elapsed.as_secs_f64() / 1e6;
        Ok(())
    });
    sim.spawn("source", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let buf = vec![0xa5u8; MSG];
        for _ in 0..COUNT {
            conn.write(ctx, &buf)?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let mbps = *out.lock();
    assert!(
        (780.0..920.0).contains(&mbps),
        "stream bandwidth {mbps:.0} Mbps; paper reports >840 Mbps"
    );
}

#[test]
fn credits_throttle_an_unread_sender() {
    // With N=2 credits and a receiver that never reads, only 2 messages
    // can be outstanding; the third write blocks until the receiver reads.
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds().with_credits(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let progress = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&progress);

    sim.spawn("lazy-reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        ctx.delay(SimDuration::from_millis(5))?; // stall before reading
        loop {
            let d = conn.read(ctx, 4096)?.expect("data");
            if d.is_empty() {
                break;
            }
        }
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for i in 0..4 {
            conn.write(ctx, &[i as u8; 100])?.expect("send");
            p2.lock().push((i, ctx.now().nanos()));
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let p = progress.lock();
    assert_eq!(p.len(), 4);
    // Writes 0 and 1 complete quickly; write 2 stalls until the reader
    // wakes at 5 ms.
    assert!(p[1].1 < 1_000_000, "second write fast, got {} ns", p[1].1);
    assert!(
        p[2].1 > 5_000_000,
        "third write must wait for the reader, got {} ns",
        p[2].1
    );
}

#[test]
fn delayed_acks_reduce_ack_traffic() {
    fn fcacks_for(cfg: SubstrateConfig) -> u64 {
        let sim = Sim::new();
        let cl = cluster(2);
        let server = substrate(&cl, 1, cfg.clone());
        let client = substrate(&cl, 0, cfg);
        let addr = SockAddr::new(cl.nodes[1].addr(), 80);
        sim.spawn("reader", move |ctx| {
            let l = server.listen(ctx, 80, 4)?.expect("port free");
            let conn = l.accept(ctx)?.expect("request");
            loop {
                let d = conn.read(ctx, 4096)?.expect("data");
                if d.is_empty() {
                    break;
                }
            }
            Ok(())
        });
        sim.spawn("writer", move |ctx| {
            let conn = client.connect(ctx, addr)?.expect("connect");
            for _ in 0..64 {
                conn.write(ctx, &[7u8; 256])?.expect("send");
            }
            ctx.delay(SimDuration::from_millis(2))?;
            conn.close(ctx)?;
            Ok(())
        });
        sim.run();
        // Substrate messages received by the *writer's* NIC are the
        // flow-control acks (the reader sends nothing else).
        cl.nodes[0].nic.stats().msgs_received
    }
    let eager = fcacks_for(SubstrateConfig::ds());
    let delayed = fcacks_for(SubstrateConfig::ds_da());
    // 64 messages: per-message acks ≈ 64; delayed (threshold 16) ≈ 4.
    assert!(
        eager >= 32,
        "per-message acks expected to be frequent, got {eager}"
    );
    assert!(
        delayed <= eager / 4,
        "delayed acks must cut ack traffic: {delayed} vs {eager}"
    );
}

#[test]
fn uq_mode_routes_acks_through_unexpected_queue() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        loop {
            let d = conn.read(ctx, 4096)?.expect("data");
            if d.is_empty() {
                break;
            }
        }
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for _ in 0..64 {
            conn.write(ctx, &[7u8; 256])?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    // The writer's NIC must have taken fc-acks through the unexpected
    // queue rather than pre-posted descriptors.
    assert!(
        cl.nodes[0].nic.stats().unexpected_msgs > 0,
        "fc-acks should land in the unexpected queue in UQ mode"
    );
    assert_eq!(cl.nodes[0].nic.stats().frames_dropped, 0);
}

#[test]
fn rendezvous_transfers_large_datagrams() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::dg());
    let client = substrate(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const BIG: usize = 200_000;

    sim.spawn("receiver", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        let m = conn.read(ctx, BIG)?.expect("large datagram");
        assert_eq!(m.len(), BIG);
        assert!(m.iter().all(|&b| b == 0x42));
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let n = conn
            .write(ctx, &vec![0x42u8; BIG])?
            .expect("rendezvous send");
        assert_eq!(n, BIG);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn rendezvous_rejects_oversized_datagrams() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::dg());
    let client = substrate(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("receiver", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        // Only willing to take 4 KiB; then get the follow-up small one.
        let m = conn.read(ctx, 4096)?.expect("small datagram");
        assert_eq!(&m[..], b"small");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let err = conn
            .write(ctx, &vec![1u8; 100_000])?
            .expect_err("too big for receiver");
        assert!(matches!(err, SockError::MessageTooBig { limit: 4096, .. }));
        conn.write(ctx, b"small")?.expect("fits");
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn figure7_rendezvous_deadlock_reproduces() {
    // §5.2 Figure 7: both peers send a large (rendezvous) message before
    // either receives — both block forever awaiting the grant.
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::dg());
    let client = substrate(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let progressed = Arc::new(Mutex::new((false, false)));
    const BIG: usize = 100_000;

    let p = Arc::clone(&progressed);
    sim.spawn("peer-b", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        conn.write(ctx, &vec![2u8; BIG])?.expect("never completes");
        p.lock().1 = true;
        Ok(())
    });
    let p = Arc::clone(&progressed);
    sim.spawn("peer-a", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_micros(200))?; // let accept complete
        conn.write(ctx, &vec![1u8; BIG])?.expect("never completes");
        p.lock().0 = true;
        Ok(())
    });
    sim.run_until(SimTime::from_millis(200));
    let (a, b) = *progressed.lock();
    assert!(
        !a && !b,
        "write-write on rendezvous datagrams must deadlock"
    );
}

#[test]
fn eager_write_write_read_read_does_not_deadlock_within_credits() {
    // The same pattern on *stream* sockets is safe up to N credits — the
    // whole point of eager-with-flow-control (§5.2, Figure 9).
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_credits(4);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const N: usize = 8 * 1024;

    sim.spawn("peer-b", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        conn.write(ctx, &vec![2u8; N])?.expect("write first");
        let got = conn.read_exact(ctx, N)?.expect("read").expect("data");
        assert!(got.iter().all(|&b| b == 1));
        Ok(())
    });
    sim.spawn("peer-a", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, &vec![1u8; N])?.expect("write first");
        let got = conn.read_exact(ctx, N)?.expect("read").expect("data");
        assert!(got.iter().all(|&b| b == 2));
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn close_releases_descriptors() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);

    let server_nic = Arc::clone(&cl.nodes[1].nic);
    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 2)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        // Descriptors are batch-posted behind one doorbell; give the rx
        // CPU's insert task time to run before sampling.
        ctx.delay(SimDuration::from_micros(100))?;
        let before = server_nic.preposted_len();
        assert!(before >= 32, "N data descriptors + control posted");
        let d = conn.read(ctx, 64)?.expect("data");
        assert_eq!(&d[..], b"hi");
        conn.close(ctx)?;
        l.close(ctx)?;
        ctx.delay(SimDuration::from_micros(100))?;
        assert_eq!(
            server_nic.preposted_len(),
            0,
            "close must unpost every descriptor (§5.3)"
        );
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"hi")?.expect("send");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
}

#[test]
fn write_after_local_close_fails() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 2)?.expect("port free");
        let _conn = l.accept(ctx)?.expect("request");
        ctx.delay(SimDuration::from_millis(1))?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.close(ctx)?;
        let err = conn.write(ctx, b"late")?.expect_err("closed");
        assert_eq!(err, SockError::Closed);
        Ok(())
    });
    sim.run();
}

#[test]
fn select_readable_picks_the_live_connection() {
    let sim = Sim::new();
    let cl = cluster(3);
    let server = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[0].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let server2 = server.clone();
    sim.spawn("selector", move |ctx| {
        let l = server2.listen(ctx, 80, 8)?.expect("port free");
        let c1 = l.accept(ctx)?.expect("conn 1");
        let c2 = l.accept(ctx)?.expect("conn 2");
        let conns = [&c1, &c2];
        let idx = server2.select_readable(ctx, &conns)?.expect("nonempty set");
        let d = conns[idx].read(ctx, 64)?.expect("data");
        assert_eq!(&d[..], b"from-2");
        assert_eq!(conns[idx].peer(), simnet::MacAddr(2));
        done2.complete(ctx);
        Ok(())
    });
    for i in [1u16, 2u16] {
        let s = substrate(&cl, i as usize, SubstrateConfig::ds_da_uq());
        sim.spawn(format!("client-{i}"), move |ctx| {
            ctx.delay(SimDuration::from_micros(u64::from(i) * 40))?;
            let conn = s.connect(ctx, addr)?.expect("connect");
            if i == 2 {
                ctx.delay(SimDuration::from_millis(1))?;
                conn.write(ctx, b"from-2")?.expect("send");
            }
            ctx.delay(SimDuration::from_millis(5))?;
            conn.close(ctx)?;
            Ok(())
        });
    }
    sim.run();
    assert!(done.is_done());
}

#[test]
fn pipelined_connect_and_write_reach_the_acceptor() {
    // The §7.4 behaviour: the client writes immediately after connect();
    // the request data beats accept()'s descriptor posting and must be
    // absorbed by the unexpected queue, not a retransmission storm.
    let sim = Sim::new();
    let cl = cluster(2);
    // Credit size 4, as the paper's web server uses — §7.4 notes that with
    // 32 credits "a lot of time would be wasted in the posting and garbage
    // collection of all the descriptors".
    let cfg = SubstrateConfig::ds_da_uq().with_credits(4);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let served_at = Arc::new(Mutex::new(0u64));
    let s2 = Arc::clone(&served_at);

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        let d = conn.read(ctx, 64)?.expect("pipelined data");
        assert_eq!(&d[..], b"GET /index.html");
        *s2.lock() = ctx.now().nanos();
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"GET /index.html")?.expect("send");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let t = *served_at.lock();
    assert!(t > 0, "request served");
    assert!(
        t < 200_000,
        "request must arrive without a retransmission delay; served at {t} ns"
    );
    assert_eq!(cl.nodes[0].nic.stats().sends_failed, 0);
}

#[test]
fn fd_table_routes_files_and_sockets() {
    use sockets_emp::FdTable;
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 21);
    cl.nodes[0]
        .host
        .fs()
        .put("local.txt", &b"file contents"[..]);
    let client_fs = cl.nodes[0].host.fs().clone();
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 21, 2)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        let d = conn.read_exact(ctx, 13)?.expect("read").expect("data");
        assert_eq!(&d[..], b"file contents");
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let fds = FdTable::new(client, client_fs);
        // §5.4: the same read()/write() interface serves both a file and a
        // socket; the table decides where each call goes.
        let file_fd = fds.open(ctx, "local.txt")?.expect("open");
        let sock_fd = fds.socket_connect(ctx, addr)?.expect("connect");
        loop {
            let chunk = fds.read(ctx, file_fd, 5)?.expect("file read");
            if chunk.is_empty() {
                break;
            }
            fds.write(ctx, sock_fd, &chunk)?.expect("socket write");
        }
        fds.close(ctx, file_fd)?.expect("close file");
        fds.close(ctx, sock_fd)?.expect("close sock");
        assert_eq!(fds.live_fds(), 0);
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn stream_survives_a_lossy_fabric() {
    // Failure injection below the substrate: every 9th frame corrupted on
    // every link. EMP's reliability must make the sockets semantics hold
    // unchanged (bytes intact, in order, EOF exact).
    use simnet::LinkConfig;
    let sim = Sim::new();
    let lossy = SwitchConfig {
        link: LinkConfig {
            faults: simnet::FaultPlan::drop_every(9),
            ..LinkConfig::default()
        },
        ..SwitchConfig::default()
    };
    let cl = build_cluster(2, EmpConfig::default(), lossy);
    let server = substrate_on(&cl, 1);
    let client = substrate_on(&cl, 0);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const TOTAL: usize = 300_000;

    fn substrate_on(cl: &EmpCluster, node: usize) -> EmpSockets {
        EmpSockets::new(cl.nodes[node].endpoint(), SubstrateConfig::ds_da_uq())
    }

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut buf = Vec::with_capacity(TOTAL);
        while buf.len() < TOTAL {
            let m = conn.read(ctx, 8192)?.expect("data");
            assert!(!m.is_empty(), "premature EOF under loss");
            buf.extend_from_slice(&m);
        }
        for (i, b) in buf.iter().enumerate() {
            assert_eq!(*b as usize, (i * 13 + 5) % 239, "byte {i} corrupted");
        }
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let payload: Vec<u8> = (0..TOTAL).map(|i| ((i * 13 + 5) % 239) as u8).collect();
        for chunk in payload.chunks(50_000) {
            conn.write(ctx, chunk)?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(50))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run_until(SimTime::from_secs(300));
    assert!(done.is_done(), "transfer must complete despite loss");
    assert!(
        cl.nodes[0].nic.stats().frames_retransmitted > 0,
        "loss must have exercised retransmission"
    );
}

#[test]
fn comm_thread_ablation_degrades_latency_as_the_paper_says() {
    use sockets_emp::RecvMode;
    // §5.2: the polling comm thread costs ~20 us of synchronization per
    // message; the blocking variant degrades to scheduling granularity.
    fn latency_with(mode: RecvMode) -> f64 {
        let mut cfg = SubstrateConfig::ds_da_uq();
        cfg.recv_mode = mode;
        pingpong_latency_us(cfg)
    }
    let direct = latency_with(RecvMode::Direct);
    let polling = latency_with(RecvMode::CommThreadPolling);
    let blocking = latency_with(RecvMode::CommThreadBlocking);
    // Polling adds one ~20 us thread sync per message per side.
    assert!(
        (polling - direct - 40.0).abs() < 5.0,
        "polling thread adds ~2x20 us: direct {direct:.1}, polling {polling:.1}"
    );
    // Blocking is "order of milliseconds".
    assert!(
        blocking > 5_000.0,
        "blocking comm thread must cost milliseconds, got {blocking:.0} us"
    );
}

#[test]
fn runs_are_deterministic() {
    fn once() -> (f64, u64) {
        let us = pingpong_latency_us(SubstrateConfig::ds_da_uq());
        (us, 0)
    }
    assert_eq!(once().0.to_bits(), once().0.to_bits());
}
