//! Substrate edge cases: port limits, zero-length traffic, giant writes,
//! listener lifecycle, many sequential connections, id recycling.

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use parking_lot::Mutex;
use simnet::{Completion, Sim, SimDuration, SimTime, SwitchConfig};
use sockets_emp::{EmpSockets, SockAddr, SockError, SubstrateConfig};
use std::sync::Arc;

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn sub(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

#[test]
fn ports_beyond_the_tag_space_are_rejected() {
    let sim = Sim::new();
    let cl = cluster(2);
    let s = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    sim.spawn("p", move |ctx| {
        let too_big = 0x1000;
        assert_eq!(s.listen(ctx, too_big, 4)?.err(), Some(SockError::AddrInUse));
        assert_eq!(
            s.connect(ctx, SockAddr::new(simnet::MacAddr(1), too_big))?
                .err(),
            Some(SockError::AddrInUse)
        );
        Ok(())
    });
    sim.run();
}

#[test]
fn duplicate_listen_is_rejected() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    sim.spawn("p", move |ctx| {
        let _l = s.listen(ctx, 80, 4)?.expect("first listen");
        assert_eq!(s.listen(ctx, 80, 4)?.err(), Some(SockError::AddrInUse));
        Ok(())
    });
    sim.run();
}

#[test]
fn zero_length_stream_write_is_a_noop() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        let d = conn.read(ctx, 64)?.expect("data");
        assert_eq!(&d[..], b"after-empty");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        assert_eq!(conn.write(ctx, b"")?.expect("empty write"), 0);
        conn.write(ctx, b"after-empty")?.expect("send");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn giant_write_fragments_beyond_the_credit_budget() {
    // 2 credits x 8 KiB buffers but a 200 KiB write: 25 messages, forced
    // through the flow-control loop many times over.
    let mut cfg = SubstrateConfig::ds_da_uq().with_credits(2);
    cfg.temp_buf_size = 8 * 1024;
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, cfg.clone());
    let client = sub(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    const TOTAL: usize = 200_000;
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        let mut got = 0usize;
        while got < TOTAL {
            let d = conn.read(ctx, 16 * 1024)?.expect("data");
            assert!(!d.is_empty());
            for (i, b) in d.iter().enumerate() {
                assert_eq!(*b as usize, (got + i) % 199);
            }
            got += d.len();
        }
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 199) as u8).collect();
        assert_eq!(conn.write(ctx, &payload)?.expect("giant write"), TOTAL);
        ctx.delay(SimDuration::from_millis(5))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run_until(SimTime::from_secs(60));
    assert!(done.is_done());
}

#[test]
fn connection_ids_are_quarantined_not_instantly_reused() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, SubstrateConfig::ds_da_uq().with_credits(2));
    let client = sub(&cl, 0, SubstrateConfig::ds_da_uq().with_credits(2));
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let cids = Arc::new(Mutex::new(Vec::new()));
    let c2 = Arc::clone(&cids);
    const ROUNDS: usize = 5;

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        for _ in 0..ROUNDS {
            let conn = l.accept(ctx)?.expect("conn");
            let d = conn.read(ctx, 16)?.expect("data");
            conn.write(ctx, &d)?.expect("echo");
            loop {
                if conn.read(ctx, 16)?.expect("drain").is_empty() {
                    break;
                }
            }
            conn.close(ctx)?;
        }
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        for i in 0..ROUNDS {
            let conn = client.connect(ctx, addr)?.expect("connect");
            c2.lock().push(conn.cid());
            conn.write(ctx, format!("round-{i}").as_bytes())?
                .expect("send");
            let r = conn.read(ctx, 16)?.expect("echo");
            assert_eq!(&r[..], format!("round-{i}").as_bytes());
            conn.close(ctx)?;
        }
        Ok(())
    });
    sim.run();
    let ids = cids.lock();
    assert_eq!(ids.len(), ROUNDS);
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ROUNDS, "fresh cid per connection: {ids:?}");
}

#[test]
fn listener_close_releases_backlog_descriptors() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    let nic = Arc::clone(&cl.nodes[0].nic);
    sim.spawn("p", move |ctx| {
        let l = s.listen(ctx, 80, 6)?.expect("port");
        ctx.delay(SimDuration::from_micros(50))?;
        assert_eq!(nic.preposted_len(), 6, "backlog descriptors posted");
        l.close(ctx)?;
        ctx.delay(SimDuration::from_micros(50))?;
        assert_eq!(nic.preposted_len(), 0, "listener close unposts them");
        // The port is free again.
        let _l2 = s.listen(ctx, 80, 2)?.expect("relisten");
        Ok(())
    });
    sim.run();
}

#[test]
fn reads_capped_at_zero_bytes_return_immediately() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        let t0 = simnet::SimAccess::now(ctx);
        let d = conn.read(ctx, 0)?.expect("zero read");
        assert!(d.is_empty());
        assert_eq!(simnet::SimAccess::now(ctx), t0, "no blocking, no cost");
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
}

#[test]
fn connection_statistics_track_traffic() {
    use sockets_emp::ConnStats;
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds().with_credits(2); // per-message explicit acks
    let server = sub(&cl, 1, cfg.clone());
    let client = sub(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let server_stats = Arc::new(Mutex::new(ConnStats::default()));
    let client_stats = Arc::new(Mutex::new(ConnStats::default()));

    let ss = Arc::clone(&server_stats);
    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        let mut got = 0;
        while got < 1000 {
            let d = conn.read(ctx, 4096)?.expect("data");
            got += d.len();
        }
        conn.write(ctx, &[1u8; 100])?.expect("reply");
        ctx.delay(SimDuration::from_millis(2))?;
        *ss.lock() = conn.stats();
        conn.close(ctx)?;
        Ok(())
    });
    let cs = Arc::clone(&client_stats);
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for _ in 0..10 {
            conn.write(ctx, &[7u8; 100])?.expect("send");
        }
        let r = conn.read_exact(ctx, 100)?.expect("read").expect("reply");
        assert_eq!(r.len(), 100);
        ctx.delay(SimDuration::from_millis(2))?;
        *cs.lock() = conn.stats();
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let s = *server_stats.lock();
    let c = *client_stats.lock();
    assert_eq!(c.bytes_sent, 1000);
    assert_eq!(c.msgs_sent, 10);
    assert_eq!(c.bytes_received, 100);
    assert_eq!(s.bytes_received, 1000);
    assert_eq!(s.msgs_received, 10);
    assert_eq!(s.bytes_sent, 100);
    // Per-message explicit acks (threshold 1, piggyback off in ds()).
    assert_eq!(s.fcacks_sent, 10);
    // The client ran out of its 2 credits repeatedly.
    assert!(c.credit_stalls > 0, "2 credits for 10 messages must stall");
}

#[test]
fn rendezvous_statistics_count_round_trips() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, SubstrateConfig::dg());
    let client = sub(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        // Both reads offer 100 KiB: the first returns the small eager
        // message (boundaries preserved), the second the rendezvous one.
        let small = conn.read(ctx, 100_000)?.expect("small");
        assert_eq!(small.len(), 100);
        let large = conn.read(ctx, 100_000)?.expect("large");
        assert_eq!(large.len(), 50_000);
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, &[1u8; 100])?.expect("eager");
        conn.write(ctx, &[2u8; 50_000])?.expect("rendezvous");
        ctx.delay(SimDuration::from_millis(1))?;
        let st = conn.stats();
        assert_eq!(st.msgs_sent, 2);
        assert_eq!(st.rendezvous, 1, "only the large datagram rendezvoused");
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn shutdown_write_half_closes() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = sub(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port");
        let conn = l.accept(ctx)?.expect("conn");
        // Drain the request until the client's shutdown EOF...
        let mut req = Vec::new();
        loop {
            let d = conn.read(ctx, 64)?.expect("data");
            if d.is_empty() {
                break;
            }
            req.extend_from_slice(&d);
        }
        assert_eq!(&req[..], b"whole request");
        // ...then respond on the still-open reverse direction.
        conn.write(ctx, b"whole response")?.expect("respond");
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"whole request")?.expect("send");
        conn.shutdown_write(ctx)?;
        let err = conn.write(ctx, b"more")?.expect_err("write side closed");
        assert_eq!(err, SockError::Closed);
        let resp = conn.read_exact(ctx, 14)?.expect("read").expect("response");
        assert_eq!(&resp[..], b"whole response");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn accept_after_listener_close_errors_cleanly() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = sub(&cl, 0, SubstrateConfig::ds_da_uq());
    sim.spawn("p", move |ctx| {
        let l = s.listen(ctx, 80, 2)?.expect("port");
        l.close(ctx)?;
        assert_eq!(l.accept(ctx)?.err(), Some(SockError::Closed));
        Ok(())
    });
    sim.run();
}
