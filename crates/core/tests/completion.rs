//! Cross-stack conformance suite for the completion-queue I/O model.
//!
//! The same [`simnet::RingCore`] engine drives both stacks — the EMP
//! substrate through [`sockets_emp::EmpRingDriver`] and the kernel TCP
//! baseline through `kernel_tcp::TcpRingDriver` — so every queueing,
//! ordering, and backpressure decision is shared by construction. What
//! this suite pins down is the part that is *not* shared: the drivers'
//! nonblocking op semantics and error mapping. Each scenario runs the
//! identical submission script against both stacks and diffs the
//! normalized completion traces; every op kind (`Accept`, `Read`,
//! `Write`, `Close`), EOF (`Close { final_seq }`), short writes, and
//! op-failure surfacing must render byte-identically.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use emp_proto::{build_cluster, EmpConfig};
use kernel_tcp::{build_tcp_cluster, TcpConfig};
use simnet::ring::{Cqe, CqeResult, RingConfig, RingCore, RingDriver, RingError, RingOp, Sqe};
use simnet::{Completion, ProcessCtx, Sim, SimAccess, SimDuration, SimResult, SwitchConfig};
use sockets_emp::{EmpRing, EmpSockets, SubstrateConfig};

const PORT: u16 = 80;

/// Deterministic payload byte for (stream index, offset).
fn pat(idx: usize, i: usize) -> u8 {
    ((i * 31 + idx * 7 + 3) % 251) as u8
}

fn pattern(idx: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| pat(idx, i)).collect()
}

/// Render a completion in the stack-agnostic form the traces compare.
fn fmt_cqe(c: &Cqe) -> String {
    match c.result {
        CqeResult::Accepted { conn } => format!("{}:accepted({conn})", c.user_data),
        CqeResult::Read { buf, len } => format!("{}:read(b{buf},{len})", c.user_data),
        CqeResult::Wrote { buf, len } => format!("{}:wrote(b{buf},{len})", c.user_data),
        CqeResult::Close { conn, final_seq } => format!("{}:eof({conn},{final_seq})", c.user_data),
        CqeResult::Closed { conn } => format!("{}:closed({conn})", c.user_data),
        CqeResult::Failed { err } => format!("{}:failed({err:?})", c.user_data),
    }
}

fn push<D: RingDriver>(ring: &mut RingCore<D>, user_data: u64, op: RingOp) {
    ring.push(Sqe::new(user_data, op)).expect("push admitted");
}

/// Submit, park until at least `n` completions accumulated, reap them
/// all. Scenarios keep few enough ops in flight that batches are exact.
fn wait_cqes<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
    n: usize,
) -> SimResult<Vec<Cqe>> {
    let mut out = Vec::new();
    while out.len() < n {
        ring.submit_and_wait(ctx, n - out.len())?
            .expect("scenario keeps enough ops committed");
        out.extend(ring.reap(usize::MAX));
    }
    Ok(out)
}

/// The client half of every scenario, written once against this trait
/// and run unchanged over both stacks' blocking socket APIs.
trait ConfClient {
    fn send_all(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<()>;
    fn recv_exact(&self, ctx: &ProcessCtx, n: usize) -> SimResult<Vec<u8>>;
    fn shut(&self, ctx: &ProcessCtx) -> SimResult<()>;
}

impl ConfClient for sockets_emp::Connection {
    fn send_all(&self, ctx: &ProcessCtx, mut data: &[u8]) -> SimResult<()> {
        while !data.is_empty() {
            let n = self.write(ctx, data)?.expect("client write");
            data = &data[n..];
        }
        Ok(())
    }

    fn recv_exact(&self, ctx: &ProcessCtx, n: usize) -> SimResult<Vec<u8>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let m = self.read(ctx, n - out.len())?.expect("client read");
            assert!(!m.is_empty(), "premature EOF at byte {}", out.len());
            out.extend_from_slice(&m);
        }
        Ok(out)
    }

    fn shut(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.close(ctx)
    }
}

impl ConfClient for kernel_tcp::TcpConn {
    fn send_all(&self, ctx: &ProcessCtx, mut data: &[u8]) -> SimResult<()> {
        while !data.is_empty() {
            let n = self.write(ctx, data)?.expect("client write");
            data = &data[n..];
        }
        Ok(())
    }

    fn recv_exact(&self, ctx: &ProcessCtx, n: usize) -> SimResult<Vec<u8>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let m = self.read(ctx, n - out.len())?.expect("client read");
            assert!(!m.is_empty(), "premature EOF at byte {}", out.len());
            out.extend_from_slice(&m);
        }
        Ok(out)
    }

    fn shut(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.close(ctx)
    }
}

/// Run a scenario on the EMP substrate: `server` drives a ring whose
/// listener is registered as id 0, `client(ctx, i, conn)` runs once per
/// spawned client. Returns the server's trace after asserting the ring
/// tore down clean (no leaked buffers, every push accounted for).
fn run_emp<S, C>(n_clients: usize, cfg: RingConfig, server: S, client: C) -> Vec<String>
where
    S: FnOnce(&ProcessCtx, &mut EmpRing) -> SimResult<Vec<String>> + Send + 'static,
    C: Fn(&ProcessCtx, usize, &sockets_emp::Connection) -> SimResult<()> + Send + Sync + 'static,
{
    let sim = Sim::new();
    let cl = build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let ssub = EmpSockets::new(cl.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
    let csub = EmpSockets::new(cl.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
    let addr = sockets_emp::SockAddr::new(cl.nodes[1].addr(), PORT);
    let trace: Arc<Mutex<Vec<String>>> = Arc::default();
    let done = Completion::new();
    let (t2, d2) = (trace.clone(), done.clone());
    sim.spawn("ring-server", move |ctx| {
        let l = ssub
            .listen(ctx, PORT, n_clients.max(4))?
            .expect("port free");
        let mut ring = sockets_emp::ring::ring(cfg, "conf-emp");
        assert_eq!(ring.add_listener(l), 0);
        let tr = server(ctx, &mut ring)?;
        finish_ring(ctx, &mut ring)?;
        *t2.lock().unwrap() = tr;
        d2.complete(ctx);
        Ok(())
    });
    let client = Arc::new(client);
    let cdone: Vec<Completion> = (0..n_clients).map(|_| Completion::new()).collect();
    for (i, cd) in cdone.iter().enumerate() {
        let (sub, cf, cd) = (csub.clone(), client.clone(), cd.clone());
        sim.spawn(format!("client-{i}"), move |ctx| {
            let conn = sub.connect(ctx, addr)?.expect("connect");
            cf(ctx, i, &conn)?;
            cd.complete(ctx);
            Ok(())
        });
    }
    sim.run();
    assert!(done.is_done(), "server did not finish cleanly");
    for (i, c) in cdone.iter().enumerate() {
        assert!(c.is_done(), "client {i} did not finish cleanly");
    }
    Arc::try_unwrap(trace).unwrap().into_inner().unwrap()
}

/// [`run_emp`]'s twin over the kernel TCP baseline.
fn run_tcp<S, C>(n_clients: usize, cfg: RingConfig, server: S, client: C) -> Vec<String>
where
    S: FnOnce(&ProcessCtx, &mut kernel_tcp::TcpRing) -> SimResult<Vec<String>> + Send + 'static,
    C: Fn(&ProcessCtx, usize, &kernel_tcp::TcpConn) -> SimResult<()> + Send + Sync + 'static,
{
    let sim = Sim::new();
    let cl = build_tcp_cluster(2, TcpConfig::default(), SwitchConfig::default());
    let sapi = cl.nodes[1].api();
    let capi = cl.nodes[0].api();
    let addr = kernel_tcp::SockAddr::new(cl.nodes[1].addr(), PORT);
    let trace: Arc<Mutex<Vec<String>>> = Arc::default();
    let done = Completion::new();
    let (t2, d2) = (trace.clone(), done.clone());
    sim.spawn("ring-server", move |ctx| {
        let l = sapi
            .listen(ctx, PORT, n_clients.max(4))?
            .expect("port free");
        let mut ring = kernel_tcp::ring::ring(sapi.clone(), cfg, "conf-tcp");
        assert_eq!(ring.add_listener(l), 0);
        let tr = server(ctx, &mut ring)?;
        finish_ring(ctx, &mut ring)?;
        *t2.lock().unwrap() = tr;
        d2.complete(ctx);
        Ok(())
    });
    let client = Arc::new(client);
    let cdone: Vec<Completion> = (0..n_clients).map(|_| Completion::new()).collect();
    for (i, cd) in cdone.iter().enumerate() {
        let (api, cf, cd) = (capi.clone(), client.clone(), cd.clone());
        sim.spawn(format!("client-{i}"), move |ctx| {
            let conn = api.connect(ctx, addr)?.expect("connect");
            cf(ctx, i, &conn)?;
            cd.complete(ctx);
            Ok(())
        });
    }
    sim.run();
    assert!(done.is_done(), "server did not finish cleanly");
    for (i, c) in cdone.iter().enumerate() {
        assert!(c.is_done(), "client {i} did not finish cleanly");
    }
    Arc::try_unwrap(trace).unwrap().into_inner().unwrap()
}

/// Teardown invariants every scenario must leave behind: shutdown
/// releases the whole registered pool, the queues drain to zero, and
/// the push/complete/reap counters balance (no lost or double
/// completions).
fn finish_ring<D: RingDriver>(ctx: &ProcessCtx, ring: &mut RingCore<D>) -> SimResult<()> {
    ring.shutdown(ctx)?;
    assert_eq!(
        ring.free_bufs(),
        ring.cfg().buf_count,
        "registered buffers leaked through teardown"
    );
    let d = ring.depths();
    assert_eq!((d.sq, d.in_flight, d.cq), (0, 0, 0), "ring not drained");
    let c = ring.counters();
    assert_eq!(c.pushed, c.completed, "pushed ops lost");
    assert_eq!(c.completed, c.reaped, "completions lost");
    Ok(())
}

// --- lifecycle: every op kind once, in its natural order -------------

const LIFE_REQ: usize = 32;
const LIFE_REPLY: usize = 8;

fn lifecycle_server<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
) -> SimResult<Vec<String>> {
    let mut trace = Vec::new();
    push(ring, 1, RingOp::Accept { listener: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    push(ring, 2, RingOp::Read { conn: 0, buf: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    assert_eq!(
        &ring.buf(0).expect("registered")[..LIFE_REQ],
        &pattern(7, LIFE_REQ)[..],
        "request bytes corrupted in the registered buffer"
    );
    ring.fill(1, &pattern(8, LIFE_REPLY)).expect("fill reply");
    push(
        ring,
        3,
        RingOp::Write {
            conn: 0,
            buf: 1,
            len: LIFE_REPLY as u32,
        },
    );
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    push(ring, 4, RingOp::Read { conn: 0, buf: 2 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    push(ring, 5, RingOp::Close { conn: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    Ok(trace)
}

fn lifecycle_client<C: ConfClient>(ctx: &ProcessCtx, _i: usize, c: &C) -> SimResult<()> {
    c.send_all(ctx, &pattern(7, LIFE_REQ))?;
    let reply = c.recv_exact(ctx, LIFE_REPLY)?;
    assert_eq!(reply, pattern(8, LIFE_REPLY), "reply bytes corrupted");
    c.shut(ctx)
}

#[test]
fn lifecycle_trace_identical_across_stacks() {
    let cfg = RingConfig::default();
    let emp = run_emp(
        1,
        cfg,
        lifecycle_server,
        lifecycle_client::<sockets_emp::Connection>,
    );
    let tcp = run_tcp(
        1,
        cfg,
        lifecycle_server,
        lifecycle_client::<kernel_tcp::TcpConn>,
    );
    let want = vec![
        "1:accepted(0)".to_string(),
        format!("2:read(b0,{LIFE_REQ})"),
        format!("3:wrote(b1,{LIFE_REPLY})"),
        format!("4:eof(0,{LIFE_REQ})"),
        "5:closed(0)".to_string(),
    ];
    assert_eq!(emp, want, "substrate lifecycle trace");
    assert_eq!(tcp, want, "kernel lifecycle trace");
}

// --- per-connection FIFO: queued ops run and complete in push order --

fn fifo_server<D: RingDriver>(ctx: &ProcessCtx, ring: &mut RingCore<D>) -> SimResult<Vec<String>> {
    let mut trace = Vec::new();
    push(ring, 9, RingOp::Accept { listener: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    // Three ops queued on the same connection before any data exists:
    // a read, a write, a read. FIFO means the write cannot jump the
    // queue even though it could complete immediately.
    ring.fill(1, &pattern(2, 8)).expect("fill reply");
    push(ring, 10, RingOp::Read { conn: 0, buf: 0 });
    push(
        ring,
        11,
        RingOp::Write {
            conn: 0,
            buf: 1,
            len: 8,
        },
    );
    push(ring, 12, RingOp::Read { conn: 0, buf: 2 });
    trace.extend(wait_cqes(ctx, ring, 3)?.iter().map(fmt_cqe));
    assert_eq!(&ring.buf(0).expect("registered")[..16], &pattern(1, 16)[..]);
    assert_eq!(&ring.buf(2).expect("registered")[..16], &pattern(3, 16)[..]);
    push(ring, 13, RingOp::Read { conn: 0, buf: 3 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    push(ring, 14, RingOp::Close { conn: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    Ok(trace)
}

fn fifo_client<C: ConfClient>(ctx: &ProcessCtx, _i: usize, c: &C) -> SimResult<()> {
    c.send_all(ctx, &pattern(1, 16))?;
    // The reply only arrives after the first read completed (FIFO), so
    // receiving it synchronizes the second send.
    let reply = c.recv_exact(ctx, 8)?;
    assert_eq!(reply, pattern(2, 8));
    c.send_all(ctx, &pattern(3, 16))?;
    c.shut(ctx)
}

#[test]
fn fifo_order_identical_across_stacks() {
    let cfg = RingConfig::default();
    let emp = run_emp(1, cfg, fifo_server, fifo_client::<sockets_emp::Connection>);
    let tcp = run_tcp(1, cfg, fifo_server, fifo_client::<kernel_tcp::TcpConn>);
    let want = vec![
        "9:accepted(0)".to_string(),
        // Short reads: 16 bytes into a 4096-byte registered buffer.
        "10:read(b0,16)".to_string(),
        "11:wrote(b1,8)".to_string(),
        "12:read(b2,16)".to_string(),
        "13:eof(0,32)".to_string(),
        "14:closed(0)".to_string(),
    ];
    assert_eq!(emp, want, "substrate FIFO trace");
    assert_eq!(tcp, want, "kernel FIFO trace");
}

// --- EOF: final_seq counts every delivered byte, bytes intact --------

const BULK_TOTAL: usize = 10_000;

fn bulk_read_server<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
) -> SimResult<Vec<String>> {
    let mut trace = Vec::new();
    push(ring, 1, RingOp::Accept { listener: 0 });
    assert_eq!(fmt_cqe(&wait_cqes(ctx, ring, 1)?[0]), "1:accepted(0)");
    let mut got = Vec::with_capacity(BULK_TOTAL);
    let mut ud = 2;
    loop {
        push(ring, ud, RingOp::Read { conn: 0, buf: 0 });
        let cqe = wait_cqes(ctx, ring, 1)?[0];
        assert_eq!(cqe.user_data, ud);
        match cqe.result {
            CqeResult::Read { buf, len } => {
                got.extend_from_slice(&ring.buf(buf).expect("registered")[..len as usize]);
            }
            CqeResult::Close { conn, final_seq } => {
                trace.push(format!("eof({conn},{final_seq})"));
                break;
            }
            other => panic!("unexpected completion {other:?}"),
        }
        ud += 1;
    }
    assert_eq!(got.len(), BULK_TOTAL, "byte count");
    for (i, b) in got.iter().enumerate() {
        assert_eq!(*b, pat(0, i), "byte {i} corrupted");
    }
    push(ring, ud + 1, RingOp::Close { conn: 0 });
    let cqe = wait_cqes(ctx, ring, 1)?[0];
    assert!(matches!(cqe.result, CqeResult::Closed { conn: 0 }));
    trace.push("closed(0)".into());
    Ok(trace)
}

fn bulk_write_client<C: ConfClient>(ctx: &ProcessCtx, _i: usize, c: &C) -> SimResult<()> {
    let data = pattern(0, BULK_TOTAL);
    for chunk in data.chunks(1000) {
        c.send_all(ctx, chunk)?;
    }
    c.shut(ctx)
}

#[test]
fn eof_final_seq_counts_all_delivered_bytes() {
    // Read sizes differ between the stacks (message vs segment
    // boundaries), so only the EOF accounting is diffed: both must
    // report exactly BULK_TOTAL bytes delivered before the peer close.
    let cfg = RingConfig::default();
    let emp = run_emp(
        1,
        cfg,
        bulk_read_server,
        bulk_write_client::<sockets_emp::Connection>,
    );
    let tcp = run_tcp(
        1,
        cfg,
        bulk_read_server,
        bulk_write_client::<kernel_tcp::TcpConn>,
    );
    let want = vec![format!("eof(0,{BULK_TOTAL})"), "closed(0)".to_string()];
    assert_eq!(emp, want, "substrate EOF accounting");
    assert_eq!(tcp, want, "kernel EOF accounting");
}

// --- short writes: a 64 KiB push through 4 KiB buffers ---------------

const SEND_TOTAL: usize = 65_536;

fn bulk_write_server<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
) -> SimResult<Vec<String>> {
    push(ring, 1, RingOp::Accept { listener: 0 });
    assert_eq!(fmt_cqe(&wait_cqes(ctx, ring, 1)?[0]), "1:accepted(0)");
    let data = pattern(9, SEND_TOTAL);
    let buf_size = ring.cfg().buf_size;
    let mut sent = 0;
    let mut ud = 2;
    while sent < SEND_TOTAL {
        let want = (SEND_TOTAL - sent).min(buf_size);
        ring.fill(0, &data[sent..sent + want]).expect("fill chunk");
        push(
            ring,
            ud,
            RingOp::Write {
                conn: 0,
                buf: 0,
                len: want as u32,
            },
        );
        let cqe = wait_cqes(ctx, ring, 1)?[0];
        match cqe.result {
            // Short writes are legal results: the stack reports what it
            // accepted and the application continues from there.
            CqeResult::Wrote { buf: 0, len } => {
                assert!(
                    (1..=want as u32).contains(&len),
                    "write result {len} out of range 1..={want}"
                );
                sent += len as usize;
            }
            other => panic!("unexpected completion {other:?}"),
        }
        ud += 1;
    }
    push(ring, ud, RingOp::Close { conn: 0 });
    let cqe = wait_cqes(ctx, ring, 1)?[0];
    assert!(matches!(cqe.result, CqeResult::Closed { conn: 0 }));
    Ok(vec![format!("sent({sent})")])
}

fn bulk_read_client<C: ConfClient>(ctx: &ProcessCtx, _i: usize, c: &C) -> SimResult<()> {
    let got = c.recv_exact(ctx, SEND_TOTAL)?;
    for (i, b) in got.iter().enumerate() {
        assert_eq!(*b, pat(9, i), "byte {i} corrupted");
    }
    c.shut(ctx)
}

#[test]
fn short_writes_deliver_byte_exact_on_both_stacks() {
    let cfg = RingConfig::default();
    let emp = run_emp(
        1,
        cfg,
        bulk_write_server,
        bulk_read_client::<sockets_emp::Connection>,
    );
    let tcp = run_tcp(
        1,
        cfg,
        bulk_write_server,
        bulk_read_client::<kernel_tcp::TcpConn>,
    );
    let want = vec![format!("sent({SEND_TOTAL})")];
    assert_eq!(emp, want, "substrate short-write continuation");
    assert_eq!(tcp, want, "kernel short-write continuation");
}

// --- error surfacing: ops behind a Close fail in order, retired ids
// --- are rejected at push -------------------------------------------

fn close_order_server<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
) -> SimResult<Vec<String>> {
    let mut trace = Vec::new();
    push(ring, 1, RingOp::Accept { listener: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    // A close with ops queued behind it: the close wins, the rest fail
    // with the stack-agnostic `Closed` error, in submission order.
    ring.fill(1, &[7; 4]).expect("fill");
    push(ring, 20, RingOp::Close { conn: 0 });
    push(ring, 21, RingOp::Read { conn: 0, buf: 0 });
    push(
        ring,
        22,
        RingOp::Write {
            conn: 0,
            buf: 1,
            len: 4,
        },
    );
    trace.extend(wait_cqes(ctx, ring, 3)?.iter().map(fmt_cqe));
    // The id is retired: later pushes are rejected synchronously.
    assert_eq!(
        ring.push(Sqe::new(23, RingOp::Read { conn: 0, buf: 0 })),
        Err(RingError::BadTarget(0)),
        "retired connection id must be rejected at push"
    );
    Ok(trace)
}

#[test]
fn ops_behind_close_fail_identically_across_stacks() {
    let cfg = RingConfig::default();
    let client = |ctx: &ProcessCtx, _i: usize, c: &sockets_emp::Connection| c.shut(ctx);
    let emp = run_emp(1, cfg, close_order_server, client);
    let client = |ctx: &ProcessCtx, _i: usize, c: &kernel_tcp::TcpConn| c.shut(ctx);
    let tcp = run_tcp(1, cfg, close_order_server, client);
    let want = vec![
        "1:accepted(0)".to_string(),
        "20:closed(0)".to_string(),
        "21:failed(Closed)".to_string(),
        "22:failed(Closed)".to_string(),
    ];
    assert_eq!(emp, want, "substrate close-ordering trace");
    assert_eq!(tcp, want, "kernel close-ordering trace");
}

// --- push validation: every typed backpressure/argument error --------

#[test]
fn push_validation_surfaces_typed_errors() {
    // Engine-level validation is stack-independent (it never reaches a
    // driver), so one substrate run covers it. sq=8 > cq=3 makes CQ
    // admission the binding constraint.
    let cfg = RingConfig {
        sq_depth: 8,
        cq_depth: 3,
        buf_count: 4,
        buf_size: 64,
        max_registered_bytes: None,
    };
    let server = move |ctx: &ProcessCtx, ring: &mut EmpRing| {
        // A wait with nothing committed can never end: typed error.
        assert_eq!(
            ring.submit_and_wait(ctx, 1)?,
            Err(RingError::Stalled),
            "empty ring must refuse to park"
        );
        push(ring, 1, RingOp::Accept { listener: 0 });
        let cqes = wait_cqes(ctx, ring, 1)?;
        assert!(matches!(cqes[0].result, CqeResult::Accepted { conn: 0 }));

        let read = |buf| Sqe::new(40, RingOp::Read { conn: 0, buf });
        ring.push(read(0)).expect("first read admitted");
        // The same registered buffer cannot back two in-flight ops.
        assert_eq!(ring.push(read(0)), Err(RingError::BufInFlight(0)));
        assert_eq!(ring.push(read(99)), Err(RingError::BadBuf(99)));
        assert_eq!(
            ring.push(Sqe::new(
                41,
                RingOp::Write {
                    conn: 0,
                    buf: 1,
                    len: 65,
                },
            )),
            Err(RingError::BadLen { buf: 1, len: 65 }),
            "write longer than the registered buffer"
        );
        assert_eq!(
            ring.push(Sqe::new(42, RingOp::Read { conn: 7, buf: 1 })),
            Err(RingError::BadTarget(7)),
            "unknown connection id"
        );
        // CQ admission: committed ops (SQ + in flight + unreaped CQEs)
        // are capped at cq_depth so completions can never be dropped.
        push(ring, 43, RingOp::Read { conn: 0, buf: 1 });
        push(ring, 44, RingOp::Read { conn: 0, buf: 2 });
        assert_eq!(
            ring.push(Sqe::new(45, RingOp::Read { conn: 0, buf: 3 })),
            Err(RingError::CqOverflow),
            "admitting a 4th op could overflow the 3-deep CQ"
        );
        Ok(Vec::new())
    };
    run_emp(1, cfg, server, |ctx, _i, c: &sockets_emp::Connection| {
        c.shut(ctx)
    });

    // With a deep CQ the submission queue itself is the bound.
    let cfg = RingConfig {
        sq_depth: 2,
        cq_depth: 8,
        buf_count: 4,
        buf_size: 64,
        max_registered_bytes: None,
    };
    let server = move |ctx: &ProcessCtx, ring: &mut EmpRing| {
        push(ring, 1, RingOp::Accept { listener: 0 });
        let cqes = wait_cqes(ctx, ring, 1)?;
        assert!(matches!(cqes[0].result, CqeResult::Accepted { conn: 0 }));
        push(ring, 50, RingOp::Read { conn: 0, buf: 0 });
        push(ring, 51, RingOp::Read { conn: 0, buf: 1 });
        assert_eq!(
            ring.push(Sqe::new(52, RingOp::Read { conn: 0, buf: 2 })),
            Err(RingError::SqFull),
            "third unsubmitted push overflows the 2-deep SQ"
        );
        Ok(Vec::new())
    };
    run_emp(1, cfg, server, |ctx, _i, c: &sockets_emp::Connection| {
        c.shut(ctx)
    });
}

// --- 32 concurrent connections, byte-exact echo ----------------------

const ECHO_CONNS: usize = 32;
const ECHO_REQS: usize = 4;
const ECHO_MSG: usize = 512;

struct EchoState {
    buf: u32,
    pending: Vec<u8>,
    sent: usize,
}

/// A completion-model echo server driven directly against the ring
/// engine: one op in flight per connection, one registered buffer per
/// connection, accepts re-armed until every expected client arrived.
fn echo_server<D: RingDriver>(ctx: &ProcessCtx, ring: &mut RingCore<D>) -> SimResult<Vec<String>> {
    const UD_ACCEPT: u64 = u64::MAX;
    let mut free: Vec<u32> = (0..ring.cfg().buf_count as u32).collect();
    let mut st: BTreeMap<u32, EchoState> = BTreeMap::new();
    let mut accepted = 0usize;
    let mut closed = 0usize;
    push(ring, UD_ACCEPT, RingOp::Accept { listener: 0 });
    while closed < ECHO_CONNS {
        ring.submit_and_wait(ctx, 1)?
            .expect("a live connection always has a committed op");
        for cqe in ring.reap(usize::MAX) {
            match cqe.result {
                CqeResult::Accepted { conn } => {
                    accepted += 1;
                    if accepted < ECHO_CONNS {
                        push(ring, UD_ACCEPT, RingOp::Accept { listener: 0 });
                    }
                    let buf = free.pop().expect("pool holds one buffer per conn");
                    st.insert(
                        conn,
                        EchoState {
                            buf,
                            pending: Vec::new(),
                            sent: 0,
                        },
                    );
                    push(ring, u64::from(conn), RingOp::Read { conn, buf });
                }
                CqeResult::Read { buf, len } => {
                    let conn = cqe.user_data as u32;
                    let s = st.get_mut(&conn).expect("known conn");
                    s.pending = ring.buf(buf).expect("registered")[..len as usize].to_vec();
                    s.sent = 0;
                    ring.fill(buf, &s.pending).expect("echo refill");
                    push(
                        ring,
                        u64::from(conn),
                        RingOp::Write {
                            conn,
                            buf,
                            len: s.pending.len() as u32,
                        },
                    );
                }
                CqeResult::Wrote { buf, len } => {
                    let conn = cqe.user_data as u32;
                    let s = st.get_mut(&conn).expect("known conn");
                    s.sent += len as usize;
                    if s.sent < s.pending.len() {
                        // Short write: continue from where the stack
                        // stopped, same registered buffer.
                        let rest = s.pending[s.sent..].to_vec();
                        ring.fill(buf, &rest).expect("refill rest");
                        push(
                            ring,
                            u64::from(conn),
                            RingOp::Write {
                                conn,
                                buf,
                                len: rest.len() as u32,
                            },
                        );
                    } else {
                        push(ring, u64::from(conn), RingOp::Read { conn, buf });
                    }
                }
                CqeResult::Close { conn, final_seq } => {
                    assert_eq!(
                        final_seq,
                        (ECHO_REQS * ECHO_MSG) as u64,
                        "conn {conn} EOF accounting"
                    );
                    free.push(st.remove(&conn).expect("known conn").buf);
                    push(ring, u64::from(conn), RingOp::Close { conn });
                }
                CqeResult::Closed { .. } => closed += 1,
                CqeResult::Failed { err } => panic!("echo op failed: {err:?}"),
            }
        }
    }
    assert_eq!(ring.live_conns(), 0, "all connections retired");
    Ok(vec![format!("served({closed})")])
}

fn echo_client<C: ConfClient>(ctx: &ProcessCtx, i: usize, c: &C) -> SimResult<()> {
    for r in 0..ECHO_REQS {
        let msg = pattern(i * ECHO_REQS + r + 11, ECHO_MSG);
        c.send_all(ctx, &msg)?;
        let echo = c.recv_exact(ctx, ECHO_MSG)?;
        assert_eq!(echo, msg, "client {i} round {r} echo mismatch");
    }
    c.shut(ctx)
}

fn echo_cfg() -> RingConfig {
    RingConfig {
        sq_depth: 2 * ECHO_CONNS + 4,
        cq_depth: 4 * ECHO_CONNS + 8,
        buf_count: ECHO_CONNS + 4,
        buf_size: 4096,
        max_registered_bytes: None,
    }
}

#[test]
fn echo_32_connections_byte_exact_on_substrate() {
    let trace = run_emp(
        ECHO_CONNS,
        echo_cfg(),
        echo_server,
        echo_client::<sockets_emp::Connection>,
    );
    assert_eq!(trace, vec![format!("served({ECHO_CONNS})")]);
}

#[test]
fn echo_32_connections_byte_exact_on_kernel() {
    let trace = run_tcp(
        ECHO_CONNS,
        echo_cfg(),
        echo_server,
        echo_client::<kernel_tcp::TcpConn>,
    );
    assert_eq!(trace, vec![format!("served({ECHO_CONNS})")]);
}

// --- per-op deadlines: a deadlined Sqe fires Timeout while ops on
// --- other targets proceed, and head-of-line releases afterwards ----

fn deadline_server<D: RingDriver>(
    ctx: &ProcessCtx,
    ring: &mut RingCore<D>,
) -> SimResult<Vec<String>> {
    let mut trace = Vec::new();
    let ms = SimDuration::from_millis;
    push(ring, 1, RingOp::Accept { listener: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));

    // A deadlined accept nobody will ever satisfy, alongside a read the
    // client answers at ~1 ms. The read must complete on schedule — the
    // stalled accept is on a different target and cannot block it —
    // and the accept must then expire as a typed Timeout at 5 ms.
    ring.push(Sqe::new(20, RingOp::Accept { listener: 0 }).with_deadline(ctx.now() + ms(5)))
        .expect("push deadlined accept");
    push(ring, 21, RingOp::Read { conn: 0, buf: 0 });
    trace.extend(wait_cqes(ctx, ring, 2)?.iter().map(fmt_cqe));

    // A deadlined read the client never satisfies, with a write queued
    // behind it on the same connection: per-target FIFO holds the write
    // until the deadline retires the read, then the write proceeds.
    ring.fill(2, &[7; 4]).expect("fill");
    ring.push(Sqe::new(22, RingOp::Read { conn: 0, buf: 1 }).with_deadline(ctx.now() + ms(5)))
        .expect("push deadlined read");
    push(
        ring,
        23,
        RingOp::Write {
            conn: 0,
            buf: 2,
            len: 4,
        },
    );
    trace.extend(wait_cqes(ctx, ring, 2)?.iter().map(fmt_cqe));

    push(ring, 24, RingOp::Close { conn: 0 });
    trace.extend(wait_cqes(ctx, ring, 1)?.iter().map(fmt_cqe));
    Ok(trace)
}

fn deadline_client<C: ConfClient>(ctx: &ProcessCtx, _i: usize, c: &C) -> SimResult<()> {
    ctx.delay(SimDuration::from_millis(1))?;
    c.send_all(ctx, &[9; 4])?;
    let got = c.recv_exact(ctx, 4)?;
    assert_eq!(got, [7; 4], "post-timeout write corrupted");
    c.shut(ctx)
}

fn deadline_trace() -> Vec<String> {
    vec![
        "1:accepted(0)".to_string(),
        "21:read(b0,4)".to_string(),
        "20:failed(Timeout)".to_string(),
        "22:failed(Timeout)".to_string(),
        "23:wrote(b2,4)".to_string(),
        "24:closed(0)".to_string(),
    ]
}

#[test]
fn deadlined_sqes_time_out_while_other_targets_proceed_on_both_stacks() {
    let cfg = RingConfig::default();
    let emp = run_emp(
        1,
        cfg,
        deadline_server,
        deadline_client::<sockets_emp::Connection>,
    );
    let tcp = run_tcp(
        1,
        cfg,
        deadline_server,
        deadline_client::<kernel_tcp::TcpConn>,
    );
    assert_eq!(emp, deadline_trace(), "substrate deadline trace");
    assert_eq!(tcp, deadline_trace(), "kernel deadline trace");
}

// --- ring deadlines compose with the substrate's connection-level
// --- timeout knobs (connect timeout, peer watchdog) -----------------

#[test]
fn ring_deadlines_fire_under_connect_timeout_and_peer_watchdog() {
    let ms = SimDuration::from_millis;
    let sim = Sim::new();
    let cl = build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    // Both overload knobs armed: the connect path carries a 50 ms
    // deadline, blocking waits a 20 ms ack-starvation watchdog. Ring
    // deadlines are shorter than both and must fire independently.
    let cfg = SubstrateConfig::ds_da_uq()
        .with_connect_timeout(ms(50))
        .with_peer_watchdog(ms(20));
    let ssub = EmpSockets::new(cl.nodes[1].endpoint(), cfg.clone());
    let csub = EmpSockets::new(cl.nodes[0].endpoint(), cfg);
    let addr = sockets_emp::SockAddr::new(cl.nodes[1].addr(), PORT);
    let done = Completion::new();
    let cdone = Completion::new();
    let (d2, cd2) = (done.clone(), cdone.clone());

    sim.spawn("watchdog-ring-server", move |ctx| {
        let l = ssub.listen(ctx, PORT, 4)?.expect("port free");
        let mut ring = sockets_emp::ring::ring(RingConfig::default(), "wd-ring");
        ring.add_listener(l);
        push(&mut ring, 1, RingOp::Accept { listener: 0 });
        let cqes = wait_cqes(ctx, &mut ring, 1)?;
        assert!(matches!(cqes[0].result, CqeResult::Accepted { conn: 0 }));

        // The client stays silent for 10 ms — longer than the 5 ms ring
        // deadline, shorter than the 20 ms watchdog. The deadline wins
        // and the connection survives it.
        let t0 = ctx.now();
        ring.push(Sqe::new(20, RingOp::Read { conn: 0, buf: 0 }).with_deadline(t0 + ms(5)))
            .expect("push deadlined read");
        let cqes = wait_cqes(ctx, &mut ring, 1)?;
        assert!(
            matches!(
                cqes[0].result,
                CqeResult::Failed {
                    err: simnet::ring::OpError::Timeout
                }
            ),
            "5 ms ring deadline must fire before the 20 ms watchdog: {cqes:?}"
        );
        assert_eq!(ctx.now().since(t0), ms(5), "deadline fired off schedule");

        // The connection is still live: a fresh undeadlined read picks
        // up the client's (late) payload.
        push(&mut ring, 21, RingOp::Read { conn: 0, buf: 0 });
        let cqes = wait_cqes(ctx, &mut ring, 1)?;
        assert!(
            matches!(cqes[0].result, CqeResult::Read { buf: 0, len: 4 }),
            "post-deadline read must still deliver: {cqes:?}"
        );
        push(&mut ring, 22, RingOp::Close { conn: 0 });
        let _ = wait_cqes(ctx, &mut ring, 1)?;
        finish_ring(ctx, &mut ring)?;
        d2.complete(ctx);
        Ok(())
    });
    sim.spawn("watchdog-ring-client", move |ctx| {
        let conn = csub.connect(ctx, addr)?.expect("connect under deadline");
        ctx.delay(ms(10))?;
        conn.write(ctx, &[5; 4])?.expect("late write");
        conn.close(ctx)?;
        cd2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done(), "server did not finish");
    assert!(cdone.is_done(), "client did not finish");
}
