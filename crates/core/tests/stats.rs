//! ConnStats behaviour under the Figure 11 presets: the per-connection
//! counters must move the way each enhancement says they should —
//! explicit fc-acks per message under `DS`, far fewer under `DS_DA`,
//! the same accounting when acks ride the unexpected queue (`DS_DA_UQ`),
//! piggy-backed credits only when traffic is bidirectional, and
//! rendezvous round trips only for large datagrams (`DG`).

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use parking_lot::Mutex;
use simnet::{Sim, SimDuration, SwitchConfig};
use sockets_emp::{ConnStats, EmpSockets, SockAddr, SubstrateConfig};
use std::sync::Arc;

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn substrate(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

/// One-way transfer: the writer sends `count` messages of `size` bytes,
/// the reader drains them. Returns `(writer_stats, reader_stats)`.
fn one_way(cfg: SubstrateConfig, count: usize, size: usize) -> (ConnStats, ConnStats) {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let out = Arc::new(Mutex::new((ConnStats::default(), ConnStats::default())));

    let cap = size.max(4096);
    let o = Arc::clone(&out);
    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        loop {
            let d = conn.read(ctx, cap)?.expect("data");
            if d.is_empty() {
                break;
            }
        }
        o.lock().1 = conn.stats();
        Ok(())
    });
    let o = Arc::clone(&out);
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let buf = vec![7u8; size];
        for _ in 0..count {
            conn.write(ctx, &buf)?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(2))?;
        o.lock().0 = conn.stats();
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let r = *out.lock();
    r
}

/// Ping-pong exchange: both sides alternate send/receive `iters` times.
/// Returns `(client_stats, server_stats)`.
fn ping_pong(cfg: SubstrateConfig, iters: usize) -> (ConnStats, ConnStats) {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let out = Arc::new(Mutex::new((ConnStats::default(), ConnStats::default())));

    let o = Arc::clone(&out);
    sim.spawn("echoer", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        loop {
            let m = conn.read(ctx, 64)?.expect("data");
            if m.is_empty() {
                break;
            }
            conn.write(ctx, &m)?.expect("echo");
        }
        o.lock().1 = conn.stats();
        Ok(())
    });
    let o = Arc::clone(&out);
    sim.spawn("pinger", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for _ in 0..iters {
            conn.write(ctx, b"ping")?.expect("w");
            conn.read_exact(ctx, 4)?.expect("r").expect("pong");
        }
        o.lock().0 = conn.stats();
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let r = *out.lock();
    r
}

#[test]
fn ds_sends_an_explicit_fcack_per_message() {
    let (w, r) = one_way(SubstrateConfig::ds(), 64, 256);
    assert_eq!(w.msgs_sent, 64);
    assert_eq!(r.msgs_received, 64);
    assert_eq!(r.bytes_received, 64 * 256);
    // No delayed acks: every consumed message is acknowledged explicitly.
    assert!(
        r.fcacks_sent >= 60,
        "DS must ack (nearly) per message, got {}",
        r.fcacks_sent
    );
    // One-way traffic with piggybacking off: nothing to ride on.
    assert_eq!(r.piggybacked_credits, 0);
    assert_eq!(w.piggybacked_credits, 0);
    assert_eq!(w.rendezvous, 0);
}

#[test]
fn ds_da_cuts_fcacks_by_the_delay_threshold() {
    let (_, r_ds) = one_way(SubstrateConfig::ds(), 64, 256);
    let (_, r_da) = one_way(SubstrateConfig::ds_da(), 64, 256);
    assert_eq!(r_da.msgs_received, 64);
    assert!(r_da.fcacks_sent > 0, "some acks must still flow");
    assert!(
        r_da.fcacks_sent <= r_ds.fcacks_sent / 4,
        "delayed acks must batch: DS {} vs DS_DA {}",
        r_ds.fcacks_sent,
        r_da.fcacks_sent
    );
}

#[test]
fn ds_da_uq_accounts_acks_identically_to_ds_da() {
    // Routing acks through the unexpected queue changes where they land
    // on the sender's NIC, not how many the receiver sends.
    let (_, r_da) = one_way(SubstrateConfig::ds_da(), 64, 256);
    let (_, r_uq) = one_way(SubstrateConfig::ds_da_uq(), 64, 256);
    assert_eq!(r_uq.msgs_received, 64);
    assert_eq!(
        r_uq.fcacks_sent, r_da.fcacks_sent,
        "UQ routing must not change the ack count"
    );
}

#[test]
fn credit_stalls_move_when_the_receiver_lags() {
    // 2 credits and a reader that sleeps 5 ms before draining: the third
    // write must block, and the counter must say so.
    let cfg = SubstrateConfig::ds().with_credits(2);
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let stalls = Arc::new(Mutex::new(0u64));

    sim.spawn("lazy-reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        ctx.delay(SimDuration::from_millis(5))?;
        loop {
            let d = conn.read(ctx, 4096)?.expect("data");
            if d.is_empty() {
                break;
            }
        }
        Ok(())
    });
    let s2 = Arc::clone(&stalls);
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for i in 0..6 {
            conn.write(ctx, &[i as u8; 100])?.expect("send");
        }
        *s2.lock() = conn.stats().credit_stalls;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let n = *stalls.lock();
    assert!(n > 0, "writes beyond the credit window must record stalls");
}

#[test]
fn unstalled_writer_records_no_credit_stalls() {
    let (w, _) = one_way(SubstrateConfig::ds_da_uq(), 16, 256);
    assert_eq!(
        w.credit_stalls, 0,
        "16 msgs against 32 credits and a draining reader must not stall"
    );
}

#[test]
fn piggybacked_credits_move_only_with_bidirectional_traffic() {
    // Ping-pong under the piggyback ablation. Piggy-backing rides credits
    // accrued *before* the ack threshold fires, so it only bites with
    // delayed acks (under plain DS the threshold is 1 and every consumed
    // credit becomes an explicit ack before any write can carry it).
    let (c_pb, s_pb) = ping_pong(SubstrateConfig::ds_da().with_piggyback(), 32);
    assert!(
        c_pb.piggybacked_credits > 0 && s_pb.piggybacked_credits > 0,
        "echo traffic must carry piggy-backed credits: {} / {}",
        c_pb.piggybacked_credits,
        s_pb.piggybacked_credits
    );
    // Without the toggle the same workload uses explicit acks only.
    let (c, s) = ping_pong(SubstrateConfig::ds_da(), 32);
    assert_eq!(c.piggybacked_credits, 0);
    assert_eq!(s.piggybacked_credits, 0);
    assert!(
        s_pb.fcacks_sent < s.fcacks_sent,
        "piggybacking must displace explicit acks: {} vs {}",
        s_pb.fcacks_sent,
        s.fcacks_sent
    );
}

#[test]
fn dg_counts_rendezvous_only_for_large_datagrams() {
    // Small datagrams are eager.
    let (w_small, r_small) = one_way(SubstrateConfig::dg(), 8, 512);
    assert_eq!(w_small.rendezvous, 0, "512-byte datagrams must stay eager");
    assert_eq!(r_small.msgs_received, 8);
    // Large ones must take the §5.2 request/grant/data round trip.
    let (w_big, r_big) = one_way(SubstrateConfig::dg(), 3, 100_000);
    assert_eq!(
        w_big.rendezvous, 3,
        "each large datagram is one rendezvous round trip"
    );
    assert_eq!(r_big.bytes_received, 3 * 100_000);
    // Streams never rendezvous, whatever the size.
    let (w_stream, _) = one_way(SubstrateConfig::ds_da_uq(), 3, 100_000);
    assert_eq!(w_stream.rendezvous, 0);
}

#[test]
fn substrate_stats_aggregate_over_live_connections() {
    // EmpSockets::stats() must sum per-connection counters and count the
    // live sockets/listeners it holds.
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let seen = Arc::new(Mutex::new(None));

    let server2 = server.clone();
    sim.spawn("server", move |ctx| {
        let l = server2.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("request");
        loop {
            let d = conn.read(ctx, 4096)?.expect("data");
            if d.is_empty() {
                break;
            }
        }
        Ok(())
    });
    let s2 = Arc::clone(&seen);
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for _ in 0..16 {
            conn.write(ctx, &[9u8; 128])?.expect("send");
        }
        ctx.delay(SimDuration::from_millis(1))?;
        let agg = client.stats();
        assert_eq!(agg.connections, 1);
        assert_eq!(agg.listeners, 0);
        assert_eq!(agg.totals, conn.stats());
        *s2.lock() = Some(server.stats());
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    let srv = seen.lock().take().expect("server snapshot");
    assert_eq!(srv.connections, 1);
    assert_eq!(srv.listeners, 1);
    assert_eq!(srv.totals.msgs_received, 16);
    assert_eq!(srv.totals.bytes_received, 16 * 128);
}
