//! The adaptive zero-copy data path: receiver-posted direct delivery and
//! small-write coalescing, exercised on a clean fabric where the exact
//! counter values are deterministic — direct vs temp-buffer interleaving
//! with partial reads, `try_read` racing arrivals, and coalesced
//! request/response traffic that must not deadlock or inflate latency.

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use simnet::{Completion, Sim, SimDuration, SwitchConfig};
use sockets_emp::{ConnStats, EmpSockets, SockAddr, SockError, SubstrateConfig};

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn substrate(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

fn pat(i: usize) -> u8 {
    ((i * 31 + 3) % 251) as u8
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(pat).collect()
}

/// A posted reader (parked in `read()` with a big-enough buffer) must
/// take every message through the direct path: zero temp-buffer copies,
/// every received byte accounted as direct.
#[test]
fn posted_reader_takes_every_message_directly() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_direct_delivery();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const MSG: usize = 1024;
    const ROUNDS: usize = 20;

    sim.spawn("echoer", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        loop {
            let m = conn.read(ctx, MSG)?.expect("data");
            if m.is_empty() {
                break;
            }
            conn.write(ctx, &m)?.expect("echo");
        }
        let s = conn.stats();
        assert_eq!(s.copies_avoided, ROUNDS as u64, "every ping direct");
        assert_eq!(s.bytes_direct, (ROUNDS * MSG) as u64);
        assert_eq!(s.bytes_received, s.bytes_direct, "no temp-buffer bytes");
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    sim.spawn("pinger", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let payload = pattern(MSG);
        for _ in 0..ROUNDS {
            conn.write(ctx, &payload)?.expect("ping");
            let echo = conn.read_exact(ctx, MSG)?.expect("read").expect("pong");
            assert_eq!(&echo[..], &payload[..]);
        }
        let s = conn.stats();
        assert_eq!(s.copies_avoided, ROUNDS as u64, "every pong direct");
        assert_eq!(s.bytes_direct, (ROUNDS * MSG) as u64);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// Direct delivery must interleave correctly with the §6.2 temp-buffer
/// path: a partial read (buffer smaller than the message) takes the
/// buffered path and leaves a remainder; a fully-posted read takes the
/// direct path; bytes stay exact throughout.
#[test]
fn partial_reads_interleave_with_direct_delivery() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_direct_delivery();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    let gap = SimDuration::from_millis(1);

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut got = Vec::new();
        // Message 1 (1000 B) read with a 400 B buffer: too big for the
        // posted buffer, so it must take the temp-buffer path and serve
        // partial reads.
        let m = conn.read(ctx, 400)?.expect("data");
        assert_eq!(m.len(), 400, "partial read from the buffered stream");
        got.extend_from_slice(&m);
        let m = conn.read(ctx, 8192)?.expect("data");
        assert_eq!(m.len(), 600, "the rest of message 1, still buffered");
        got.extend_from_slice(&m);
        assert_eq!(conn.stats().copies_avoided, 0, "nothing direct yet");
        // Message 2 (500 B) read with the stream drained and a big
        // posted buffer: the direct path.
        let m = conn.read(ctx, 8192)?.expect("data");
        assert_eq!(m.len(), 500, "message 2 whole");
        got.extend_from_slice(&m);
        let s = conn.stats();
        assert_eq!(s.copies_avoided, 1, "exactly message 2 went direct");
        assert_eq!(s.bytes_direct, 500);
        // Message 3 (200 B) read with a 100 B buffer: buffered again.
        let m = conn.read(ctx, 100)?.expect("data");
        assert_eq!(m.len(), 100);
        got.extend_from_slice(&m);
        let m = conn.read(ctx, 8192)?.expect("data");
        assert_eq!(m.len(), 100);
        got.extend_from_slice(&m);
        let s = conn.stats();
        assert_eq!(s.copies_avoided, 1, "message 3 must not count as direct");
        assert_eq!(s.bytes_received, 1700);
        assert_eq!(&got[..], &pattern(1700)[..], "stream bytes exact in order");
        let eof = conn.read(ctx, 8192)?.expect("eof");
        assert!(eof.is_empty());
        conn.close(ctx)?;
        l.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let all = pattern(1700);
        // Gaps keep each message a separate arrival at the receiver.
        conn.write(ctx, &all[..1000])?.expect("msg 1");
        ctx.delay(gap)?;
        conn.write(ctx, &all[1000..1500])?.expect("msg 2");
        ctx.delay(gap)?;
        conn.write(ctx, &all[1500..])?.expect("msg 3");
        ctx.delay(gap)?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// `try_read` passes its posted buffer to the direct path too: arrivals
/// that land between polls are handed over copy-free, while a too-small
/// `try_read` falls back to the buffered path — and WouldBlock never
/// loses data.
#[test]
fn try_read_races_arrivals_through_the_direct_path() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_direct_delivery();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const MSGS: usize = 8;
    const MSG: usize = 600;

    sim.spawn("poller", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut got = Vec::new();
        loop {
            match conn.try_read(ctx, 8192)? {
                Ok(m) if m.is_empty() => break,
                Ok(m) => got.extend_from_slice(&m),
                Err(SockError::WouldBlock) => ctx.delay(SimDuration::from_micros(20))?,
                Err(e) => panic!("try_read failed: {e:?}"),
            }
        }
        assert_eq!(got.len(), MSGS * MSG);
        assert_eq!(&got[..], &pattern(MSGS * MSG)[..]);
        let s = conn.stats();
        assert!(
            s.copies_avoided >= 1,
            "some arrivals must land in a spinning try_read: {s:?}"
        );
        assert_eq!(
            s.bytes_direct + copied_bytes(&s),
            (MSGS * MSG) as u64,
            "every byte is either direct or buffered"
        );
        conn.close(ctx)?;
        l.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let all = pattern(MSGS * MSG);
        for c in all.chunks(MSG) {
            conn.write(ctx, c)?.expect("send");
            ctx.delay(SimDuration::from_micros(200))?;
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// Bytes that went through the temp buffer (everything received that was
/// not direct).
fn copied_bytes(s: &ConnStats) -> u64 {
    s.bytes_received - s.bytes_direct
}

/// Request/response traffic with coalescing on both ends: flush-on-read
/// pushes each side's staged request out before it parks for the reply,
/// so the exchange completes (no deadlock) with every write staged and
/// every message a flush.
#[test]
fn coalesced_pingpong_flushes_on_read_and_completes() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_coalescing();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const MSG: usize = 64;
    const ROUNDS: usize = 25;

    sim.spawn("echoer", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        while let Some(m) = conn.read_exact(ctx, MSG)?.expect("read") {
            conn.write(ctx, &m)?.expect("echo");
        }
        let s = conn.stats();
        assert_eq!(s.writes_coalesced, ROUNDS as u64, "every echo staged");
        assert!(s.coalesce_flushes >= 1, "staged echoes were flushed");
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    sim.spawn("pinger", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let payload = pattern(MSG);
        for _ in 0..ROUNDS {
            conn.write(ctx, &payload)?.expect("ping");
            let echo = conn.read_exact(ctx, MSG)?.expect("read").expect("pong");
            assert_eq!(&echo[..], &payload[..]);
        }
        let s = conn.stats();
        assert_eq!(s.writes_coalesced, ROUNDS as u64, "every ping staged");
        // Each staged ping goes out on the very next read (flush-on-read):
        // one message per round trip, nothing aggregated across rounds.
        assert_eq!(s.coalesce_flushes, ROUNDS as u64);
        assert_eq!(s.msgs_sent, ROUNDS as u64);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// Bulk small writes under coalescing collapse into far fewer substrate
/// messages, and an explicit `flush()` plus `close()` push out the tail
/// byte-exactly.
#[test]
fn coalescing_collapses_small_writes_into_few_messages() {
    let sim = Sim::new();
    let cl = cluster(2);
    let cfg = SubstrateConfig::ds_da_uq().with_coalescing();
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const WRITES: usize = 512;
    const MSG: usize = 64;
    const TOTAL: usize = WRITES * MSG;

    sim.spawn("sink", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut got = Vec::with_capacity(TOTAL);
        while got.len() < TOTAL {
            let m = conn.read(ctx, 8192)?.expect("data");
            assert!(!m.is_empty(), "premature EOF at {}", got.len());
            got.extend_from_slice(&m);
        }
        assert_eq!(&got[..], &pattern(TOTAL)[..]);
        let eof = conn.read(ctx, 8192)?.expect("eof");
        assert!(eof.is_empty());
        conn.close(ctx)?;
        l.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("source", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let all = pattern(TOTAL);
        for c in all.chunks(MSG) {
            conn.write(ctx, c)?.expect("write");
        }
        conn.flush(ctx)?.expect("flush");
        let s = conn.stats();
        assert_eq!(s.writes_coalesced, WRITES as u64);
        assert_eq!(s.bytes_sent, TOTAL as u64);
        assert!(
            s.msgs_sent <= (WRITES / 8) as u64,
            "512 × 64 B writes must collapse at least 8:1, sent {} messages",
            s.msgs_sent
        );
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

/// With both knobs off (every Figure-11 preset's default), the new
/// counters stay zero: the fast paths are strictly opt-in.
#[test]
fn fast_paths_are_off_by_default() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let m = conn.read_exact(ctx, 256)?.expect("read").expect("data");
        conn.write(ctx, &m)?.expect("echo");
        let s = conn.stats();
        assert_eq!(s.copies_avoided, 0);
        assert_eq!(s.bytes_direct, 0);
        assert_eq!(s.writes_coalesced, 0);
        assert_eq!(s.coalesce_flushes, 0);
        conn.close(ctx)?;
        l.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, &pattern(256))?.expect("send");
        let _ = conn.read_exact(ctx, 256)?.expect("read").expect("echo");
        let s = conn.stats();
        assert_eq!(s.copies_avoided + s.writes_coalesced, 0);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}
