//! Property-based tests of the §6.1 credit machinery: for arbitrary
//! send/recv interleavings (and arbitrary credit budgets) each side keeps
//! exactly N data descriptors posted (2N across the connection, §6.1
//! "posts 2N descriptors"), the sender's credit pool never exceeds N, and
//! the delayed-ack accumulator never reaches the return threshold without
//! being flushed.

use std::sync::Arc;

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{FaultPlan, LinkConfig, Sim, SimTime, SwitchConfig};
use sockets_emp::{EmpSockets, SockAddr, SubstrateConfig};

fn cluster(faults: FaultPlan) -> EmpCluster {
    let sw = SwitchConfig {
        link: LinkConfig {
            faults,
            ..LinkConfig::default()
        },
        ..SwitchConfig::default()
    };
    build_cluster(2, EmpConfig::default(), sw)
}

fn preset(which: u32) -> SubstrateConfig {
    match which % 3 {
        0 => SubstrateConfig::ds(),
        1 => SubstrateConfig::ds_da(),
        _ => SubstrateConfig::ds_da_uq(),
    }
}

/// Drive `writes` through a stream connection, auditing the §6.1
/// invariants after every operation on both sides. Returns the list of
/// violations (empty = all invariants held throughout).
fn audit_run(
    cfg: SubstrateConfig,
    faults: FaultPlan,
    writes: Vec<usize>,
    reads: Vec<usize>,
) -> Vec<String> {
    let n = cfg.credits;
    let threshold = cfg.ack_threshold();
    let total: usize = writes.iter().sum();
    let sim = Sim::new();
    let cl = cluster(faults);
    let server = EmpSockets::new(cl.nodes[1].endpoint(), cfg.clone());
    let client = EmpSockets::new(cl.nodes[0].endpoint(), cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let violations = Arc::new(Mutex::new(Vec::new()));
    let (v_r, v_w) = (Arc::clone(&violations), Arc::clone(&violations));

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut got = 0usize;
        let mut k = 0usize;
        while got < total {
            let max = reads[k % reads.len()];
            k += 1;
            let m = conn.read(ctx, max)?.expect("data");
            if m.is_empty() {
                v_r.lock().push(format!("premature EOF at byte {got}"));
                break;
            }
            got += m.len();
            let st = conn.debug_state();
            if st.data_slots != n as usize {
                v_r.lock().push(format!(
                    "receive side holds {} data descriptors, not N={n}",
                    st.data_slots
                ));
            }
            if st.consumed >= threshold {
                v_r.lock().push(format!(
                    "delayed-ack accumulator {} reached the threshold {threshold} unflushed",
                    st.consumed
                ));
            }
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let payload = vec![0xA5u8; 64 * 1024];
        for len in &writes {
            conn.write(ctx, &payload[..*len])?.expect("send");
            let st = conn.debug_state();
            if st.credits > n {
                v_w.lock().push(format!(
                    "send side holds {} credits, more than N={n}",
                    st.credits
                ));
            }
            if st.data_slots != n as usize {
                v_w.lock().push(format!(
                    "send side holds {} data descriptors, not N={n}",
                    st.data_slots
                ));
            }
        }
        conn.close(ctx)?;
        Ok(())
    });
    sim.run_until(SimTime::from_secs(300));
    let v = violations.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs a full simulation with OS threads
        ..ProptestConfig::default()
    })]

    #[test]
    fn credit_invariants_hold_for_arbitrary_interleavings(
        writes in prop::collection::vec(1usize..9_000, 1..10),
        reads in prop::collection::vec(1usize..4_096, 1..6),
        credits in 1u32..6,
        which in 0u32..3,
    ) {
        let cfg = preset(which).with_credits(credits);
        let violations = audit_run(cfg, FaultPlan::none(), writes, reads);
        prop_assert!(violations.is_empty(), "{}", violations.join("; "));
    }

    #[test]
    fn credit_invariants_hold_under_loss_and_reordering(
        writes in prop::collection::vec(1usize..9_000, 1..8),
        reads in prop::collection::vec(1usize..4_096, 1..6),
        credits in 1u32..6,
        seed in any::<u64>(),
    ) {
        let faults = FaultPlan::seeded(seed | 1)
            .with_drop_prob(0.1)
            .with_reorder(0.1, simnet::SimDuration::from_micros(60));
        let cfg = SubstrateConfig::ds_da_uq().with_credits(credits);
        let violations = audit_run(cfg, faults, writes, reads);
        prop_assert!(violations.is_empty(), "{}", violations.join("; "));
    }
}
