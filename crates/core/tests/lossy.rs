//! Substrate robustness under injected fabric faults: every Figure 11
//! preset must deliver byte-exact data over a fabric that drops, reorders,
//! and delays frames, and a peer that vanishes must surface
//! [`SockError::Timeout`] / [`SockError::PeerGone`] instead of a hang.

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use simnet::ring::{CqeResult, RingConfig, RingOp, Sqe};
use simnet::{Completion, FaultPlan, LinkConfig, Sim, SimAccess, SimDuration, SwitchConfig};
use sockets_emp::{EmpSockets, SockAddr, SockError, SubstrateConfig};

fn faulty_cluster(n: usize, faults: FaultPlan) -> EmpCluster {
    // EMP abandons a message after `max_retries` silent timer rounds — a
    // policy tuned for realistic loss. The sweep's harshest schedule drops
    // every 2nd frame on every link, where a single-frame message's
    // data+ack round trip can need far more rounds (no partial-ack
    // progress ever resets the counter), so the transport gets a deeper
    // retry budget here; what is under test is the substrate above it.
    let emp = EmpConfig {
        max_retries: 5_000,
        ..EmpConfig::default()
    };
    let sw = SwitchConfig {
        link: LinkConfig {
            faults,
            ..LinkConfig::default()
        },
        ..SwitchConfig::default()
    };
    build_cluster(n, emp, sw)
}

fn substrate(cl: &EmpCluster, node: usize, cfg: SubstrateConfig) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), cfg)
}

/// Deterministic payload byte for (message index, offset).
fn pat(idx: usize, i: usize) -> u8 {
    ((i * 31 + idx * 7 + 3) % 251) as u8
}

fn pattern(idx: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| pat(idx, i)).collect()
}

/// The fault schedules of the sweep — drop rates 1/2, 1/5 and 1/10, each
/// combined with probabilistic reordering so consecutive messages can
/// overtake. The 1/5 and 1/10 rates use the strictly periodic legacy
/// schedule; the 1/2 rate uses a seeded probabilistic drop, because a
/// perfectly alternating drop pattern phase-locks with EMP's (capped,
/// deterministic) retransmission backoff and models a malicious wire
/// rather than a lossy one.
fn sweep_plans() -> Vec<FaultPlan> {
    let reorder = SimDuration::from_micros(80);
    vec![
        FaultPlan::seeded(0xD5)
            .with_drop_prob(0.5)
            .with_reorder(0.2, reorder),
        FaultPlan::drop_every(5).with_reorder(0.2, reorder),
        FaultPlan::drop_every(10).with_reorder(0.2, reorder),
    ]
}

/// Push `total` bytes through a stream connection over a faulty fabric and
/// require: bytes intact and in order, exact EOF, clean close on both ends.
fn stream_exchange(cfg: SubstrateConfig, faults: FaultPlan, total: usize, chunk: usize) {
    let sim = Sim::new();
    let cl = faulty_cluster(2, faults);
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let r_done = Completion::new();
    let w_done = Completion::new();
    let (r2, w2) = (r_done.clone(), w_done.clone());

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let mut buf = Vec::with_capacity(total);
        while buf.len() < total {
            let m = conn.read(ctx, 8192)?.expect("data");
            assert!(!m.is_empty(), "premature EOF at byte {}", buf.len());
            buf.extend_from_slice(&m);
        }
        assert_eq!(buf.len(), total, "overrun");
        for (i, b) in buf.iter().enumerate() {
            assert_eq!(*b, pat(0, i), "byte {i} wrong");
        }
        let eof = conn.read(ctx, 8192)?.expect("eof");
        assert!(eof.is_empty(), "EOF must follow the last byte exactly");
        conn.close(ctx)?;
        r2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let data = pattern(0, total);
        for c in data.chunks(chunk) {
            conn.write(ctx, c)?.expect("send");
        }
        conn.close(ctx)?;
        w2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(r_done.is_done(), "reader did not finish cleanly");
    assert!(w_done.is_done(), "writer did not finish cleanly");
}

/// Send `sizes` datagrams over a faulty fabric and require: boundaries
/// preserved, send order preserved, exact EOF, clean close on both ends.
fn dgram_exchange(faults: FaultPlan, sizes: Vec<usize>) {
    let sim = Sim::new();
    let cl = faulty_cluster(2, faults);
    let server = substrate(&cl, 1, SubstrateConfig::dg());
    let client = substrate(&cl, 0, SubstrateConfig::dg());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let r_done = Completion::new();
    let w_done = Completion::new();
    let (r2, w2) = (r_done.clone(), w_done.clone());
    let n = sizes.len();
    let sizes2 = sizes.clone();

    sim.spawn("receiver", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        for (i, len) in sizes.iter().enumerate() {
            let m = conn.read(ctx, 64_000)?.expect("message");
            assert_eq!(m.len(), *len, "datagram {i}: boundary lost");
            assert_eq!(&m[..], &pattern(i, *len)[..], "datagram {i}: bytes wrong");
        }
        let eof = conn.read(ctx, 64_000)?.expect("eof");
        assert!(eof.is_empty(), "EOF must follow datagram {n} exactly");
        conn.close(ctx)?;
        r2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        for (i, len) in sizes2.iter().enumerate() {
            conn.write(ctx, &pattern(i, *len))?.expect("send");
        }
        conn.close(ctx)?;
        w2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(r_done.is_done(), "receiver did not finish cleanly");
    assert!(w_done.is_done(), "sender did not finish cleanly");
}

// ---- sweep: each Figure 11 preset × loss 1/2, 1/5, 1/10 + reorder ----

const SWEEP_BYTES: usize = 64 * 1024;

#[test]
fn ds_survives_the_loss_sweep() {
    for plan in sweep_plans() {
        stream_exchange(SubstrateConfig::ds(), plan, SWEEP_BYTES, 7919);
    }
}

#[test]
fn ds_da_survives_the_loss_sweep() {
    for plan in sweep_plans() {
        stream_exchange(SubstrateConfig::ds_da(), plan, SWEEP_BYTES, 7919);
    }
}

#[test]
fn ds_da_uq_survives_the_loss_sweep() {
    for plan in sweep_plans() {
        stream_exchange(SubstrateConfig::ds_da_uq(), plan, SWEEP_BYTES, 7919);
    }
}

#[test]
fn dg_survives_the_loss_sweep() {
    // Sizes straddle the eager/rendezvous boundary (~1.5 KB), so both
    // paths run under loss and reordering.
    let sizes: Vec<usize> = (0..24).map(|i| (i * 977) % 3000 + 1).collect();
    for plan in sweep_plans() {
        dgram_exchange(plan, sizes.clone());
    }
}

// ---- acceptance: 1 MB byte-exact at p = 0.2 seeded loss + reorder ----

const MEGABYTE: usize = 1 << 20;

fn acceptance_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drop_prob(0.2)
        .with_reorder(0.1, SimDuration::from_micros(60))
}

#[test]
fn ds_moves_a_megabyte_at_twenty_percent_loss() {
    stream_exchange(
        SubstrateConfig::ds(),
        acceptance_plan(11),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn ds_da_moves_a_megabyte_at_twenty_percent_loss() {
    stream_exchange(
        SubstrateConfig::ds_da(),
        acceptance_plan(12),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn ds_da_uq_moves_a_megabyte_at_twenty_percent_loss() {
    stream_exchange(
        SubstrateConfig::ds_da_uq(),
        acceptance_plan(13),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn dg_moves_a_megabyte_at_twenty_percent_loss() {
    // 128 × 8 KiB datagrams: every one takes the §5.2 rendezvous, whose
    // request/grant control messages are themselves exposed to the loss.
    dgram_exchange(acceptance_plan(14), vec![8192; 128]);
}

// ---- data-path fast paths under chaos: the adaptive zero-copy knobs
// must never trade bytes for speed ----

#[test]
fn coalesced_writes_survive_the_loss_sweep() {
    // Sub-threshold writes aggregate in the staging buffer; flushes (on
    // buffer-full and credit pressure) are full-size messages exposed to
    // the same loss and reordering as everything else.
    for plan in sweep_plans() {
        stream_exchange(
            SubstrateConfig::ds_da_uq().with_coalescing(),
            plan,
            SWEEP_BYTES,
            700,
        );
    }
}

#[test]
fn coalescing_with_delayed_acks_survives_the_loss_sweep() {
    // Coalescing × §6.3 delayed acks on the pre-posted fc-ack descriptor
    // path (non-UQ): flush-time piggy-backing rides the aggregate.
    for plan in sweep_plans() {
        stream_exchange(
            SubstrateConfig::ds_da().with_coalescing(),
            plan,
            SWEEP_BYTES,
            700,
        );
    }
}

#[test]
fn direct_delivery_survives_the_loss_sweep() {
    // Reordering forces constant interleaving of the direct path (next
    // in-sequence message, reader posted) with the reorder-buffer path.
    for plan in sweep_plans() {
        stream_exchange(
            SubstrateConfig::ds_da_uq().with_direct_delivery(),
            plan,
            SWEEP_BYTES,
            7919,
        );
    }
}

#[test]
fn coalescing_moves_a_megabyte_at_twenty_percent_loss() {
    stream_exchange(
        SubstrateConfig::ds_da_uq().with_coalescing(),
        acceptance_plan(21),
        MEGABYTE,
        600,
    );
}

#[test]
fn both_fast_paths_move_a_megabyte_at_twenty_percent_loss() {
    stream_exchange(
        SubstrateConfig::ds_da_uq()
            .with_coalescing()
            .with_direct_delivery(),
        acceptance_plan(22),
        MEGABYTE,
        900,
    );
}

// ---- completion-ring data path under chaos: the SQ/CQ model must be
// byte-exact over a faulty fabric and must not leak registered buffers ----

/// Pull `total` bytes through a completion ring on the server side of a
/// faulty fabric. All registered buffers stay pipelined as reads, so
/// several are in flight across every drop/reorder/outage window; the
/// EOF completion's `final_seq` must count exactly the bytes delivered,
/// and teardown must return every registered buffer to the pool.
fn ring_exchange(faults: FaultPlan, total: usize, chunk: usize) {
    let sim = Sim::new();
    let cl = faulty_cluster(2, faults);
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(&cl, 0, SubstrateConfig::ds_da_uq());
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let r_done = Completion::new();
    let w_done = Completion::new();
    let (r2, w2) = (r_done.clone(), w_done.clone());

    sim.spawn("ring-reader", move |ctx| {
        let cfg = RingConfig {
            sq_depth: 8,
            cq_depth: 16,
            buf_count: 4,
            buf_size: 8192,
            max_registered_bytes: None,
        };
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let mut ring = sockets_emp::ring::ring(cfg, "lossy-ring");
        assert_eq!(ring.add_listener(l), 0);

        ring.push(Sqe::new(0, RingOp::Accept { listener: 0 }))
            .expect("push accept");
        ring.submit_and_wait(ctx, 1)?.expect("accept committed");
        let cqes = ring.reap(usize::MAX);
        assert!(
            matches!(cqes[0].result, CqeResult::Accepted { conn: 0 }),
            "accept completion malformed: {cqes:?}"
        );

        // Keep every registered buffer armed as a read on the one
        // connection; per-target FIFO order makes reassembly trivial.
        let mut ud = 1u64;
        for b in 0..cfg.buf_count as u32 {
            ring.push(Sqe::new(ud, RingOp::Read { conn: 0, buf: b }))
                .expect("arm read");
            ud += 1;
        }
        let mut got = Vec::with_capacity(total);
        let mut final_seq = None;
        while final_seq.is_none() {
            ring.submit_and_wait(ctx, 1)?.expect("reads committed");
            for cqe in ring.reap(usize::MAX) {
                match cqe.result {
                    CqeResult::Read { buf, len } => {
                        got.extend_from_slice(&ring.buf(buf).expect("registered")[..len as usize]);
                        if final_seq.is_none() {
                            ring.push(Sqe::new(ud, RingOp::Read { conn: 0, buf }))
                                .expect("re-arm read");
                            ud += 1;
                        }
                    }
                    CqeResult::Close {
                        conn,
                        final_seq: seq,
                    } => {
                        assert_eq!(conn, 0);
                        final_seq = Some(seq);
                    }
                    other => panic!("unexpected completion under faults: {other:?}"),
                }
            }
        }
        assert_eq!(final_seq, Some(total as u64), "EOF miscounted the stream");
        assert_eq!(got.len(), total, "byte count wrong");
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, pat(0, i), "byte {i} wrong");
        }

        // Retire the connection: still-armed reads behind the EOF drain
        // as further Close completions, then the Close op itself lands.
        ring.push(Sqe::new(ud, RingOp::Close { conn: 0 }))
            .expect("push close");
        ring.submit(ctx)?;
        let _ = ring.reap(usize::MAX);
        ring.shutdown(ctx)?;
        assert_eq!(
            ring.free_bufs(),
            cfg.buf_count,
            "registered buffers leaked through teardown"
        );
        let d = ring.depths();
        assert_eq!(
            (d.sq, d.in_flight, d.cq),
            (0, 0, 0),
            "ring not drained: {d:?}"
        );
        let c = ring.counters();
        assert!(
            c.pushed == c.completed && c.completed == c.reaped,
            "completion conservation violated: {c:?}"
        );
        r2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let data = pattern(0, total);
        for c in data.chunks(chunk) {
            conn.write(ctx, c)?.expect("send");
        }
        conn.close(ctx)?;
        w2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(r_done.is_done(), "ring reader did not finish cleanly");
    assert!(w_done.is_done(), "writer did not finish cleanly");
}

#[test]
fn ring_moves_a_megabyte_at_one_in_five_loss() {
    // Seeded p = 0.2 rather than the periodic 1-in-5 schedule: over a
    // megabyte the strictly periodic drop phase-locks with EMP's
    // deterministic backoff (see `sweep_plans`) and models a malicious
    // wire, not a lossy one.
    ring_exchange(
        FaultPlan::seeded(0x30)
            .with_drop_prob(0.2)
            .with_reorder(0.1, SimDuration::from_micros(60)),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn ring_moves_a_megabyte_through_burst_loss() {
    // Bursts take out whole windows of consecutive frames, so several
    // pipelined ring reads stall and restart together.
    ring_exchange(
        FaultPlan::seeded(0x31)
            .with_drop_prob(0.05)
            .with_burst(0.02, 4),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn ring_moves_a_megabyte_through_heavy_reordering() {
    // No loss at all — pure overtaking. The per-connection FIFO contract
    // of the ring has to hold even when the wire order does not.
    ring_exchange(
        FaultPlan::seeded(0x32).with_reorder(0.3, SimDuration::from_micros(80)),
        MEGABYTE,
        32 * 1024,
    );
}

#[test]
fn ring_moves_a_megabyte_across_link_outages() {
    // The link goes fully dark for 2 ms out of every 20 ms; EMP's
    // retransmission carries the stream across each outage window.
    ring_exchange(
        FaultPlan::seeded(0x33)
            .with_down_schedule(SimDuration::from_millis(20), SimDuration::from_millis(2)),
        MEGABYTE,
        32 * 1024,
    );
}

// ---- vanished peers: Timeout and PeerGone instead of hangs ----

#[test]
fn connect_to_a_dead_peer_times_out_within_the_deadline() {
    let sim = Sim::new();
    // The wire swallows every frame: the connection request never
    // arrives anywhere, EMP retransmits into silence until the deadline.
    let cl = faulty_cluster(2, FaultPlan::seeded(9).with_drop_prob(1.0));
    let deadline = SimDuration::from_millis(50);
    let client = substrate(&cl, 0, SubstrateConfig::ds().with_connect_timeout(deadline));
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("client", move |ctx| {
        let t0 = ctx.now();
        let r = client.connect(ctx, addr)?;
        let Err(err) = r else {
            panic!("must not connect")
        };
        assert_eq!(err, SockError::Timeout);
        let waited = ctx.now() - t0;
        assert!(
            waited <= deadline + SimDuration::from_millis(1),
            "timeout overshot the deadline: {waited:?}"
        );
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn connect_to_a_live_nic_with_no_listener_is_refused_not_timed_out() {
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    // Node 1's NIC is alive but no process ever listens: the connection
    // request finds no posted descriptor and is NACKed immediately —
    // the typed refusal, not a deadline-long hang.
    let deadline = SimDuration::from_millis(50);
    let client = substrate(&cl, 0, SubstrateConfig::ds().with_connect_timeout(deadline));
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("client", move |ctx| {
        let t0 = ctx.now();
        let r = client.connect(ctx, addr)?;
        let Err(err) = r else {
            panic!("must not connect")
        };
        assert_eq!(err, SockError::ConnectionRefused);
        let waited = ctx.now() - t0;
        assert!(
            waited < deadline,
            "refusal must land well before the connect deadline: {waited:?}"
        );
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn stream_reader_survives_a_writer_crash_mid_stream() {
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    let cfg = SubstrateConfig::ds_da_uq().with_peer_watchdog(SimDuration::from_millis(20));
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let m = conn
            .read(ctx, 1024)?
            .expect("the bytes sent before the crash");
        assert_eq!(&m[..], b"last words");
        // The writer is gone without a Close: the watchdog must convert
        // silence into PeerGone, not block forever.
        let err = conn.read(ctx, 1024)?.expect_err("peer vanished");
        assert_eq!(err, SockError::PeerGone);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"last words")?.expect("send");
        // Crash: return without close(); no Close message is ever sent.
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn stream_writer_survives_a_reader_crash_mid_stream() {
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    let cfg = SubstrateConfig::ds()
        .with_credits(2)
        .with_peer_watchdog(SimDuration::from_millis(20));
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("reader", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let _ = conn.read(ctx, 64)?.expect("first message");
        // Crash: stop reading, never return credits, never close.
        Ok(())
    });
    sim.spawn("writer", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        // With 2 credits and a dead reader, some write soon stalls on
        // flow control; the watchdog must fire instead of hanging.
        let mut outcome = Ok(0);
        for _ in 0..16 {
            outcome = conn.write(ctx, &[7u8; 64])?;
            if outcome.is_err() {
                break;
            }
        }
        assert_eq!(outcome.expect_err("credit starvation"), SockError::PeerGone);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn accepted_but_abandoned_connection_yields_peer_gone() {
    // Mid-handshake crash: the acceptor dies right after the transport
    // handshake, before any data flows.
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    let cfg = SubstrateConfig::ds_da_uq().with_peer_watchdog(SimDuration::from_millis(20));
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("acceptor", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let _conn = l.accept(ctx)?.expect("connection");
        // Crash immediately after accepting.
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        let err = conn.read(ctx, 64)?.expect_err("peer vanished");
        assert_eq!(err, SockError::PeerGone);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn dgram_receiver_survives_a_sender_crash() {
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    let cfg = SubstrateConfig::dg().with_peer_watchdog(SimDuration::from_millis(20));
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("receiver", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let m = conn.read(ctx, 1024)?.expect("pre-crash datagram");
        assert_eq!(&m[..], b"dgram");
        let err = conn.read(ctx, 1024)?.expect_err("peer vanished");
        assert_eq!(err, SockError::PeerGone);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, b"dgram")?.expect("send");
        // Crash without close().
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn dgram_sender_survives_a_receiver_crash_mid_rendezvous() {
    let sim = Sim::new();
    let cl = faulty_cluster(2, FaultPlan::none());
    let cfg = SubstrateConfig::dg().with_peer_watchdog(SimDuration::from_millis(20));
    let server = substrate(&cl, 1, cfg.clone());
    let client = substrate(&cl, 0, cfg);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("receiver", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("connection");
        let m = conn.read(ctx, 1024)?.expect("eager datagram");
        assert_eq!(m.len(), 64);
        // Crash before the large datagram's rendezvous can be granted.
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let conn = client.connect(ctx, addr)?.expect("connect");
        conn.write(ctx, &[1u8; 64])?.expect("eager send");
        // Let the receiver consume the eager datagram and die before the
        // rendezvous starts (otherwise its in-progress read answers it).
        ctx.delay(SimDuration::from_millis(2))?;
        // Large message: rendezvous request goes out, the grant never
        // comes back; the watchdog must fail the send with PeerGone.
        let err = conn
            .write(ctx, &vec![2u8; 16 * 1024])?
            .expect_err("grant never arrives");
        assert_eq!(err, SockError::PeerGone);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

// ---- connect/disconnect churn: admission control under a hostile wire ----

/// The churn preset: a storm of short-lived connections against a
/// 2-deep accept queue, over a wire that drops 10% of frames and goes
/// fully dark for 1 ms out of every 10 ms. Every client either gets a
/// typed refusal/timeout or delivers its payload byte-exact — no third
/// outcome, no leaked connection state on either station.
#[test]
fn connect_churn_over_a_lossy_wire_keeps_survivors_byte_exact() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const CLIENTS: usize = 12;
    const PAYLOAD: usize = 2048;
    let ms = SimDuration::from_millis;

    let sim = Sim::new();
    let cl = faulty_cluster(
        2,
        FaultPlan::seeded(0xC4)
            .with_drop_prob(0.10)
            .with_down_schedule(ms(10), ms(1)),
    );
    let server = substrate(&cl, 1, SubstrateConfig::ds_da_uq());
    let client = substrate(
        &cl,
        0,
        SubstrateConfig::ds_da_uq().with_connect_timeout(ms(30)),
    );
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let d2 = done.clone();
    let finished = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    let zombies = Arc::new(AtomicUsize::new(0));
    let refused = Arc::new(AtomicUsize::new(0));
    let timed_out = Arc::new(AtomicUsize::new(0));
    let (srv2, fin2, zom2) = (
        Arc::clone(&served),
        Arc::clone(&finished),
        Arc::clone(&zombies),
    );

    let server2 = server.clone();
    sim.spawn("churn-server", move |ctx| {
        // Backlog 2 against 12 staggered clients: overflow is the point.
        let l = server2.listen(ctx, 80, 2)?.expect("port free");
        loop {
            match l.accept_deadline(ctx, ms(5))? {
                Ok(conn) => {
                    // Serve serially — the slow consumer is what makes
                    // the accept queue overflow under the storm. Reads
                    // carry a deadline: a connect whose final ack died
                    // in a down window leaves a half-open connection
                    // (the client already gave up) that would otherwise
                    // wedge the server forever.
                    let mut got = Vec::with_capacity(1 + PAYLOAD);
                    let dead = loop {
                        match conn.read_deadline(ctx, 4096, ms(25))? {
                            Ok(m) if m.is_empty() => break false,
                            Ok(m) => got.extend_from_slice(&m),
                            Err(SockError::Timeout) => break true,
                            Err(other) => panic!("read failed oddly: {other:?}"),
                        }
                    };
                    if dead {
                        assert!(
                            got.is_empty(),
                            "a live client must never stall mid-stream for 25 ms"
                        );
                        conn.close(ctx)?;
                        zom2.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let idx = usize::from(got[0]);
                    assert_eq!(got.len(), 1 + PAYLOAD, "client {idx} truncated");
                    for (i, b) in got[1..].iter().enumerate() {
                        assert_eq!(*b, pat(idx, i), "client {idx} byte {i} corrupted");
                    }
                    conn.close(ctx)?;
                    srv2.fetch_add(1, Ordering::Relaxed);
                }
                Err(SockError::Timeout) => {
                    if fin2.load(Ordering::Relaxed) == CLIENTS {
                        break;
                    }
                }
                Err(other) => panic!("accept failed oddly: {other:?}"),
            }
        }
        d2.complete(ctx);
        Ok(())
    });

    for i in 0..CLIENTS {
        let (sub, fin) = (client.clone(), Arc::clone(&finished));
        let (refu, timo) = (Arc::clone(&refused), Arc::clone(&timed_out));
        sim.spawn(format!("churn-client-{i}"), move |ctx| {
            ctx.delay(SimDuration::from_millis(2) * (i as u64))?;
            match sub.connect(ctx, addr)? {
                Ok(conn) => {
                    let mut msg = vec![i as u8];
                    msg.extend_from_slice(&pattern(i, PAYLOAD));
                    let mut rest = &msg[..];
                    while !rest.is_empty() {
                        let n = conn.write(ctx, rest)?.expect("survivor write");
                        rest = &rest[n..];
                    }
                    conn.close(ctx)?;
                }
                Err(SockError::ConnectionRefused) => {
                    refu.fetch_add(1, Ordering::Relaxed);
                }
                Err(SockError::Timeout) => {
                    timo.fetch_add(1, Ordering::Relaxed);
                }
                Err(other) => panic!("connect failed oddly: {other:?}"),
            }
            fin.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
    }
    sim.run();
    assert!(done.is_done(), "server never drained the churn");

    use std::sync::atomic::Ordering::Relaxed;
    let (s, r, t) = (
        served.load(Relaxed),
        refused.load(Relaxed),
        timed_out.load(Relaxed),
    );
    let z = zombies.load(Relaxed);
    assert_eq!(
        s + r + t,
        CLIENTS,
        "every client must land in exactly one bucket: served={s} refused={r} timed_out={t}"
    );
    assert!(s > 0, "the storm must not refuse everyone (served={s})");
    assert!(
        r + t > 0,
        "a 2-deep backlog under 12 clients and a dark wire must shed someone"
    );
    // A half-open connection can only come from a timed-out connect
    // whose request had in fact been admitted before the ack died.
    assert!(
        z <= t,
        "zombies ({z}) in excess of timed-out connects ({t})"
    );
    // No half-open state survives: both stations' tables drain to zero.
    assert_eq!(server.stats().connections, 0, "server leaked connections");
    assert_eq!(server.stats().listeners, 1, "listener itself stays");
    assert_eq!(client.stats().connections, 0, "client leaked connections");
}
