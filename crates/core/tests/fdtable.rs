//! Error paths and the POSIX-shaped nonblocking surface of the §5.4
//! descriptor table: wrong-kind operations, stale descriptors, clean EOF,
//! `O_NONBLOCK`, and `poll(2)` over mixed descriptor kinds.

use emp_proto::{build_cluster, EmpCluster, EmpConfig};
use simnet::{Completion, Sim, SimDuration, SwitchConfig};
use sockets_emp::{EmpSockets, FdError, FdTable, Interest, PollFd, SockAddr, SubstrateConfig};

fn cluster(n: usize) -> EmpCluster {
    build_cluster(n, EmpConfig::default(), SwitchConfig::default())
}

fn substrate(cl: &EmpCluster, node: usize) -> EmpSockets {
    EmpSockets::new(cl.nodes[node].endpoint(), SubstrateConfig::ds_da_uq())
}

#[test]
fn reading_a_listener_fd_is_wrong_kind() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = substrate(&cl, 0);
    let fs = cl.nodes[0].host.fs().clone();
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("proc", move |ctx| {
        let fds = FdTable::new(s, fs);
        let lfd = fds.socket_listen(ctx, 80, 4)?.expect("listen");
        assert_eq!(fds.read(ctx, lfd, 64)?.unwrap_err(), FdError::WrongKind);
        assert_eq!(
            fds.write(ctx, lfd, b"nope")?.unwrap_err(),
            FdError::WrongKind
        );
        fds.close(ctx, lfd)?.expect("close");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn closing_twice_reports_bad_fd() {
    let sim = Sim::new();
    let cl = cluster(1);
    let s = substrate(&cl, 0);
    let fs = cl.nodes[0].host.fs().clone();
    fs.put("f.txt", &b"x"[..]);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("proc", move |ctx| {
        let fds = FdTable::new(s, fs);
        let fd = fds.open(ctx, "f.txt")?.expect("open");
        fds.close(ctx, fd)?.expect("first close");
        assert_eq!(fds.close(ctx, fd)?.unwrap_err(), FdError::BadFd);
        // Data calls on the stale fd fail the same way.
        assert_eq!(fds.read(ctx, fd, 4)?.unwrap_err(), FdError::BadFd);
        assert_eq!(fds.accept(ctx, fd)?.unwrap_err(), FdError::BadFd);
        assert_eq!(fds.live_fds(), 0);
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn read_after_peer_close_is_clean_eof() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1);
    let client = substrate(&cl, 0);
    let fs = cl.nodes[0].host.fs().clone();
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        conn.write(ctx, b"bye")?.expect("farewell");
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let fds = FdTable::new(client, fs);
        let fd = fds.socket_connect(ctx, addr)?.expect("connect");
        let d = fds.read(ctx, fd, 64)?.expect("data");
        assert_eq!(&d[..], b"bye");
        // The peer closed after its write: EOF, not an error — twice.
        assert!(fds.read(ctx, fd, 64)?.expect("eof").is_empty());
        assert!(fds.read(ctx, fd, 64)?.expect("still eof").is_empty());
        fds.close(ctx, fd)?.expect("close");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn o_nonblock_turns_parks_into_would_block() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1);
    let client = substrate(&cl, 0);
    let fs = cl.nodes[1].host.fs().clone();
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let fds = FdTable::new(server, fs);
        let lfd = fds.socket_listen(ctx, 80, 4)?.expect("listen");
        fds.set_nonblocking(lfd, true).expect("known fd");
        // Nothing queued yet.
        assert_eq!(fds.accept(ctx, lfd)?.unwrap_err(), FdError::WouldBlock);
        // Wait for the connection with poll(2), then retry.
        let mut pfds = [PollFd::new(lfd, Interest::READABLE)];
        let n = fds.poll(ctx, &mut pfds, None)?.expect("poll");
        assert_eq!(n, 1);
        assert!(pfds[0].revents.intersects(Interest::ACCEPTABLE));
        let cfd = fds.accept(ctx, lfd)?.expect("queued connection");
        fds.set_nonblocking(cfd, true).expect("known fd");
        // The client delays its message: a nonblocking read sees EAGAIN.
        assert_eq!(fds.read(ctx, cfd, 64)?.unwrap_err(), FdError::WouldBlock);
        let mut pfds = [PollFd::new(cfd, Interest::READABLE)];
        fds.poll(ctx, &mut pfds, None)?.expect("poll");
        let d = fds.read(ctx, cfd, 64)?.expect("data");
        assert_eq!(&d[..], b"slow");
        fds.close(ctx, cfd)?.expect("close conn");
        fds.close(ctx, lfd)?.expect("close listener");
        done2.complete(ctx);
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        ctx.delay(SimDuration::from_millis(1))?;
        let conn = client.connect(ctx, addr)?.expect("connect");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.write(ctx, b"slow")?.expect("send");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn poll_mixes_files_sockets_and_invalid_fds() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server = substrate(&cl, 1);
    let client = substrate(&cl, 0);
    let fs = cl.nodes[0].host.fs().clone();
    fs.put("ready.txt", &b"always"[..]);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    sim.spawn("server", move |ctx| {
        let l = server.listen(ctx, 80, 4)?.expect("port free");
        let conn = l.accept(ctx)?.expect("client");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.spawn("client", move |ctx| {
        let fds = FdTable::new(client, fs);
        let ffd = fds.open(ctx, "ready.txt")?.expect("open");
        let sfd = fds.socket_connect(ctx, addr)?.expect("connect");
        // A file is always ready, an idle socket is not, fd 99 is nobody:
        // the sweep must not park even though the socket never fires.
        let mut pfds = [
            PollFd::new(ffd, Interest::READABLE),
            PollFd::new(sfd, Interest::READABLE),
            PollFd::new(99, Interest::READABLE),
        ];
        let n = fds.poll(ctx, &mut pfds, None)?.expect("poll");
        assert_eq!(n, 2);
        assert_eq!(pfds[0].revents, Interest::READABLE);
        assert_eq!(pfds[1].revents, Interest::EMPTY);
        assert_eq!(pfds[2].revents, Interest::ERROR);
        fds.close(ctx, ffd)?.expect("close file");
        fds.close(ctx, sfd)?.expect("close sock");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}
