//! Socket errors — a small errno-style set.

use simnet::SimError;

/// Errors surfaced by the substrate sockets API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SockError {
    /// No listener answered the connection request (EMP gave up
    /// retransmitting it).
    ConnectionRefused,
    /// Operation on a locally closed socket.
    Closed,
    /// The peer closed; writes fail (reads drain then return EOF).
    PeerClosed,
    /// A datagram exceeded the receiver's posted buffer, or a stream write
    /// exceeded what the substrate can fragment.
    MessageTooBig {
        /// Message size.
        size: usize,
        /// What the receiver could take.
        limit: usize,
    },
    /// Port outside the substrate's encodable range, or already listening.
    AddrInUse,
    /// A deadline expired before the operation could complete: `connect()`
    /// with a [`crate::RetryPolicy`]/[`crate::SubstrateConfig::connect_timeout`],
    /// a deadlined `read`/`write`/`accept`, or a write stalled past
    /// [`crate::SubstrateConfig::write_stall_after`].
    Timeout,
    /// A resource budget was exhausted: the per-process connection budget
    /// ([`crate::SubstrateConfig::max_connections`]), the reorder-buffer
    /// byte cap ([`crate::SubstrateConfig::reorder_cap_bytes`]), or a
    /// registered-buffer pool cap. The ENOBUFS of the substrate — the
    /// overloaded operation fails; the rest of the process keeps running.
    ResourceExhausted,
    /// The peer stopped responding entirely — no data, no credit returns,
    /// no control traffic — for longer than the configured ack-starvation
    /// watchdog allows. Distinct from [`SockError::PeerClosed`]: a closed
    /// peer said goodbye; a gone peer just vanished (crashed process,
    /// unplugged station).
    PeerGone,
    /// A nonblocking operation found nothing to do: no data buffered or
    /// landed (`try_read`), no credits left (`try_write`), or an empty
    /// backlog (`try_accept`). The EAGAIN of the substrate — retry after
    /// the next [`crate::PollSet::poll`] wake.
    WouldBlock,
    /// Invalid argument (EINVAL): e.g. `select`/`poll` over an empty set
    /// with no timeout, which could never wake.
    Invalid,
    /// Malformed substrate message or protocol violation.
    Protocol(String),
}

impl SockError {
    pub(crate) fn protocol(msg: impl Into<String>) -> Self {
        SockError::Protocol(msg.into())
    }
}

impl std::fmt::Display for SockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SockError::ConnectionRefused => write!(f, "connection refused"),
            SockError::Closed => write!(f, "socket closed"),
            SockError::PeerClosed => write!(f, "peer closed the connection"),
            SockError::MessageTooBig { size, limit } => {
                write!(f, "message of {size} bytes exceeds receiver limit {limit}")
            }
            SockError::AddrInUse => write!(f, "address in use"),
            SockError::Timeout => write!(f, "operation timed out"),
            SockError::ResourceExhausted => write!(f, "resource budget exhausted"),
            SockError::PeerGone => write!(f, "peer vanished (ack starvation)"),
            SockError::WouldBlock => write!(f, "operation would block"),
            SockError::Invalid => write!(f, "invalid argument"),
            SockError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for SockError {}

impl From<SockError> for SimError {
    fn from(e: SockError) -> SimError {
        SimError::app(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_simerror_conversion() {
        let e = SockError::MessageTooBig {
            size: 100,
            limit: 64,
        };
        assert!(e.to_string().contains("100"));
        let s: SimError = SockError::Closed.into();
        assert_eq!(s, SimError::app("socket closed"));
    }
}
