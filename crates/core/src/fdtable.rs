//! File-descriptor tracking — the §5.4 name-space interposition.
//!
//! UNIX applications call generic `read()`/`write()`/`close()` on integer
//! descriptors that may name files, pipes or sockets. The substrate cannot
//! blindly override those symbols (a read might be on a local file), so it
//! tracks descriptor state: calls that *create* descriptors — `open()`,
//! `socket()`/`connect()`/`accept()` — register what each fd is, and the
//! generic calls dispatch to either the EMP substrate or the (simulated)
//! OS. The ftp application exercises exactly this: every transfer does
//! both file reads and socket writes through the same fd-based interface.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use hostsim::{FileHandle, RamDisk};
use parking_lot::Mutex;
use simnet::{ProcessCtx, SimResult};

use crate::error::SockError;
use crate::socket::{Connection, EmpSockets, Listener, SockAddr};

enum FdEntry {
    File(FileHandle),
    Socket(Arc<Connection>),
    Listener(Arc<Listener>),
}

/// A per-process descriptor table routing POSIX-style calls to the
/// substrate or the filesystem.
#[derive(Clone)]
pub struct FdTable {
    sockets: EmpSockets,
    fs: RamDisk,
    inner: Arc<Mutex<FdState>>,
}

struct FdState {
    entries: HashMap<i32, FdEntry>,
    next_fd: i32,
}

/// Errors from the unified descriptor interface.
#[derive(Clone, Debug, PartialEq)]
pub enum FdError {
    /// Unknown or already-closed descriptor.
    BadFd,
    /// The operation does not apply to this descriptor kind (e.g. `read`
    /// on a listener).
    WrongKind,
    /// Socket-layer failure.
    Sock(SockError),
    /// Filesystem failure.
    Fs(hostsim::FsError),
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::BadFd => write!(f, "bad file descriptor"),
            FdError::WrongKind => write!(f, "operation not supported on this descriptor"),
            FdError::Sock(e) => write!(f, "{e}"),
            FdError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FdError {}

impl From<SockError> for FdError {
    fn from(e: SockError) -> Self {
        FdError::Sock(e)
    }
}

type FdResult<T> = SimResult<Result<T, FdError>>;

macro_rules! fd_try {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(err) => return Ok(Err(err.into())),
        }
    };
}

impl FdTable {
    /// Build a table over a node's substrate instance and RAM disk.
    pub fn new(sockets: EmpSockets, fs: RamDisk) -> Self {
        FdTable {
            sockets,
            fs,
            inner: Arc::new(Mutex::new(FdState {
                entries: HashMap::new(),
                // Descriptors 0-2 belong to stdio, as on a real system.
                next_fd: 3,
            })),
        }
    }

    /// The substrate underneath (for select and diagnostics).
    pub fn sockets(&self) -> &EmpSockets {
        &self.sockets
    }

    fn install(&self, entry: FdEntry) -> i32 {
        let mut st = self.inner.lock();
        let fd = st.next_fd;
        st.next_fd += 1;
        st.entries.insert(fd, entry);
        fd
    }

    /// `open(2)` on the RAM disk.
    pub fn open(&self, ctx: &ProcessCtx, path: &str) -> FdResult<i32> {
        let fh = fd_try!(self.fs.open(ctx, path)?.map_err(FdError::Fs));
        Ok(Ok(self.install(FdEntry::File(fh))))
    }

    /// `creat(2)` on the RAM disk.
    pub fn create(&self, ctx: &ProcessCtx, path: &str) -> FdResult<i32> {
        let fh = self.fs.create(ctx, path)?;
        Ok(Ok(self.install(FdEntry::File(fh))))
    }

    /// `socket(2)` + `connect(2)` to a substrate address.
    pub fn socket_connect(&self, ctx: &ProcessCtx, addr: SockAddr) -> FdResult<i32> {
        let conn = fd_try!(self.sockets.connect(ctx, addr)?);
        Ok(Ok(self.install(FdEntry::Socket(Arc::new(conn)))))
    }

    /// `socket(2)` + `bind(2)` + `listen(2)`.
    pub fn socket_listen(&self, ctx: &ProcessCtx, port: u16, backlog: usize) -> FdResult<i32> {
        let l = fd_try!(self.sockets.listen(ctx, port, backlog)?);
        Ok(Ok(self.install(FdEntry::Listener(Arc::new(l)))))
    }

    /// `accept(2)` on a listener fd; returns the connection's fd.
    pub fn accept(&self, ctx: &ProcessCtx, fd: i32) -> FdResult<i32> {
        let l = {
            let st = self.inner.lock();
            match st.entries.get(&fd) {
                Some(FdEntry::Listener(l)) => Arc::clone(l),
                Some(_) => return Ok(Err(FdError::WrongKind)),
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        let conn = fd_try!(l.accept(ctx)?);
        Ok(Ok(self.install(FdEntry::Socket(Arc::new(conn)))))
    }

    /// Generic `read(2)`: dispatches on what the descriptor names.
    pub fn read(&self, ctx: &ProcessCtx, fd: i32, max: usize) -> FdResult<Bytes> {
        let entry = {
            let st = self.inner.lock();
            match st.entries.get(&fd) {
                Some(FdEntry::File(fh)) => Ok(*fh),
                Some(FdEntry::Socket(c)) => Err(Arc::clone(c)),
                Some(FdEntry::Listener(_)) => return Ok(Err(FdError::WrongKind)),
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        match entry {
            Ok(fh) => {
                let data = fd_try!(self.fs.read(ctx, fh, max)?.map_err(FdError::Fs));
                Ok(Ok(data))
            }
            Err(conn) => {
                let data = fd_try!(conn.read(ctx, max)?);
                Ok(Ok(data))
            }
        }
    }

    /// Generic `write(2)`.
    pub fn write(&self, ctx: &ProcessCtx, fd: i32, data: &[u8]) -> FdResult<usize> {
        let entry = {
            let st = self.inner.lock();
            match st.entries.get(&fd) {
                Some(FdEntry::File(fh)) => Ok(*fh),
                Some(FdEntry::Socket(c)) => Err(Arc::clone(c)),
                Some(FdEntry::Listener(_)) => return Ok(Err(FdError::WrongKind)),
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        match entry {
            Ok(fh) => {
                let n = fd_try!(self.fs.write(ctx, fh, data)?.map_err(FdError::Fs));
                Ok(Ok(n))
            }
            Err(conn) => {
                let n = fd_try!(conn.write(ctx, data)?);
                Ok(Ok(n))
            }
        }
    }

    /// Generic `close(2)`.
    pub fn close(&self, ctx: &ProcessCtx, fd: i32) -> FdResult<()> {
        let entry = {
            let mut st = self.inner.lock();
            match st.entries.remove(&fd) {
                Some(e) => e,
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        match entry {
            FdEntry::File(fh) => {
                fd_try!(self.fs.close(ctx, fh)?.map_err(FdError::Fs));
            }
            FdEntry::Socket(conn) => conn.close(ctx)?,
            FdEntry::Listener(l) => l.close(ctx)?,
        }
        Ok(Ok(()))
    }

    /// Number of live descriptors (diagnostics; the ftp tests assert no
    /// leaks).
    pub fn live_fds(&self) -> usize {
        self.inner.lock().entries.len()
    }
}
