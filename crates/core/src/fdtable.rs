//! File-descriptor tracking — the §5.4 name-space interposition.
//!
//! UNIX applications call generic `read()`/`write()`/`close()` on integer
//! descriptors that may name files, pipes or sockets. The substrate cannot
//! blindly override those symbols (a read might be on a local file), so it
//! tracks descriptor state: calls that *create* descriptors — `open()`,
//! `socket()`/`connect()`/`accept()` — register what each fd is, and the
//! generic calls dispatch to either the EMP substrate or the (simulated)
//! OS. The ftp application exercises exactly this: every transfer does
//! both file reads and socket writes through the same fd-based interface.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use hostsim::{FileHandle, RamDisk};
use parking_lot::Mutex;
use simnet::{Interest, ProcessCtx, SimDuration, SimResult};

use crate::error::SockError;
use crate::poll::PollSet;
use crate::socket::{Connection, EmpSockets, Listener, SockAddr};

enum FdEntry {
    File(FileHandle),
    Socket(Arc<Connection>),
    Listener(Arc<Listener>),
}

/// One descriptor-table slot: what the fd names, plus its `O_NONBLOCK`
/// flag.
struct FdSlot {
    entry: FdEntry,
    nonblocking: bool,
}

/// A per-process descriptor table routing POSIX-style calls to the
/// substrate or the filesystem.
#[derive(Clone)]
pub struct FdTable {
    sockets: EmpSockets,
    fs: RamDisk,
    inner: Arc<Mutex<FdState>>,
}

struct FdState {
    entries: HashMap<i32, FdSlot>,
    next_fd: i32,
}

/// Errors from the unified descriptor interface.
#[derive(Clone, Debug, PartialEq)]
pub enum FdError {
    /// Unknown or already-closed descriptor.
    BadFd,
    /// The operation does not apply to this descriptor kind (e.g. `read`
    /// on a listener).
    WrongKind,
    /// A nonblocking descriptor (`set_nonblocking`) had nothing to do —
    /// the EAGAIN of the fd layer. Retry after [`FdTable::poll`] reports
    /// readiness.
    WouldBlock,
    /// Socket-layer failure.
    Sock(SockError),
    /// Filesystem failure.
    Fs(hostsim::FsError),
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::BadFd => write!(f, "bad file descriptor"),
            FdError::WrongKind => write!(f, "operation not supported on this descriptor"),
            FdError::WouldBlock => write!(f, "operation would block"),
            FdError::Sock(e) => write!(f, "{e}"),
            FdError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FdError {}

impl From<SockError> for FdError {
    fn from(e: SockError) -> Self {
        match e {
            SockError::WouldBlock => FdError::WouldBlock,
            other => FdError::Sock(other),
        }
    }
}

/// One entry of an [`FdTable::poll`] call, `struct pollfd`-shaped: the
/// descriptor, the interests to watch, and the readiness reported back.
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: i32,
    /// Requested interests ([`Interest::ERROR`] is always reported).
    pub events: Interest,
    /// Readiness reported by the poll (empty when not ready).
    pub revents: Interest,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: i32, events: Interest) -> Self {
        PollFd {
            fd,
            events,
            revents: Interest::EMPTY,
        }
    }
}

type FdResult<T> = SimResult<Result<T, FdError>>;

macro_rules! fd_try {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(err) => return Ok(Err(err.into())),
        }
    };
}

impl FdTable {
    /// Build a table over a node's substrate instance and RAM disk.
    pub fn new(sockets: EmpSockets, fs: RamDisk) -> Self {
        FdTable {
            sockets,
            fs,
            inner: Arc::new(Mutex::new(FdState {
                entries: HashMap::new(),
                // Descriptors 0-2 belong to stdio, as on a real system.
                next_fd: 3,
            })),
        }
    }

    /// The substrate underneath (for select and diagnostics).
    pub fn sockets(&self) -> &EmpSockets {
        &self.sockets
    }

    fn install(&self, entry: FdEntry) -> i32 {
        let mut st = self.inner.lock();
        let fd = st.next_fd;
        st.next_fd += 1;
        st.entries.insert(
            fd,
            FdSlot {
                entry,
                nonblocking: false,
            },
        );
        fd
    }

    /// `fcntl(F_SETFL, O_NONBLOCK)`: toggle nonblocking mode on a
    /// descriptor. A nonblocking socket fd makes `read`/`write`/`accept`
    /// return [`FdError::WouldBlock`] instead of parking; file fds accept
    /// the flag but never block anyway (the RAM disk is synchronous).
    pub fn set_nonblocking(&self, fd: i32, on: bool) -> Result<(), FdError> {
        let mut st = self.inner.lock();
        match st.entries.get_mut(&fd) {
            Some(slot) => {
                slot.nonblocking = on;
                Ok(())
            }
            None => Err(FdError::BadFd),
        }
    }

    /// `open(2)` on the RAM disk.
    pub fn open(&self, ctx: &ProcessCtx, path: &str) -> FdResult<i32> {
        let fh = fd_try!(self.fs.open(ctx, path)?.map_err(FdError::Fs));
        Ok(Ok(self.install(FdEntry::File(fh))))
    }

    /// `creat(2)` on the RAM disk.
    pub fn create(&self, ctx: &ProcessCtx, path: &str) -> FdResult<i32> {
        let fh = self.fs.create(ctx, path)?;
        Ok(Ok(self.install(FdEntry::File(fh))))
    }

    /// `socket(2)` + `connect(2)` to a substrate address.
    pub fn socket_connect(&self, ctx: &ProcessCtx, addr: SockAddr) -> FdResult<i32> {
        let conn = fd_try!(self.sockets.connect(ctx, addr)?);
        Ok(Ok(self.install(FdEntry::Socket(Arc::new(conn)))))
    }

    /// `socket(2)` + `bind(2)` + `listen(2)`.
    pub fn socket_listen(&self, ctx: &ProcessCtx, port: u16, backlog: usize) -> FdResult<i32> {
        let l = fd_try!(self.sockets.listen(ctx, port, backlog)?);
        Ok(Ok(self.install(FdEntry::Listener(Arc::new(l)))))
    }

    /// `accept(2)` on a listener fd; returns the connection's fd. On a
    /// nonblocking listener fd an empty backlog is [`FdError::WouldBlock`].
    pub fn accept(&self, ctx: &ProcessCtx, fd: i32) -> FdResult<i32> {
        let (l, nonblocking) = {
            let st = self.inner.lock();
            match st.entries.get(&fd) {
                Some(FdSlot {
                    entry: FdEntry::Listener(l),
                    nonblocking,
                }) => (Arc::clone(l), *nonblocking),
                Some(_) => return Ok(Err(FdError::WrongKind)),
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        let conn = if nonblocking {
            fd_try!(l.try_accept(ctx)?)
        } else {
            fd_try!(l.accept(ctx)?)
        };
        Ok(Ok(self.install(FdEntry::Socket(Arc::new(conn)))))
    }

    /// Look up a socket/file fd for a data operation.
    fn data_entry(&self, fd: i32) -> Result<(Result<FileHandle, Arc<Connection>>, bool), FdError> {
        let st = self.inner.lock();
        match st.entries.get(&fd) {
            Some(slot) => match &slot.entry {
                FdEntry::File(fh) => Ok((Ok(*fh), slot.nonblocking)),
                FdEntry::Socket(c) => Ok((Err(Arc::clone(c)), slot.nonblocking)),
                FdEntry::Listener(_) => Err(FdError::WrongKind),
            },
            None => Err(FdError::BadFd),
        }
    }

    /// Generic `read(2)`: dispatches on what the descriptor names. On a
    /// nonblocking socket fd, nothing deliverable is
    /// [`FdError::WouldBlock`].
    pub fn read(&self, ctx: &ProcessCtx, fd: i32, max: usize) -> FdResult<Bytes> {
        match fd_try!(self.data_entry(fd)) {
            (Ok(fh), _) => {
                let data = fd_try!(self.fs.read(ctx, fh, max)?.map_err(FdError::Fs));
                Ok(Ok(data))
            }
            (Err(conn), nonblocking) => {
                let data = if nonblocking {
                    fd_try!(conn.try_read(ctx, max)?)
                } else {
                    fd_try!(conn.read(ctx, max)?)
                };
                Ok(Ok(data))
            }
        }
    }

    /// Generic `write(2)`. On a nonblocking socket fd the write accepts
    /// what the credits in hand allow (a partial count), or
    /// [`FdError::WouldBlock`] when no byte could be taken.
    pub fn write(&self, ctx: &ProcessCtx, fd: i32, data: &[u8]) -> FdResult<usize> {
        match fd_try!(self.data_entry(fd)) {
            (Ok(fh), _) => {
                let n = fd_try!(self.fs.write(ctx, fh, data)?.map_err(FdError::Fs));
                Ok(Ok(n))
            }
            (Err(conn), nonblocking) => {
                let n = if nonblocking {
                    fd_try!(conn.try_write(ctx, data)?)
                } else {
                    fd_try!(conn.write(ctx, data)?)
                };
                Ok(Ok(n))
            }
        }
    }

    /// Generic `close(2)`.
    pub fn close(&self, ctx: &ProcessCtx, fd: i32) -> FdResult<()> {
        let slot = {
            let mut st = self.inner.lock();
            match st.entries.remove(&fd) {
                Some(e) => e,
                None => return Ok(Err(FdError::BadFd)),
            }
        };
        match slot.entry {
            FdEntry::File(fh) => {
                fd_try!(self.fs.close(ctx, fh)?.map_err(FdError::Fs));
            }
            FdEntry::Socket(conn) => conn.close(ctx)?,
            FdEntry::Listener(l) => l.close(ctx)?,
        }
        Ok(Ok(()))
    }

    /// `poll(2)` over descriptors of any kind. Socket and listener fds go
    /// through the substrate's [`PollSet`]; file fds are always ready for
    /// whatever data interests were asked (the RAM disk never blocks);
    /// unknown fds report [`Interest::ERROR`] (POSIX `POLLNVAL`). Each
    /// entry's `revents` is filled in and the count of ready entries
    /// returned — zero only on timeout.
    ///
    /// A listener fd watched for [`Interest::READABLE`] reports
    /// [`Interest::ACCEPTABLE`], the way `POLLIN` covers accept on a real
    /// listening socket.
    pub fn poll(
        &self,
        ctx: &ProcessCtx,
        fds: &mut [PollFd],
        timeout: Option<SimDuration>,
    ) -> FdResult<usize> {
        let mut set = PollSet::new();
        let mut already_ready = false;
        for (idx, p) in fds.iter_mut().enumerate() {
            p.revents = Interest::EMPTY;
            let st = self.inner.lock();
            match st.entries.get(&p.fd) {
                Some(slot) => match &slot.entry {
                    FdEntry::File(_) => {
                        p.revents = p.events & (Interest::READABLE | Interest::WRITABLE);
                        already_ready |= !p.revents.is_empty();
                    }
                    FdEntry::Socket(c) => {
                        let c = Arc::clone(c);
                        drop(st);
                        set.register_conn(&c, idx, p.events);
                    }
                    FdEntry::Listener(l) => {
                        let l = Arc::clone(l);
                        drop(st);
                        let mut interest = p.events;
                        if interest.intersects(Interest::READABLE) {
                            interest |= Interest::ACCEPTABLE;
                        }
                        set.register_listener(&l, idx, interest);
                    }
                },
                None => {
                    p.revents = Interest::ERROR;
                    already_ready = true;
                }
            }
        }
        if !set.is_empty() || timeout.is_some() {
            // With a file/unknown fd already ready, only sweep the socket
            // entries without parking.
            let effective = if already_ready {
                Some(SimDuration::ZERO)
            } else {
                timeout
            };
            if !(set.is_empty() && already_ready) {
                let events = fd_try!(set.poll(ctx, effective)?);
                for ev in events {
                    fds[ev.token].revents |= ev.ready;
                }
            }
        } else if !already_ready {
            // Nothing pollable and no timeout: the wait could never wake.
            return Ok(Err(FdError::Sock(SockError::Invalid)));
        }
        Ok(Ok(fds.iter().filter(|p| !p.revents.is_empty()).count()))
    }

    /// Number of live descriptors (diagnostics; the ftp tests assert no
    /// leaks).
    pub fn live_fds(&self) -> usize {
        self.inner.lock().entries.len()
    }
}
