//! Substrate configuration: socket type, credits, buffers and the §6
//! performance enhancements, with presets matching the labels of the
//! paper's Figure 11 (DS, DS_DA, DS_DA_UQ, DG).

use simnet::SimDuration;

/// Which sockets semantics a connection provides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocketType {
    /// TCP-like data streaming: no message boundaries, partial reads, the
    /// receive side buffers eagerly in temp buffers (one extra copy).
    Stream,
    /// Datagram ("data streaming disabled", §6.2): message boundaries
    /// preserved, zero-copy delivery into the posted user buffer, large
    /// messages via rendezvous. Deadlock avoidance is the user's problem.
    Datagram,
}

/// Client-side connection-request retry policy: jittered exponential
/// backoff with an attempt cap and an overall deadline. Replaces the old
/// blind fixed-backoff resend loop — under a connect storm, thousands of
/// synchronized clients retrying in lockstep re-create the very overload
/// that refused them; jitter decorrelates the herd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff interval (doubled each subsequent attempt).
    pub base: SimDuration,
    /// Backoff ceiling: intervals never exceed this.
    pub max_backoff: SimDuration,
    /// Give up after this many *send attempts* (the initial request
    /// counts as attempt one), surfacing [`crate::SockError::Timeout`].
    pub max_attempts: u32,
    /// Overall wall-clock budget for the whole connect, retries included.
    pub deadline: SimDuration,
    /// Randomize each backoff interval into `[0.75, 1.25)` of its nominal
    /// value (deterministically, from the attempt number and the local
    /// station address, so simulations stay reproducible).
    pub jitter: bool,
}

impl RetryPolicy {
    /// The policy [`SubstrateConfig::with_connect_timeout`] compiles to:
    /// backoff starts at `deadline / 8`, caps at the deadline, unlimited
    /// attempts, no jitter — the historical blocking-connect behaviour.
    pub fn from_deadline(deadline: SimDuration) -> Self {
        let base = deadline / 8;
        RetryPolicy {
            base: if base.is_zero() { deadline } else { base },
            max_backoff: deadline,
            max_attempts: u32::MAX,
            deadline,
            jitter: false,
        }
    }

    /// Backoff to wait after send attempt `attempt` (1-based), with the
    /// exponential doubling, the `max_backoff` cap and (if enabled)
    /// deterministic jitter seeded by `seed`.
    pub fn backoff(&self, attempt: u32, seed: u64) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(32);
        let nominal = self
            .base
            .nanos()
            .saturating_mul(1u64.checked_shl(doublings).unwrap_or(u64::MAX))
            .min(self.max_backoff.nanos());
        if !self.jitter {
            return SimDuration::from_nanos(nominal.max(1));
        }
        // splitmix64 over (seed, attempt): uniform factor in [0.75, 1.25).
        let mut z = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 0.75 + 0.5 * frac;
        SimDuration::from_nanos(((nominal as f64 * factor) as u64).max(1))
    }
}

/// How unexpected-message handling is driven (§5.2's three alternatives).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvMode {
    /// The adopted design: the main thread drives the substrate directly
    /// (eager with flow control / rendezvous).
    Direct,
    /// Ablation: a separate *polling* communication thread reposts
    /// descriptors. Costs ~20 µs of thread synchronization per message and
    /// halves the CPU available to the application (§5.2).
    CommThreadPolling,
    /// Ablation: a *blocking* communication thread; response time degrades
    /// to the OS scheduling granularity ("order of milliseconds", §5.2).
    CommThreadBlocking,
}

/// Per-process substrate configuration.
#[derive(Clone, Debug)]
pub struct SubstrateConfig {
    /// Stream or datagram sockets.
    pub socket_type: SocketType,
    /// Credit count N: the sender may have N unconsumed messages
    /// outstanding; the receiver pre-posts matching descriptors (§6.1).
    pub credits: u32,
    /// Size of each receive temp buffer (64 KiB in §7.1) — also the
    /// maximum bytes per substrate message on a stream socket.
    pub temp_buf_size: usize,
    /// §6.3 Delayed Acknowledgments: send a flow-control ack only after
    /// half the credits are consumed, instead of after every message.
    pub delayed_acks: bool,
    /// §6.4: keep flow-control-ack buffers in the EMP unexpected queue so
    /// they stop lengthening the data descriptors' tag-match walk.
    pub acks_in_unexpected_queue: bool,
    /// §6.1: piggy-back due acknowledgments on reverse-direction data.
    pub piggyback_acks: bool,
    /// Datagram sockets: messages up to this size go eagerly (zero-copy to
    /// a pre-posted user buffer); larger ones use rendezvous (§6.2).
    pub dgram_eager_max: usize,
    /// Receive-path driver (the §5.2 design alternatives).
    pub recv_mode: RecvMode,
    /// Baseline EMP unexpected-queue slots per process, independent of the
    /// §6.4 ack routing: they absorb the data a client pipelines right
    /// behind its connection request, before `accept()` has posted the
    /// connection's descriptors (the §7.4 "time for the actual request is
    /// hidden" behaviour relies on this).
    pub base_unexpected_slots: usize,
    /// Stream writes up to this size are copied into a registered send
    /// buffer and complete asynchronously (standard sockets `write`
    /// semantics); larger writes stay zero-copy and block until the NIC
    /// acknowledges, so the buffer is safe to reuse.
    pub send_copy_threshold: usize,
    /// Host bookkeeping per stream message (buffer list management, credit
    /// accounting) on the 700 MHz testbed host.
    pub stream_overhead: SimDuration,
    /// Host bookkeeping per datagram operation.
    pub dgram_overhead: SimDuration,
    /// `None` (the default) keeps `connect()` non-blocking: it returns
    /// immediately and pipelines data behind the request (§7.4). `Some(d)`
    /// makes `connect()` block until the request is acknowledged, resending
    /// it with exponential backoff, and fail with
    /// [`crate::SockError::Timeout`] once `d` elapses with no answer — the
    /// behaviour an application wants against a possibly-dead station.
    pub connect_timeout: Option<SimDuration>,
    /// Full connect retry policy (jittered exponential backoff, attempt
    /// cap, overall deadline). Takes precedence over the simpler
    /// [`Self::connect_timeout`]; see [`Self::effective_connect_policy`].
    pub connect_retry: Option<RetryPolicy>,
    /// Per-process connection budget: `connect()`/`accept()` beyond this
    /// many live connections fail with
    /// [`crate::SockError::ResourceExhausted`] instead of consuming
    /// descriptors and registered buffers without bound. `None` (default)
    /// bounds connections only by the tag space.
    pub max_connections: Option<usize>,
    /// Byte cap on a connection's out-of-order reorder buffer. A stream
    /// whose gap message is lost can otherwise park an unbounded number of
    /// acked-but-undeliverable payloads; at the cap the connection is
    /// poisoned with [`crate::SockError::ResourceExhausted`] (the bytes
    /// were EMP-acked, so dropping them silently would corrupt the
    /// stream). `None` (default) keeps the buffer unbounded.
    pub reorder_cap_bytes: Option<usize>,
    /// Write-stall detector: a blocking stream write that waits longer
    /// than this for a flow-control credit fails with
    /// [`crate::SockError::Timeout`] — the slowloris defence (a reader
    /// that never reads pins the writer forever otherwise). `None`
    /// (default) preserves blocking-forever semantics.
    pub write_stall_after: Option<SimDuration>,
    /// Ack-starvation watchdog: when a blocking read or credit wait hears
    /// *nothing* from the peer — no data, no credit return, no control
    /// message — for this long, the operation fails with
    /// [`crate::SockError::PeerGone`] instead of waiting forever. `None`
    /// (the default) preserves the paper's semantics, where a vanished or
    /// deadlocked peer blocks the caller indefinitely (Figure 7 relies on
    /// this).
    pub peer_gone_after: Option<SimDuration>,
    /// Receiver-posted direct delivery: a stream read that finds its
    /// buffered data empty and an in-order message completed in a data
    /// descriptor takes the payload straight into the user's buffer,
    /// skipping the §6.2 temp-buffer copy — the receive counts as posted
    /// from the moment the reader enters `read()`/`try_read()`. Off by
    /// default: the Figure 11/13 presets measure the always-copy eager
    /// path.
    pub direct_delivery: bool,
    /// Small-write coalescing: consecutive stream writes no larger than
    /// [`Self::coalesce_threshold`] are staged in a registered buffer and
    /// flushed as one substrate message, spending one credit and one
    /// `stream_overhead` for many writes. Off by default for the same
    /// calibration reason as `direct_delivery`.
    pub coalesce_writes: bool,
    /// A write at most this large is eligible for coalescing.
    pub coalesce_threshold: usize,
    /// Staged bytes that force a flush (clamped to `temp_buf_size`).
    pub coalesce_max: usize,
    /// Aggregation deadline: once the oldest staged byte has waited this
    /// long, the next substrate call on the socket flushes before doing
    /// anything else. `None` leaves staleness bounded only by the other
    /// flush triggers (buffer-full, credit pressure, read/poll/flush).
    pub coalesce_deadline: Option<SimDuration>,
}

impl Default for SubstrateConfig {
    /// The paper's best configuration: data streaming with all
    /// enhancements (`DS_DA_UQ`), 32 credits × 64 KiB.
    fn default() -> Self {
        SubstrateConfig::ds_da_uq()
    }
}

impl SubstrateConfig {
    fn stream_base() -> Self {
        SubstrateConfig {
            socket_type: SocketType::Stream,
            credits: 32,
            temp_buf_size: 64 * 1024,
            delayed_acks: false,
            acks_in_unexpected_queue: false,
            piggyback_acks: false, // §6.1; a separate toggle, see with_piggyback()
            dgram_eager_max: crate::proto::MAX_EAGER_DGRAM,
            recv_mode: RecvMode::Direct,
            base_unexpected_slots: 16,
            send_copy_threshold: 16 * 1024,
            stream_overhead: SimDuration::from_micros_f64(2.8),
            dgram_overhead: SimDuration::from_nanos(300),
            connect_timeout: None,
            connect_retry: None,
            max_connections: None,
            reorder_cap_bytes: None,
            write_stall_after: None,
            peer_gone_after: None,
            direct_delivery: false,
            coalesce_writes: false,
            coalesce_threshold: 1024,
            coalesce_max: 8 * 1024,
            coalesce_deadline: Some(SimDuration::from_micros(50)),
        }
    }

    /// Figure 11 "DS": basic data-streaming substrate, no enhancements —
    /// an explicit flow-control ack per consumed message.
    pub fn ds() -> Self {
        Self::stream_base()
    }

    /// Figure 11 "DS_DA": data streaming + delayed acknowledgments.
    pub fn ds_da() -> Self {
        SubstrateConfig {
            delayed_acks: true,
            ..Self::stream_base()
        }
    }

    /// Figure 11 "DS_DA_UQ": delayed acks + acks through the unexpected
    /// queue — the configuration the paper benchmarks as "Data Streaming".
    pub fn ds_da_uq() -> Self {
        SubstrateConfig {
            delayed_acks: true,
            acks_in_unexpected_queue: true,
            ..Self::stream_base()
        }
    }

    /// Figure 11 "DG": datagram sockets.
    pub fn dg() -> Self {
        SubstrateConfig {
            socket_type: SocketType::Datagram,
            ..Self::stream_base()
        }
    }

    /// With a different credit count (the web server uses 4, §7.4; the
    /// Figure 12 sweep varies 1..32).
    pub fn with_credits(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one credit required");
        self.credits = n;
        self
    }

    /// Enable §6.1 piggy-backed credit returns: a write carries any
    /// pending return for free. A net win for bidirectional traffic (see
    /// the piggyback ablation); kept out of the Figure 11/12 presets,
    /// whose measured ack behaviour is explicit.
    pub fn with_piggyback(mut self) -> Self {
        self.piggyback_acks = true;
        self
    }

    /// Bound `connect()` by `deadline`: block until the request is
    /// answered, resending with exponential backoff, and surface
    /// [`crate::SockError::Timeout`] when the deadline passes.
    pub fn with_connect_timeout(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "a zero connect deadline always fires");
        self.connect_timeout = Some(deadline);
        self
    }

    /// Bound `connect()` by a full [`RetryPolicy`] — jittered exponential
    /// backoff, attempt cap, overall deadline. The connect storms knob.
    pub fn with_connect_retry(mut self, policy: RetryPolicy) -> Self {
        assert!(
            !policy.deadline.is_zero(),
            "a zero connect deadline always fires"
        );
        assert!(policy.max_attempts >= 1, "at least one attempt required");
        self.connect_retry = Some(policy);
        self
    }

    /// Cap live connections per process at `n`
    /// ([`crate::SockError::ResourceExhausted`] beyond it).
    pub fn with_max_connections(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one connection required");
        self.max_connections = Some(n);
        self
    }

    /// Cap the out-of-order reorder buffer at `bytes`
    /// (see [`Self::reorder_cap_bytes`]).
    pub fn with_reorder_cap(mut self, bytes: usize) -> Self {
        self.reorder_cap_bytes = Some(bytes);
        self
    }

    /// Arm the write-stall detector: a blocking write that waits longer
    /// than `patience` for a credit fails with
    /// [`crate::SockError::Timeout`].
    pub fn with_write_stall_after(mut self, patience: SimDuration) -> Self {
        assert!(!patience.is_zero(), "a zero stall patience always fires");
        self.write_stall_after = Some(patience);
        self
    }

    /// The connect policy in force: an explicit [`Self::connect_retry`]
    /// wins; a bare [`Self::connect_timeout`] compiles to
    /// [`RetryPolicy::from_deadline`]; neither means non-blocking connect
    /// (the §7.4 pipelining behaviour).
    pub fn effective_connect_policy(&self) -> Option<RetryPolicy> {
        self.connect_retry
            .or_else(|| self.connect_timeout.map(RetryPolicy::from_deadline))
    }

    /// Arm the ack-starvation watchdog: blocking operations fail with
    /// [`crate::SockError::PeerGone`] after `patience` of total silence
    /// from the peer.
    pub fn with_peer_watchdog(mut self, patience: SimDuration) -> Self {
        assert!(!patience.is_zero(), "a zero watchdog always fires");
        self.peer_gone_after = Some(patience);
        self
    }

    /// Enable receiver-posted direct delivery (skip the §6.2 temp-buffer
    /// copy when a read is posted as the in-order message is consumed).
    pub fn with_direct_delivery(mut self) -> Self {
        self.direct_delivery = true;
        self
    }

    /// Enable small-write coalescing with the default thresholds.
    pub fn with_coalescing(mut self) -> Self {
        self.coalesce_writes = true;
        self
    }

    /// Override the aggregation deadline (see
    /// [`Self::coalesce_deadline`]); `None` disables the deadline trigger.
    pub fn with_coalesce_deadline(mut self, deadline: Option<SimDuration>) -> Self {
        self.coalesce_deadline = deadline;
        self
    }

    /// Effective staging-buffer capacity: `coalesce_max` can never exceed
    /// one substrate message.
    pub fn coalesce_capacity(&self) -> usize {
        self.coalesce_max.min(self.temp_buf_size).max(1)
    }

    /// Messages consumed before a flow-control ack is due.
    pub fn ack_threshold(&self) -> u32 {
        if self.delayed_acks {
            (self.credits / 2).max(1)
        } else {
            1
        }
    }

    /// Flow-control-ack descriptors a sender pre-posts (zero when they
    /// live in the unexpected queue instead). With per-message acks this
    /// is N — which is how ack descriptors come to be "half of the total
    /// descriptors posted" (§6.3); with delayed acks only a couple are
    /// ever outstanding.
    pub fn fcack_descriptors(&self) -> usize {
        if self.acks_in_unexpected_queue {
            0
        } else {
            (self.credits.div_ceil(self.ack_threshold()) as usize + 1)
                .min(self.credits as usize + 1)
        }
    }

    /// Unexpected-queue slots this connection needs for its acks.
    pub fn unexpected_quota(&self) -> usize {
        if self.acks_in_unexpected_queue {
            self.credits.div_ceil(self.ack_threshold()) as usize + 1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_figure_11_labels() {
        let ds = SubstrateConfig::ds();
        assert!(!ds.delayed_acks && !ds.acks_in_unexpected_queue);
        let da = SubstrateConfig::ds_da();
        assert!(da.delayed_acks && !da.acks_in_unexpected_queue);
        let uq = SubstrateConfig::ds_da_uq();
        assert!(uq.delayed_acks && uq.acks_in_unexpected_queue);
        assert_eq!(SubstrateConfig::dg().socket_type, SocketType::Datagram);
        assert_eq!(ds.credits, 32);
        assert_eq!(ds.temp_buf_size, 64 * 1024);
    }

    #[test]
    fn ack_threshold_halves_credits_when_delayed() {
        assert_eq!(SubstrateConfig::ds().ack_threshold(), 1);
        assert_eq!(SubstrateConfig::ds_da().ack_threshold(), 16);
        assert_eq!(SubstrateConfig::ds_da().with_credits(1).ack_threshold(), 1);
        assert_eq!(SubstrateConfig::ds_da().with_credits(3).ack_threshold(), 1);
    }

    #[test]
    fn ack_descriptor_fractions_match_paper_examples() {
        // §6.3: credit size 1 => ack descriptors are ~50% of the total.
        let c1 = SubstrateConfig::ds_da().with_credits(1);
        assert_eq!(c1.fcack_descriptors(), 2); // vs 1 data descriptor
                                               // Credit size 32 with delayed acks: ~2 ack descriptors vs 32 data,
                                               // the ~6% the paper quotes.
        let c32 = SubstrateConfig::ds_da();
        assert_eq!(c32.fcack_descriptors(), 3);
        // Without delayed acks, one per credit (plus slack).
        assert_eq!(SubstrateConfig::ds().fcack_descriptors(), 33);
    }

    #[test]
    fn robustness_knobs_default_off() {
        for cfg in [
            SubstrateConfig::ds(),
            SubstrateConfig::ds_da(),
            SubstrateConfig::ds_da_uq(),
            SubstrateConfig::dg(),
        ] {
            assert_eq!(cfg.connect_timeout, None);
            assert_eq!(cfg.connect_retry, None);
            assert_eq!(cfg.effective_connect_policy(), None);
            assert_eq!(cfg.max_connections, None);
            assert_eq!(cfg.reorder_cap_bytes, None);
            assert_eq!(cfg.write_stall_after, None);
            assert_eq!(cfg.peer_gone_after, None);
            assert!(!cfg.direct_delivery, "direct delivery must default off");
            assert!(!cfg.coalesce_writes, "coalescing must default off");
        }
        let armed = SubstrateConfig::ds()
            .with_connect_timeout(SimDuration::from_millis(5))
            .with_peer_watchdog(SimDuration::from_millis(20));
        assert_eq!(armed.connect_timeout, Some(SimDuration::from_millis(5)));
        assert_eq!(armed.peer_gone_after, Some(SimDuration::from_millis(20)));
    }

    #[test]
    fn connect_timeout_compiles_to_legacy_policy() {
        let cfg = SubstrateConfig::ds().with_connect_timeout(SimDuration::from_millis(8));
        let p = cfg.effective_connect_policy().unwrap();
        assert_eq!(p.base, SimDuration::from_millis(1));
        assert_eq!(p.max_backoff, SimDuration::from_millis(8));
        assert_eq!(p.deadline, SimDuration::from_millis(8));
        assert_eq!(p.max_attempts, u32::MAX);
        assert!(!p.jitter);
        // An explicit policy wins over the bare timeout.
        let explicit = RetryPolicy {
            base: SimDuration::from_micros(100),
            max_backoff: SimDuration::from_millis(1),
            max_attempts: 4,
            deadline: SimDuration::from_millis(10),
            jitter: true,
        };
        let cfg = cfg.with_connect_retry(explicit);
        assert_eq!(cfg.effective_connect_policy(), Some(explicit));
    }

    #[test]
    fn retry_backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            base: SimDuration::from_micros(100),
            max_backoff: SimDuration::from_micros(350),
            max_attempts: 8,
            deadline: SimDuration::from_millis(10),
            jitter: false,
        };
        assert_eq!(p.backoff(1, 0), SimDuration::from_micros(100));
        assert_eq!(p.backoff(2, 0), SimDuration::from_micros(200));
        assert_eq!(p.backoff(3, 0), SimDuration::from_micros(350)); // capped
        assert_eq!(p.backoff(9, 0), SimDuration::from_micros(350));
        let j = RetryPolicy { jitter: true, ..p };
        let a = j.backoff(1, 42);
        // Deterministic: same inputs, same jitter.
        assert_eq!(a, j.backoff(1, 42));
        // Within the [0.75, 1.25) window.
        assert!(a.nanos() >= 75_000 && a.nanos() < 125_000, "{}", a.nanos());
        // Different seeds decorrelate the herd.
        assert_ne!(j.backoff(1, 42), j.backoff(1, 43));
    }

    #[test]
    fn fast_path_builders_flip_only_their_knob() {
        let d = SubstrateConfig::ds_da_uq().with_direct_delivery();
        assert!(d.direct_delivery && !d.coalesce_writes);
        let c = SubstrateConfig::ds_da_uq().with_coalescing();
        assert!(c.coalesce_writes && !c.direct_delivery);
        assert!(c.coalesce_threshold <= c.coalesce_capacity());
        assert!(c.coalesce_capacity() <= c.temp_buf_size);
        let no_deadline = c.with_coalesce_deadline(None);
        assert_eq!(no_deadline.coalesce_deadline, None);
    }

    #[test]
    fn unexpected_quota_only_in_uq_mode() {
        assert_eq!(SubstrateConfig::ds_da().unexpected_quota(), 0);
        assert_eq!(SubstrateConfig::ds_da_uq().unexpected_quota(), 3);
        assert_eq!(SubstrateConfig::ds_da_uq().fcack_descriptors(), 0);
    }
}
