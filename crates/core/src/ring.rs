//! The substrate's completion-ring driver.
//!
//! [`EmpRingDriver`] plugs the user-level sockets into
//! [`simnet::RingCore`], giving the EMP stack the submission/completion
//! model described in `DESIGN.md` §14. The defining property of this
//! driver is the read path: a ring `Read` names a registered buffer the
//! application posted *before* the data arrived, which is exactly the
//! receiver-posted situation §6.2's direct delivery exploits — so ring
//! reads force the direct path on ([`Connection`]'s `ring_try_read`) and
//! every message consumed through the ring skips the temp-buffer copy
//! and counts in [`ConnStats::copies_avoided`], independent of the
//! `direct_delivery` config knob.
//!
//! Waiting is the readiness layer reused, not duplicated: the driver
//! parks in a throwaway [`PollSet`] over the stalled head ops, which also
//! best-effort flushes coalesced writes (so a ring server never deadlocks
//! on staged bytes).

use std::cell::RefCell;

use simnet::ring::{OpError, RingConfig, RingCore, RingDriver};
use simnet::{Interest, ProcessCtx, SimDuration, SimResult};

use crate::conn::ConnStats;
use crate::error::SockError;
use crate::poll::PollSet;
use crate::socket::{Connection, Listener};

/// A completion ring over the EMP substrate.
pub type EmpRing = RingCore<EmpRingDriver>;

/// Build a completion ring over substrate sockets. `label` namespaces
/// the ring's telemetry gauges (`ring.<label>.*`).
pub fn ring(cfg: RingConfig, label: impl Into<String>) -> EmpRing {
    RingCore::new(EmpRingDriver::default(), cfg, label)
}

/// [`RingDriver`] over substrate [`Connection`]s/[`Listener`]s.
#[derive(Default)]
pub struct EmpRingDriver {
    /// Stats of connections this ring has closed, accumulated so the
    /// copy-avoidance evidence survives the connections themselves.
    closed_stats: RefCell<ConnStats>,
}

impl EmpRingDriver {
    /// Aggregate substrate counters of every connection this ring closed.
    pub fn closed_stats(&self) -> ConnStats {
        *self.closed_stats.borrow()
    }
}

fn map_err(e: SockError) -> OpError {
    match e {
        SockError::ConnectionRefused => OpError::Refused,
        SockError::Closed => OpError::Closed,
        SockError::PeerClosed | SockError::PeerGone => OpError::PeerClosed,
        SockError::MessageTooBig { .. } => OpError::TooBig,
        SockError::Invalid | SockError::AddrInUse => OpError::Invalid,
        SockError::Timeout => OpError::Timeout,
        SockError::ResourceExhausted => OpError::Exhausted,
        SockError::WouldBlock | SockError::Protocol(_) => OpError::Other,
    }
}

impl RingDriver for EmpRingDriver {
    type Conn = Connection;
    type Listener = Listener;

    fn try_accept(
        &self,
        ctx: &ProcessCtx,
        l: &Listener,
    ) -> SimResult<Result<Option<Connection>, OpError>> {
        Ok(match l.try_accept(ctx)? {
            Ok(c) => Ok(Some(c)),
            Err(SockError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn try_read(
        &self,
        ctx: &ProcessCtx,
        c: &Connection,
        buf: &mut [u8],
    ) -> SimResult<Result<Option<usize>, OpError>> {
        // Forced-direct read: the substrate completes straight into
        // `buf`'s length worth of posted-receiver capacity.
        Ok(match c.ring_try_read(ctx, buf.len())? {
            Ok(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(Some(bytes.len()))
            }
            Err(SockError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn try_write(
        &self,
        ctx: &ProcessCtx,
        c: &Connection,
        data: &[u8],
    ) -> SimResult<Result<Option<usize>, OpError>> {
        Ok(match c.try_write(ctx, data)? {
            Ok(n) => Ok(Some(n)),
            Err(SockError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn close(&self, ctx: &ProcessCtx, c: Connection) -> SimResult<()> {
        *self.closed_stats.borrow_mut() += c.stats();
        c.close(ctx)
    }

    fn close_listener(&self, ctx: &ProcessCtx, l: Listener) -> SimResult<()> {
        l.close(ctx)
    }

    fn wait(
        &self,
        ctx: &ProcessCtx,
        conns: &[(&Connection, Interest)],
        listeners: &[&Listener],
        timeout: Option<SimDuration>,
    ) -> SimResult<()> {
        let mut ps = PollSet::new();
        for (i, (c, interest)) in conns.iter().enumerate() {
            ps.register_conn(c, i, *interest);
        }
        for (i, l) in listeners.iter().enumerate() {
            ps.register_listener(l, conns.len() + i, Interest::ACCEPTABLE);
        }
        // The events themselves are discarded: RingCore re-drives every
        // head op after a wake, which subsumes them (a timeout wake lets
        // the drive pass expire deadlined head ops).
        match ps.poll(ctx, timeout)? {
            Ok(_) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn register_waker(
        &self,
        ctx: &ProcessCtx,
        conns: &[(&Connection, Interest)],
        listeners: &[&Listener],
        waker: &std::task::Waker,
    ) -> SimResult<bool> {
        // Readiness found during registration means the ring should
        // re-drive now, not sleep: deliver the wake straight back.
        let mut wake_now = false;
        for (c, interest) in conns {
            match c.poll_ready(ctx, *interest, waker)? {
                Ok(ready) => wake_now |= !ready.is_empty(),
                // An unwakeable or failed source still wakes the ring so
                // the next drive pass surfaces the op's error.
                Err(_) => wake_now = true,
            }
        }
        for l in listeners {
            match l.poll_acceptable(ctx, waker)? {
                Ok(ready) => wake_now |= !ready.is_empty(),
                Err(_) => wake_now = true,
            }
        }
        if wake_now {
            waker.wake_by_ref();
        }
        Ok(true)
    }
}
