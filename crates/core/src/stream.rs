//! Data-streaming sockets: the eager-with-flow-control path (§5.2, §6).
//!
//! The receive side pre-posts N descriptors into temp buffers; arriving
//! messages dissolve into a byte stream that `read()` serves with partial
//! reads (TCP's data-streaming semantics) at the cost of one extra copy.
//! The send side spends credits, piggy-backs credit returns on reverse
//! data, and blocks on explicit flow-control acks when it runs dry —
//! consumed from pre-posted descriptors, or from the EMP unexpected queue
//! when §6.4 is enabled.

use bytes::Bytes;
use simnet::emp_trace::{self, EventKind};
use simnet::{ProcessCtx, SimAccess, SimAccessExt, SimResult};

use crate::config::RecvMode;
use crate::conn::{DataSlot, SockShared};
use crate::error::SockError;
use crate::proto::Msg;

/// A `Result` nested in the simulation result: outer for engine
/// termination, inner for socket errors.
pub(crate) type OpResult<T> = SimResult<Result<T, SockError>>;

macro_rules! ok_or_return {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(err) => return Ok(Err(err)),
        }
    };
}

pub(crate) use ok_or_return;

impl SockShared {
    /// Blocking stream write: fragments into temp-buffer-sized substrate
    /// messages, spending one credit each. Zero-copy on the send side —
    /// the call returns when the NIC has acknowledged the last fragment
    /// (the buffer is the application's to reuse again).
    pub(crate) fn stream_write(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        self.trace(ctx, EventKind::SockWriteStart, data.len() as u64, 0);
        if self.coalesce_due(ctx) {
            ok_or_return!(self.flush_coalesced(ctx)?);
        }
        let cfg = &self.proc_.cfg;
        if cfg.coalesce_writes && !data.is_empty() && data.len() <= cfg.coalesce_threshold {
            ok_or_return!(self.check_writable());
            return self.coalesce_append(ctx, data);
        }
        // A larger write must not overtake bytes already staged.
        ok_or_return!(self.flush_coalesced(ctx)?);
        // One harness-side copy models handing the NIC the user buffer:
        // each fragment below is a cheap refcounted slice of it, not a
        // fresh allocation-and-copy per chunk.
        let whole = Bytes::copy_from_slice(data);
        let mut zc_sends = Vec::new();
        let mut off = 0;
        while off < data.len() || (data.is_empty() && off == 0) {
            ok_or_return!(self.check_writable());
            ok_or_return!(self.acquire_credit(ctx)?);
            let chunk = (data.len() - off).min(self.buf_size);
            let piggyback = self.take_due_ack();
            if emp_trace::ENABLED && piggyback > 0 {
                self.trace(ctx, EventKind::AckPiggybacked, u64::from(piggyback), 0);
            }
            let seq = {
                let mut i = self.inner.lock();
                i.stats.bytes_sent += chunk as u64;
                i.stats.msgs_sent += 1;
                i.stats.piggybacked_credits += u64::from(piggyback);
                i.claim_tx_seq()
            };
            let payload = whole.slice(off..off + chunk);
            ctx.delay(self.proc_.cfg.stream_overhead)?;
            self.comm_thread_penalty(ctx)?;
            if chunk <= self.proc_.cfg.send_copy_threshold {
                // Buffered send: copy into a registered staging buffer and
                // return without waiting (like TCP's write-into-sockbuf).
                let copy = self.proc_.ep.host().cost().memcpy(chunk);
                ctx.delay(copy)?;
                self.trace(ctx, EventKind::SubstrateCopy, chunk as u64, copy.nanos());
                let h = self.send_data_msg(ctx, self.tx_data_tag(), piggyback, seq, payload)?;
                self.inner.lock().inflight_sends.push(h);
            } else {
                // Zero-copy send: the user buffer is pinned and handed to
                // the NIC. Fragments pipeline — the doorbells go out
                // back-to-back and the batch is reaped once below.
                let h = self.send_data_msg(ctx, self.tx_data_tag(), piggyback, seq, payload)?;
                zc_sends.push(h);
            }
            off += chunk;
            if data.is_empty() {
                break;
            }
        }
        if !zc_sends.is_empty() {
            // Block until every zero-copy fragment is acknowledged (the
            // buffer is the application's to reuse again) — one completion
            // reap for the whole batch.
            let acked = self.proc_.ep.wait_sends(ctx, &zc_sends)?;
            if !acked {
                self.inner.lock().peer_closed = true;
                return Ok(Err(SockError::PeerClosed));
            }
        }
        Ok(Ok(data.len()))
    }

    /// Stage a sub-threshold write in the coalescing buffer (§6.2-style
    /// staging copy, but shared by many writes), flushing first when it
    /// would overflow and immediately after when the buffer fills or the
    /// last credits are in hand.
    fn coalesce_append(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        let cap = self.proc_.cfg.coalesce_capacity();
        let overflow = {
            let i = self.inner.lock();
            i.coalesce_buf.len() + data.len() > cap
        };
        if overflow {
            ok_or_return!(self.flush_coalesced(ctx)?);
        }
        self.stage_bytes(ctx, data)?;
        let (full, pressure) = {
            let i = self.inner.lock();
            (i.coalesce_buf.len() >= cap, i.credits <= 1)
        };
        if full || pressure {
            // Credit pressure: never sit on staged bytes when the peer is
            // about to stop granting credits — a staged-but-unsendable
            // buffer would turn a visible write stall into a silent one.
            ok_or_return!(self.flush_coalesced(ctx)?);
        }
        Ok(Ok(data.len()))
    }

    /// Copy `data` into the coalescing staging buffer — the one copy a
    /// coalesced write pays — and account for it.
    fn stage_bytes(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<()> {
        let copy = self.proc_.ep.host().cost().memcpy(data.len());
        ctx.delay(copy)?;
        self.trace(
            ctx,
            EventKind::SubstrateCopy,
            data.len() as u64,
            copy.nanos(),
        );
        let staged = {
            let mut i = self.inner.lock();
            i.coalesce_buf.extend_from_slice(data);
            i.coalesce_count += 1;
            i.stats.writes_coalesced += 1;
            i.stats.bytes_sent += data.len() as u64;
            if i.coalesce_since.is_none() {
                i.coalesce_since = Some(ctx.now());
            }
            i.coalesce_buf.len()
        };
        self.trace(
            ctx,
            EventKind::CoalesceAppend,
            data.len() as u64,
            staged as u64,
        );
        Ok(())
    }

    /// True when the aggregation deadline has expired for staged bytes.
    /// Checked lazily at substrate entry points (the simulation has no
    /// timers firing behind the application's back).
    fn coalesce_due(&self, ctx: &ProcessCtx) -> bool {
        let Some(deadline) = self.proc_.cfg.coalesce_deadline else {
            return false;
        };
        let i = self.inner.lock();
        i.coalesce_since.is_some_and(|t| ctx.now() - t >= deadline)
    }

    /// Flush staged coalesced writes as one substrate message, blocking
    /// for a credit when none is in hand. No-op when nothing is staged.
    pub(crate) fn flush_coalesced(&self, ctx: &ProcessCtx) -> OpResult<()> {
        if self.inner.lock().coalesce_buf.is_empty() {
            return Ok(Ok(()));
        }
        ok_or_return!(self.acquire_credit(ctx)?);
        self.flush_staged(ctx)
    }

    /// Nonblocking flush: sends the staged message only with a credit
    /// already in hand. Returns whether the staging buffer is now empty.
    pub(crate) fn try_flush_coalesced(&self, ctx: &ProcessCtx) -> OpResult<bool> {
        if self.inner.lock().coalesce_buf.is_empty() {
            return Ok(Ok(true));
        }
        self.reap_fcacks(ctx)?;
        let got_credit = {
            let mut i = self.inner.lock();
            if i.credits > 0 {
                i.credits -= 1;
                true
            } else {
                false
            }
        };
        if !got_credit {
            return Ok(Ok(false));
        }
        ok_or_return!(self.flush_staged(ctx)?);
        Ok(Ok(true))
    }

    /// Send the staged bytes (credit already spent) as one data message.
    /// The staging copy was paid per-append, so the flush itself hands
    /// the NIC the buffer without another copy.
    fn flush_staged(&self, ctx: &ProcessCtx) -> OpResult<()> {
        let piggyback = self.take_due_ack();
        if emp_trace::ENABLED && piggyback > 0 {
            self.trace(ctx, EventKind::AckPiggybacked, u64::from(piggyback), 0);
        }
        let (payload, writes, seq) = {
            let mut i = self.inner.lock();
            let payload = Bytes::from(std::mem::take(&mut i.coalesce_buf));
            let writes = std::mem::take(&mut i.coalesce_count);
            i.coalesce_since = None;
            i.stats.msgs_sent += 1;
            i.stats.coalesce_flushes += 1;
            i.stats.piggybacked_credits += u64::from(piggyback);
            (payload, writes, i.claim_tx_seq())
        };
        self.trace(ctx, EventKind::CoalesceFlush, payload.len() as u64, writes);
        ctx.delay(self.proc_.cfg.stream_overhead)?;
        self.comm_thread_penalty(ctx)?;
        let h = self.send_data_msg(ctx, self.tx_data_tag(), piggyback, seq, payload)?;
        self.inner.lock().inflight_sends.push(h);
        Ok(Ok(()))
    }

    /// Serve up to `max` buffered stream bytes if any are waiting, paying
    /// the §6.2 temp-buffer-to-user copy. `None` means nothing buffered.
    /// Shared by the blocking and nonblocking read paths.
    fn serve_buffered(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Option<Bytes>> {
        let served = {
            let mut i = self.inner.lock();
            if i.closed {
                return Ok(Err(SockError::Closed));
            }
            if i.poisoned {
                return Ok(Err(SockError::ResourceExhausted));
            }
            if i.stream_len > 0 {
                let mut out = Vec::with_capacity(max.min(i.stream_len));
                while out.len() < max {
                    let Some(mut chunk) = i.stream_chunks.pop_front() else {
                        break;
                    };
                    let want = max - out.len();
                    if chunk.len() > want {
                        let rest = chunk.split_off(want);
                        i.stream_chunks.push_front(rest);
                    }
                    out.extend_from_slice(&chunk);
                }
                i.stream_len -= out.len();
                Some(Bytes::from(out))
            } else {
                None
            }
        };
        if let Some(out) = served {
            // The data-streaming copy from the substrate's temporary
            // buffer into the caller's buffer (§6.2).
            let copy = self.proc_.ep.host().cost().memcpy(out.len());
            ctx.delay(copy)?;
            if emp_trace::ENABLED {
                self.trace(
                    ctx,
                    EventKind::SubstrateCopy,
                    out.len() as u64,
                    copy.nanos(),
                );
                self.trace(ctx, EventKind::SockReadEnd, out.len() as u64, 0);
            }
            self.inner.lock().stats.bytes_received += out.len() as u64;
            return Ok(Ok(Some(out)));
        }
        Ok(Ok(None))
    }

    /// Blocking stream read: up to `max` bytes, at least one (or an empty
    /// buffer at EOF). Pays the §6.2 temp-buffer-to-user copy.
    pub(crate) fn stream_read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        if max == 0 {
            return Ok(Ok(Bytes::new()));
        }
        // Flush-on-read: staged coalesced writes go out before this side
        // parks waiting for a response (keeps request/response latency
        // flat under coalescing).
        ok_or_return!(self.try_flush_coalesced(ctx)?);
        let direct_max = self.proc_.cfg.direct_delivery.then_some(max);
        loop {
            // 1. Serve buffered bytes.
            if let Some(out) = ok_or_return!(self.serve_buffered(ctx, max)?) {
                return Ok(Ok(out));
            }
            // 2. Pull completed messages into the stream — or, with the
            // reader's buffer posted and the stream empty, straight into
            // the reader's hands.
            let front_done = {
                let i = self.inner.lock();
                i.data_slots.front().is_some_and(|s| s.handle.is_done())
            };
            if front_done {
                if let Some(out) = ok_or_return!(self.pull_stream_msgs(ctx, direct_max)?) {
                    return Ok(Ok(out));
                }
                continue;
            }
            // 3. EOF once the peer closed and every data message it
            // announced has been delivered (a Close can overtake data that
            // is still retransmitting on a lossy fabric).
            {
                let i = self.inner.lock();
                if i.peer_drained() {
                    return Ok(Ok(Bytes::new()));
                }
            }
            // 4. Block for data or control.
            let data_completion = {
                let i = self.inner.lock();
                i.data_slots
                    .front()
                    .map(|s| s.handle.completion().clone())
                    .expect("stream socket keeps N descriptors posted")
            };
            ok_or_return!(self.wait_data_or_ctrl(ctx, &data_completion)?);
        }
    }

    /// Nonblocking stream read: serve whatever is buffered or already
    /// landed; [`SockError::WouldBlock`] when a blocking read would park.
    pub(crate) fn stream_try_read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        self.stream_try_read_impl(ctx, max, false)
    }

    /// [`Self::stream_try_read`] with the direct-delivery fast path
    /// forced on. The completion-ring read path completes into a
    /// registered buffer the application posted in advance, so the §6.2
    /// temp-buffer copy is skippable regardless of the
    /// `direct_delivery` config knob — this is what makes
    /// `copies_avoided` cover the ring path.
    pub(crate) fn stream_ring_try_read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        self.stream_try_read_impl(ctx, max, true)
    }

    fn stream_try_read_impl(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        force_direct: bool,
    ) -> OpResult<Bytes> {
        if max == 0 {
            return Ok(Ok(Bytes::new()));
        }
        // Flush-on-read, as in the blocking path.
        ok_or_return!(self.try_flush_coalesced(ctx)?);
        let direct_max = (force_direct || self.proc_.cfg.direct_delivery).then_some(max);
        loop {
            if let Some(out) = ok_or_return!(self.serve_buffered(ctx, max)?) {
                return Ok(Ok(out));
            }
            let front_done = {
                let i = self.inner.lock();
                i.data_slots.front().is_some_and(|s| s.handle.is_done())
            };
            if front_done {
                if let Some(out) = ok_or_return!(self.pull_stream_msgs(ctx, direct_max)?) {
                    return Ok(Ok(out));
                }
                continue;
            }
            // Notice a close notification that landed but was never
            // drained (nonblocking readers never park in
            // `wait_data_or_ctrl`, which is where blocking reads drain it).
            ok_or_return!(self.poll_ctrl(ctx)?);
            let (front_done, drained) = {
                let i = self.inner.lock();
                (
                    i.data_slots.front().is_some_and(|s| s.handle.is_done()),
                    i.peer_drained(),
                )
            };
            if front_done {
                continue;
            }
            if drained {
                return Ok(Ok(Bytes::new()));
            }
            return Ok(Err(SockError::WouldBlock));
        }
    }

    /// Nonblocking stream write: send as many credit-sized fragments as
    /// available credits allow and report the bytes accepted —
    /// [`SockError::WouldBlock`] when the credits are exhausted before any
    /// byte is taken. Always uses the buffered-send path (copy into a
    /// registered staging buffer, fire and forget): the zero-copy path
    /// must pin the caller's buffer until the NIC acknowledges, which is
    /// exactly the blocking a nonblocking write must not do.
    pub(crate) fn stream_try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        self.trace(ctx, EventKind::SockWriteStart, data.len() as u64, 0);
        if self.coalesce_due(ctx) {
            // Deadline expired: best-effort flush; without a credit the
            // staged bytes simply keep waiting (never park here).
            ok_or_return!(self.try_flush_coalesced(ctx)?);
        }
        let cfg = &self.proc_.cfg;
        if cfg.coalesce_writes && !data.is_empty() && data.len() <= cfg.coalesce_threshold {
            ok_or_return!(self.check_writable());
            return self.try_coalesce_append(ctx, data);
        }
        // A larger write must not overtake bytes already staged.
        if !ok_or_return!(self.try_flush_coalesced(ctx)?) {
            return Ok(Err(SockError::WouldBlock));
        }
        let whole = Bytes::copy_from_slice(data);
        let mut off = 0;
        loop {
            ok_or_return!(self.check_writable());
            // Collect any credit returns that already landed; never park.
            self.reap_fcacks(ctx)?;
            let got_credit = {
                let mut i = self.inner.lock();
                if i.credits > 0 {
                    i.credits -= 1;
                    true
                } else {
                    false
                }
            };
            if !got_credit {
                if self.inner.lock().peer_closed {
                    return Ok(Err(SockError::PeerClosed));
                }
                if off == 0 && !data.is_empty() {
                    return Ok(Err(SockError::WouldBlock));
                }
                return Ok(Ok(off));
            }
            let chunk = (data.len() - off).min(self.buf_size);
            let piggyback = self.take_due_ack();
            if emp_trace::ENABLED && piggyback > 0 {
                self.trace(ctx, EventKind::AckPiggybacked, u64::from(piggyback), 0);
            }
            let seq = {
                let mut i = self.inner.lock();
                i.stats.bytes_sent += chunk as u64;
                i.stats.msgs_sent += 1;
                i.stats.piggybacked_credits += u64::from(piggyback);
                i.claim_tx_seq()
            };
            let payload = whole.slice(off..off + chunk);
            ctx.delay(self.proc_.cfg.stream_overhead)?;
            self.comm_thread_penalty(ctx)?;
            let copy = self.proc_.ep.host().cost().memcpy(chunk);
            ctx.delay(copy)?;
            self.trace(ctx, EventKind::SubstrateCopy, chunk as u64, copy.nanos());
            let h = self.send_data_msg(ctx, self.tx_data_tag(), piggyback, seq, payload)?;
            self.inner.lock().inflight_sends.push(h);
            off += chunk;
            if off >= data.len() {
                return Ok(Ok(data.len()));
            }
        }
    }

    /// Nonblocking [`SockShared::coalesce_append`]: never parks. Staging
    /// requires a credit in hand (reaped, not awaited) so staged bytes
    /// are always flushable without blocking — otherwise a coalesced
    /// `try_write` could silently accept bytes nothing can send.
    fn try_coalesce_append(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        let cap = self.proc_.cfg.coalesce_capacity();
        let overflow = {
            let i = self.inner.lock();
            i.coalesce_buf.len() + data.len() > cap
        };
        if overflow && !ok_or_return!(self.try_flush_coalesced(ctx)?) {
            return Ok(Err(SockError::WouldBlock));
        }
        self.reap_fcacks(ctx)?;
        {
            let i = self.inner.lock();
            if i.credits == 0 {
                return Ok(Err(if i.peer_closed {
                    SockError::PeerClosed
                } else {
                    SockError::WouldBlock
                }));
            }
        }
        self.stage_bytes(ctx, data)?;
        let (full, pressure) = {
            let i = self.inner.lock();
            (i.coalesce_buf.len() >= cap, i.credits <= 1)
        };
        if full || pressure {
            ok_or_return!(self.try_flush_coalesced(ctx)?);
        }
        Ok(Ok(data.len()))
    }

    /// Would a stream `write` make progress without blocking right now?
    /// True with credits in hand, and true in every error state (the
    /// write returns the error immediately — POSIX `POLLOUT` semantics).
    pub(crate) fn stream_writable_now(&self) -> bool {
        let i = self.inner.lock();
        i.credits > 0 || i.peer_closed || i.write_closed || i.closed || i.poisoned
    }

    /// Drain every completed head data descriptor: append payloads to the
    /// stream, batch-repost the consumed descriptors behind one doorbell,
    /// and run the credit-return policy (§6.1/§6.3) per message.
    ///
    /// With `direct_max` set (a reader is parked here with a posted buffer
    /// of that size), the first in-sequence payload that fits while the
    /// stream is empty is handed straight back — skipping the §6.2
    /// temp-buffer-to-user copy entirely.
    pub(crate) fn pull_stream_msgs(
        &self,
        ctx: &ProcessCtx,
        direct_max: Option<usize>,
    ) -> OpResult<Option<Bytes>> {
        let mut direct: Option<Bytes> = None;
        let mut reposts = Vec::new();
        let mut explicit_acks = Vec::new();
        loop {
            let slot = {
                let mut i = self.inner.lock();
                match i.data_slots.front() {
                    Some(s) if s.handle.is_done() => i.data_slots.pop_front().unwrap(),
                    _ => break,
                }
            };
            self.comm_thread_penalty(ctx)?;
            let Some(msg) = self.proc_.ep.wait_recv(ctx, &slot.handle)? else {
                continue; // unposted during close: consumed, nothing to repost
            };
            let parsed = ok_or_return!(Msg::decode(&msg.data));
            let Msg::Data {
                piggyback,
                seq,
                payload,
            } = parsed
            else {
                return Ok(Err(SockError::protocol("non-data message on data tag")));
            };
            ctx.delay(self.proc_.cfg.stream_overhead)?;
            reposts.push(slot.range);
            let (send_explicit, delivered_direct) = {
                let mut i = self.inner.lock();
                i.credits += u32::from(piggyback);
                i.stats.msgs_received += 1;
                // The descriptor is consumed (and reposted below) regardless
                // of arrival order; only the *byte stream* is sequenced. An
                // ahead-of-sequence payload parks in the reorder buffer
                // until the retransmitting gap message lands.
                let mut delivered = 0;
                if seq == i.rx_next_seq {
                    // Direct delivery is only sound for the very next bytes
                    // of the stream with nothing buffered ahead of them,
                    // and only once per pull (the reader posted one buffer).
                    let take_direct = direct.is_none()
                        && i.stream_len == 0
                        && !payload.is_empty()
                        && direct_max.is_some_and(|m| payload.len() <= m);
                    i.rx_next_seq += 1;
                    if take_direct {
                        delivered = payload.len();
                        i.stats.copies_avoided += 1;
                        i.stats.bytes_direct += delivered as u64;
                        i.stats.bytes_received += delivered as u64;
                        direct = Some(payload);
                    } else {
                        i.stream_len += payload.len();
                        i.stream_chunks.push_back(payload);
                    }
                    loop {
                        let next = i.rx_next_seq;
                        let Some(parked) = i.rx_ooo.remove(&next) else {
                            break;
                        };
                        i.rx_next_seq += 1;
                        i.stream_len += parked.len();
                        i.stream_chunks.push_back(parked);
                    }
                } else if seq > i.rx_next_seq {
                    // Reorder-buffer budget: the payload was EMP-acked, so
                    // dropping it would corrupt the stream — past the cap
                    // the connection is poisoned instead and every
                    // subsequent operation fails with `ResourceExhausted`.
                    let over = self.proc_.cfg.reorder_cap_bytes.is_some_and(|cap| {
                        i.rx_ooo.values().map(Bytes::len).sum::<usize>() + payload.len() > cap
                    });
                    if over {
                        i.poisoned = true;
                    } else {
                        i.rx_ooo.insert(seq, payload);
                    }
                }
                // seq < rx_next_seq would be a duplicate; EMP's
                // message-level dedup makes that unreachable, so it is
                // silently ignored.
                i.consumed += 1;
                // §6.3: with delayed acks the return is due only after half
                // the credits are consumed. Piggy-backing rides on writes
                // that happen to occur before the threshold (§6.1: "when a
                // message is available to be sent... we cannot always rely
                // on this approach and need an explicit acknowledgment
                // mechanism too"); at the threshold, with no write in hand,
                // the ack goes out explicitly.
                let threshold = self.proc_.cfg.ack_threshold();
                let explicit = if i.consumed >= threshold {
                    Some(std::mem::take(&mut i.consumed) as u16)
                } else {
                    if emp_trace::ENABLED && self.proc_.cfg.piggyback_acks && i.consumed > 0 {
                        let accrued = u64::from(i.consumed);
                        drop(i);
                        self.trace(ctx, EventKind::AckDelayed, accrued, 0);
                    }
                    None
                };
                (explicit, delivered)
            };
            if delivered_direct > 0 && emp_trace::ENABLED {
                self.trace(ctx, EventKind::DirectDeliver, delivered_direct as u64, 0);
                self.trace(ctx, EventKind::SockReadEnd, delivered_direct as u64, 0);
            }
            if let Some(credits) = send_explicit {
                explicit_acks.push(credits);
            }
            if self.inner.lock().poisoned {
                // Budget tripped on this message: the popped descriptors
                // can no longer serve the (now unrecoverable) stream —
                // recycle their buffers instead of reposting.
                for r in reposts {
                    self.proc_.free_range(r);
                }
                ctx.telemetry().counter("sock.reorder_cap_trips").add(1);
                return Ok(Err(SockError::ResourceExhausted));
            }
        }
        // Batch-repost every consumed descriptor to its staging range
        // behind a single doorbell, *before* the explicit acks go out:
        // the credits those acks grant must never race ahead of the
        // descriptors that will catch the messages they pay for.
        if !reposts.is_empty() {
            let cap = self.buf_size + crate::proto::DATA_HEADER;
            let posts: Vec<_> = reposts
                .iter()
                .map(|range| (self.rx_data_tag(), Some(self.peer), cap, *range))
                .collect();
            let handles = self.proc_.ep.post_recv_batch(ctx, &posts)?;
            let mut i = self.inner.lock();
            for (handle, range) in handles.into_iter().zip(reposts) {
                i.data_slots.push_back(DataSlot { handle, range });
            }
        }
        for credits in explicit_acks {
            if emp_trace::ENABLED {
                self.trace(ctx, EventKind::CreditReturn, u64::from(credits), 0);
                self.trace(ctx, EventKind::AckSent, u64::from(credits), 0);
            }
            let h = self.send_msg(ctx, self.tx_fcack_tag(), &Msg::FcAck { credits })?;
            let mut i = self.inner.lock();
            i.stats.fcacks_sent += 1;
            i.inflight_sends.push(h);
        }
        Ok(Ok(direct))
    }

    /// Take whatever credit return is pending and ride it on an outgoing
    /// data message (§6.1 piggy-backing; free, so done for any amount).
    fn take_due_ack(&self) -> u16 {
        if !self.proc_.cfg.piggyback_acks {
            return 0;
        }
        let mut i = self.inner.lock();
        std::mem::take(&mut i.consumed) as u16
    }

    fn check_writable(&self) -> Result<(), SockError> {
        self.reap_sends()?;
        let i = self.inner.lock();
        if i.closed || i.write_closed {
            return Err(SockError::Closed);
        }
        if i.poisoned {
            return Err(SockError::ResourceExhausted);
        }
        // Note: a received Close does NOT fail writes here — the peer may
        // only have shut down its write side (its descriptors stay posted
        // and our data still flows, as TCP allows after a FIN). A *fully*
        // closed peer unposts its descriptors, which surfaces as failed
        // sends through `reap_sends` above.
        Ok(())
    }

    /// Spend one credit, blocking on flow-control acks while none are
    /// available.
    fn acquire_credit(&self, ctx: &ProcessCtx) -> OpResult<()> {
        // Sim instant the first stall began, for the credit-wait histogram
        // (only stalled acquisitions record; the fast path stays free).
        let mut stall_start: Option<u64> = None;
        // Write-stall detector (the slowloris defence): armed on the
        // first stall, fires as a typed Timeout if no credit arrives
        // within the configured patience.
        let mut stall_timer: Option<simnet::Completion> = None;
        loop {
            self.reap_fcacks(ctx)?;
            let acquired = {
                let mut i = self.inner.lock();
                if i.credits > 0 {
                    i.credits -= 1;
                    true
                } else if i.peer_closed {
                    return Ok(Err(SockError::PeerClosed));
                } else {
                    i.stats.credit_stalls += 1;
                    false
                }
            };
            if acquired {
                if let Some(t0) = stall_start {
                    ctx.telemetry()
                        .histogram("sock.credit_wait_ns")
                        .record(ctx.now().nanos().saturating_sub(t0));
                }
                return Ok(Ok(()));
            }
            stall_start.get_or_insert(ctx.now().nanos());
            if let Some(patience) = self.proc_.cfg.write_stall_after {
                if stall_timer.as_ref().is_some_and(|t| t.is_done()) {
                    ctx.telemetry().counter("sock.write_stall_timeouts").add(1);
                    return Ok(Err(SockError::Timeout));
                }
                if stall_timer.is_none() {
                    let t = simnet::Completion::new();
                    let t2 = t.clone();
                    ctx.schedule_after(patience, move |s| t2.complete(s));
                    stall_timer = Some(t);
                }
            }
            self.trace(ctx, EventKind::CreditStall, 0, 0);
            // Out of credits: block for the next flow-control ack.
            if self.proc_.cfg.acks_in_unexpected_queue {
                // §6.4: the ack may already be parked in the unexpected
                // pool; otherwise post a descriptor and wait.
                // Hoisted out of the call: a guard temporary in the
                // argument list would stay locked across `post_recv`'s
                // park, stalling the telemetry sampler's state reads.
                let fcack_range = self.inner.lock().fcack_range;
                let h = self.proc_.ep.post_recv(
                    ctx,
                    self.rx_fcack_tag(),
                    Some(self.peer),
                    crate::proto::HEADER,
                    fcack_range,
                )?;
                ok_or_return!(self.wait_data_ctrl_or(ctx, h.completion(), stall_timer.as_ref())?);
                if h.is_done() {
                    if let Some(msg) = self.proc_.ep.wait_recv(ctx, &h)? {
                        ok_or_return!(self.apply_fcack(ctx, &msg.data));
                    }
                } else {
                    // Control (close) or the stall timer woke us; unpost
                    // the straggler.
                    self.proc_.ep.unpost_recv(ctx, &h)?;
                }
            } else {
                let front = {
                    let i = self.inner.lock();
                    i.fcack_handles
                        .front()
                        .map(|h| h.completion().clone())
                        .expect("stream socket pre-posts fc-ack descriptors")
                };
                ok_or_return!(self.wait_data_ctrl_or(ctx, &front, stall_timer.as_ref())?);
                self.reap_fcacks(ctx)?;
            }
        }
    }

    /// Consume completed pre-posted fc-ack descriptors (non-UQ mode) and,
    /// in UQ mode, anything parked in the unexpected pool.
    pub(crate) fn reap_fcacks(&self, ctx: &ProcessCtx) -> SimResult<()> {
        if self.proc_.cfg.acks_in_unexpected_queue {
            while let Some(msg) =
                self.proc_
                    .ep
                    .try_claim_unexpected(ctx, self.rx_fcack_tag(), Some(self.peer))?
            {
                let _ = self.apply_fcack(ctx, &msg.data);
            }
            return Ok(());
        }
        loop {
            let handle = {
                let i = self.inner.lock();
                match i.fcack_handles.front() {
                    Some(h) if h.is_done() => h.clone(),
                    _ => return Ok(()),
                }
            };
            self.inner.lock().fcack_handles.pop_front();
            if let Some(msg) = self.proc_.ep.wait_recv(ctx, &handle)? {
                let _ = self.apply_fcack(ctx, &msg.data);
                // Repost to keep the fc-ack descriptor count constant.
                let range = self.inner.lock().fcack_range;
                let h = self.proc_.ep.post_recv(
                    ctx,
                    self.rx_fcack_tag(),
                    Some(self.peer),
                    crate::proto::HEADER,
                    range,
                )?;
                self.inner.lock().fcack_handles.push_back(h);
            }
        }
    }

    /// Arm a one-shot fc-ack descriptor for a `poll` with write interest
    /// in unexpected-queue mode (§6.4): with no pre-posted fc-ack
    /// descriptors there, a credit return parks silently in the
    /// unexpected pool and nothing would wake the poll. No-op outside UQ
    /// mode, with credits in hand, or when one is already armed.
    pub(crate) fn arm_poll_fcack(&self, ctx: &ProcessCtx) -> SimResult<()> {
        if !self.proc_.cfg.acks_in_unexpected_queue {
            return Ok(());
        }
        {
            let i = self.inner.lock();
            if i.poll_fcack.is_some() || i.credits > 0 || i.closed || i.peer_closed {
                return Ok(());
            }
        }
        let range = self.inner.lock().fcack_range;
        let h = self.proc_.ep.post_recv(
            ctx,
            self.rx_fcack_tag(),
            Some(self.peer),
            crate::proto::HEADER,
            range,
        )?;
        self.inner.lock().poll_fcack = Some(h);
        Ok(())
    }

    /// Consume (if completed) or unpost the poll-armed fc-ack descriptor.
    /// Must run before a poll returns: a descriptor left posted would
    /// steal the next ack from the blocking write path's own post.
    pub(crate) fn disarm_poll_fcack(&self, ctx: &ProcessCtx) -> OpResult<()> {
        let Some(h) = self.inner.lock().poll_fcack.take() else {
            return Ok(Ok(()));
        };
        if h.is_done() {
            if let Some(msg) = self.proc_.ep.wait_recv(ctx, &h)? {
                ok_or_return!(self.apply_fcack(ctx, &msg.data));
            }
        } else {
            self.proc_.ep.unpost_recv(ctx, &h)?;
        }
        Ok(Ok(()))
    }

    fn apply_fcack(&self, ctx: &ProcessCtx, raw: &Bytes) -> Result<(), SockError> {
        match Msg::decode(raw)? {
            Msg::FcAck { credits } => {
                self.trace(ctx, EventKind::CreditGrant, u64::from(credits), 0);
                self.inner.lock().credits += u32::from(credits);
                Ok(())
            }
            other => Err(SockError::protocol(format!(
                "non-ack message on fc-ack tag: {other:?}"
            ))),
        }
    }

    /// The §5.2 communication-thread ablation: every message handoff costs
    /// a thread synchronization (polling) or a scheduler-granularity wait
    /// (blocking thread).
    pub(crate) fn comm_thread_penalty(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let cost = match self.proc_.cfg.recv_mode {
            RecvMode::Direct => return Ok(()),
            RecvMode::CommThreadPolling => self.proc_.ep.host().cost().thread_sync,
            // On average half a scheduling quantum until the blocked
            // communication thread runs again.
            RecvMode::CommThreadBlocking => self.proc_.ep.host().cost().scheduler_granularity / 2,
        };
        ctx.delay(cost)
    }
}
