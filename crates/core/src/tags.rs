//! Tag-space partitioning.
//!
//! EMP matches on a single 16-bit tag (plus the sender's source index).
//! The substrate carves that space into classes so connection requests,
//! data, flow-control acks, rendezvous requests and control messages land
//! in different descriptors (§5.1: "we need to distinguish connection
//! messages from data messages, for which we used the tag matching
//! facility provided by EMP").
//!
//! A connection is identified everywhere by the *client's* connection id:
//! both directions use tags derived from it, and source filters
//! disambiguate between hosts. This lets a client start sending data
//! immediately after its connection request, without waiting for any
//! reply carrying a server-chosen id (§7.4 relies on that).
//!
//! Crucially, every class carries a **direction bit** (client→server vs
//! server→client). Without it, a node that holds both a *client*
//! connection to host X and an *accepted* connection from host X can see
//! the two connections' ids collide — ids are allocated independently per
//! client process — and `(tag, source)` alone would cross-match their
//! descriptors. Bidirectional workloads (two nodes streaming at each
//! other) hit this immediately.
//!
//! Layout: `[15:14]` class (data/fcack/rndv/ctrl), `[13]` direction
//! (0 = to server, 1 = to client), `[12:0]` connection id. Connection
//! requests overlay the ctrl/to-client class with the id range
//! `0x1000..=0x1FFF` (i.e. tags `0xF000..=0xFFFF`), which is why ids and
//! ports are both capped at `0x0FFF`.

use emp_proto::Tag;

/// Highest allocatable connection id.
pub const MAX_CID: u16 = 0x0FFF;

/// Highest port usable with the substrate (embedded in the
/// connection-request tag).
pub const MAX_PORT: u16 = 0x0FFF;

const CLASS_DATA: u16 = 0b00 << 14;
const CLASS_FCACK: u16 = 0b01 << 14;
const CLASS_RNDV: u16 = 0b10 << 14;
const CLASS_CTRL: u16 = 0b11 << 14;
const DIR_TO_CLIENT: u16 = 1 << 13;

fn tag(class: u16, to_server: bool, cid: u16) -> Tag {
    debug_assert!(cid <= MAX_CID);
    let dir = if to_server { 0 } else { DIR_TO_CLIENT };
    Tag(class | dir | cid)
}

/// Tag of data messages on connection `cid` travelling in the given
/// direction.
pub fn data_tag(cid: u16, to_server: bool) -> Tag {
    tag(CLASS_DATA, to_server, cid)
}

/// Tag of flow-control acknowledgments on connection `cid`.
pub fn fcack_tag(cid: u16, to_server: bool) -> Tag {
    tag(CLASS_FCACK, to_server, cid)
}

/// Tag of rendezvous requests on connection `cid`.
pub fn rndv_tag(cid: u16, to_server: bool) -> Tag {
    tag(CLASS_RNDV, to_server, cid)
}

/// Tag of control messages (rendezvous grants/refusals, close) on
/// connection `cid`.
pub fn ctrl_tag(cid: u16, to_server: bool) -> Tag {
    tag(CLASS_CTRL, to_server, cid)
}

/// Tag of connection requests to `port`.
pub fn conn_tag(port: u16) -> Tag {
    assert!(
        port <= MAX_PORT,
        "substrate ports must be <= {MAX_PORT} (tag-space encoding)"
    );
    Tag(CLASS_CTRL | DIR_TO_CLIENT | 0x1000 | port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_directions_are_disjoint() {
        let cid = 0x234;
        let mut tags = Vec::new();
        for to_server in [true, false] {
            tags.push(data_tag(cid, to_server));
            tags.push(fcack_tag(cid, to_server));
            tags.push(rndv_tag(cid, to_server));
            tags.push(ctrl_tag(cid, to_server));
        }
        tags.push(conn_tag(0x234));
        for (i, a) in tags.iter().enumerate() {
            for (j, b) in tags.iter().enumerate() {
                assert_eq!(i == j, a == b, "tags {i} and {j}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn conn_tags_match_the_legacy_layout() {
        // 0xF000 | port, so every port has a stable, documented tag.
        assert_eq!(conn_tag(0), Tag(0xF000));
        assert_eq!(conn_tag(80), Tag(0xF050));
        assert_eq!(conn_tag(0x0FFF), Tag(0xFFFF));
    }

    #[test]
    fn conn_tags_never_collide_with_ctrl_tags() {
        // ctrl/to-client tags use cid <= 0x0FFF; conn tags use the
        // 0x1000..=0x1FFF range of the same class+direction.
        for cid in [0u16, 1, 0x0FFF] {
            for port in [0u16, 1, 0x0FFF] {
                assert_ne!(ctrl_tag(cid, false), conn_tag(port));
            }
        }
    }

    #[test]
    fn different_cids_never_collide() {
        assert_ne!(data_tag(1, true), data_tag(2, true));
        assert_ne!(data_tag(1, true), data_tag(1, false));
        assert_ne!(fcack_tag(1, true), data_tag(1, true));
        assert_ne!(conn_tag(80), conn_tag(81));
    }

    #[test]
    #[should_panic(expected = "substrate ports must be")]
    fn oversized_port_rejected() {
        conn_tag(0x1000);
    }
}
