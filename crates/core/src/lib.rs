//! # sockets-emp — High Performance User Level Sockets over (simulated)
//! Gigabit Ethernet
//!
//! The paper's contribution: a user-level sockets substrate on EMP that
//! runs TCP-style applications unmodified, at a fraction of the kernel
//! stack's cost. Everything from §4-§6 of the paper is here:
//!
//! * **Connection management by data message exchange** (§5.1) —
//!   [`EmpSockets::listen`]/[`Listener::accept`]/[`EmpSockets::connect`];
//! * **Eager with flow control** for data-streaming sockets (§5.2, §6.1):
//!   N credits, pre-posted temp buffers, one receive-side copy, partial
//!   reads;
//! * **Rendezvous** for datagram sockets' large messages (§5.2, §6.2) —
//!   zero-copy, deadlock-prone by design (Figure 7);
//! * **Credit-based flow control with 2N descriptors** and **piggy-backed
//!   acks** (§6.1);
//! * **Delayed acknowledgments** (§6.3) and **acks through the EMP
//!   unexpected queue** (§6.4) — toggled via [`SubstrateConfig`] presets
//!   `ds()`, `ds_da()`, `ds_da_uq()`, `dg()`, matching Figure 11's labels;
//! * **Resource management** (§5.3): an active-socket table and explicit
//!   descriptor unposting on `close()`;
//! * **Function name-space interposition** (§5.4): [`FdTable`] routes
//!   integer-fd `read`/`write`/`close` to the substrate or the simulated
//!   filesystem;
//! * the rejected **separate communication thread** alternative (§5.2) as
//!   an ablation, via [`RecvMode`].

#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod dgram;
pub mod error;
pub mod fdtable;
pub mod poll;
pub mod proto;
pub mod ring;
pub mod socket;
pub mod stream;
pub mod tags;

pub use config::{RecvMode, RetryPolicy, SocketType, SubstrateConfig};
pub use conn::ConnStats;
pub use error::SockError;
pub use fdtable::{FdError, FdTable, PollFd};
pub use poll::PollSet;
pub use ring::{EmpRing, EmpRingDriver};
pub use simnet::{Event, Interest};
pub use socket::{
    ConnDebugState, Connection, EmpSockets, Listener, SlotDebug, SockAddr, SubstrateStats,
};
