//! The unified readiness layer: [`PollSet`].
//!
//! A `PollSet` holds registrations — connections and listeners, each with
//! a caller-chosen token and an [`Interest`] mask — and its [`PollSet::poll`]
//! blocks until at least one registration is actionable, returning every
//! ready one as an [`Event`]. The blocking sockets API layers on top:
//! `select_readable` is a one-shot `PollSet` with `READABLE` interests,
//! and an application event loop keeps one `PollSet` alive across
//! iterations so the descriptor-completion watch lists are collected once
//! per registration and reused, not rebuilt on every wake.
//!
//! Readiness is one of the substrate's two I/O models, not the only one:
//! the completion model ([`crate::ring`]) submits `Accept`/`Read`/
//! `Write`/`Close` ops over registered buffers and reaps completions in
//! batches instead of asking when an operation would succeed. Its ring
//! driver reuses this layer's wakeup machinery (a `PollSet` is the wait
//! under `submit_and_wait`), so both models share one readiness truth.
//!
//! Readiness sources per kind:
//!
//! * **readable** — buffered stream bytes, a completed data/rendezvous
//!   descriptor, or a drained peer close (EOF counts as readable);
//! * **writable** — stream credits in hand (§6.1; credit returns arrive
//!   on the flow-control-ack channel, piggy-backed returns apply when a
//!   read consumes the carrying message), or always for datagrams (eager
//!   sends are fire-and-forget);
//! * **acceptable** — a completed connection-request descriptor at the
//!   head of a listener's backlog;
//! * **error** — local close, a failed send (refused connection, vanished
//!   peer), or a protocol violation; reported regardless of the mask.
//!
//! In unexpected-queue mode (§6.4) there is no pre-posted fc-ack
//! descriptor to watch, so a poll with write interest on a credit-starved
//! stream arms a one-shot fc-ack descriptor and disarms it (consuming or
//! unposting) before returning — see `SockShared::arm_poll_fcack`.

use std::collections::VecDeque;
use std::sync::Arc;

use emp_proto::RecvHandle;
use parking_lot::Mutex;
use simnet::{
    wait_any, Completion, Event, Interest, ProcessCtx, SimAccess, SimAccessExt, SimDuration,
    SimResult,
};

use crate::config::SocketType;
use crate::conn::SockShared;
use crate::error::SockError;
use crate::socket::{Connection, Listener};
use crate::stream::{ok_or_return, OpResult};

enum Target {
    Conn(Arc<SockShared>),
    /// A listener's backlog queue (shared with the `Listener` itself).
    Listener(Arc<Mutex<VecDeque<RecvHandle>>>),
}

struct Entry {
    token: usize,
    interest: Interest,
    target: Target,
    /// Completions to wait on for this entry, collected lazily and kept
    /// until one of them fires (then invalidated and re-collected) — the
    /// watch list is built once per registration per park, not rebuilt on
    /// every wake.
    watch: Option<Vec<Completion>>,
}

/// A registered set of poll targets; see the module docs.
#[derive(Default)]
pub struct PollSet {
    entries: Vec<Entry>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        PollSet::default()
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register a connection under `token` with the given interests.
    pub fn register_conn(&mut self, conn: &Connection, token: usize, interest: Interest) {
        self.entries.push(Entry {
            token,
            interest,
            target: Target::Conn(Arc::clone(&conn.sock)),
            watch: None,
        });
    }

    /// Register a listener under `token` (usually with
    /// [`Interest::ACCEPTABLE`]).
    pub fn register_listener(&mut self, l: &Listener, token: usize, interest: Interest) {
        self.entries.push(Entry {
            token,
            interest,
            target: Target::Listener(Arc::clone(&l.pending)),
            watch: None,
        });
    }

    /// Change the interest mask of the registration made under `token`
    /// (the first one, if several share it). Returns false when no such
    /// registration exists. The entry's watch list is invalidated so the
    /// next poll waits on the right sources.
    pub fn set_interest(&mut self, token: usize, interest: Interest) -> bool {
        for e in &mut self.entries {
            if e.token == token {
                e.interest = interest;
                e.watch = None;
                return true;
            }
        }
        false
    }

    /// Remove every registration made under `token`; returns how many
    /// were removed.
    pub fn deregister(&mut self, token: usize) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.token != token);
        before - self.entries.len()
    }

    /// Drop all registrations.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Block until at least one registration is ready (or the timeout
    /// expires — then the empty vector), returning every ready one.
    ///
    /// * `Err(SockError::Invalid)` for a wait that could never wake: an
    ///   empty set, or one whose interests watch nothing, with no timeout.
    /// * Error states ([`Interest::ERROR`]) are reported regardless of
    ///   the registered mask, like POSIX `POLLERR`.
    pub fn poll(&mut self, ctx: &ProcessCtx, timeout: Option<SimDuration>) -> OpResult<Vec<Event>> {
        if self.entries.is_empty() && timeout.is_none() {
            return Ok(Err(SockError::Invalid));
        }
        let deadline = timeout.map(|d| {
            let c = Completion::new();
            let c2 = c.clone();
            ctx.schedule_after(d, move |s| c2.complete(s));
            c
        });
        let entered_ns = ctx.now().nanos();
        loop {
            // 1. Compute readiness (consuming landed control traffic and
            // credit returns along the way).
            let mut events = Vec::new();
            for e in &self.entries {
                let ready = match &e.target {
                    Target::Conn(s) => ok_or_return!(conn_ready(ctx, s, e.interest)?),
                    Target::Listener(p) => listener_ready(p, e.interest),
                };
                if !ready.is_empty() {
                    events.push(Event {
                        token: e.token,
                        ready,
                    });
                }
            }
            if !events.is_empty() {
                ok_or_return!(self.finish(ctx)?);
                record_poll_wait(ctx, entered_ns);
                return Ok(Ok(events));
            }
            if deadline.as_ref().is_some_and(Completion::is_done) {
                ok_or_return!(self.finish(ctx)?);
                record_poll_wait(ctx, entered_ns);
                return Ok(Ok(Vec::new()));
            }
            // 2. (Re)collect watch lists where invalidated, arming the
            // unexpected-queue fc-ack descriptor when write interest
            // needs it.
            for e in &mut self.entries {
                if e.watch.is_none() {
                    e.watch = Some(collect_watch(ctx, &e.target, e.interest)?);
                }
            }
            let mut refs: Vec<&Completion> = Vec::new();
            for e in &self.entries {
                refs.extend(e.watch.as_deref().unwrap_or(&[]));
            }
            if let Some(d) = &deadline {
                refs.push(d);
            }
            if refs.is_empty() {
                // Nothing registered can ever produce a wake.
                return Ok(Err(SockError::Invalid));
            }
            wait_any(ctx, &refs)?;
            // 3. Invalidate watch lists that fired: a done completion left
            // in the wait set would spin this loop at one instant of
            // simulated time. The next iteration consumes whatever landed
            // and re-collects only the invalidated lists.
            for e in &mut self.entries {
                if e.watch
                    .as_ref()
                    .is_some_and(|w| w.iter().any(Completion::is_done))
                {
                    e.watch = None;
                }
            }
        }
    }

    /// Pre-return cleanup: disarm any one-shot fc-ack descriptor this
    /// poll armed (consuming a landed credit return, unposting an idle
    /// descriptor) and invalidate the watch lists that referenced it.
    fn finish(&mut self, ctx: &ProcessCtx) -> OpResult<()> {
        for e in &mut self.entries {
            if let Target::Conn(s) = &e.target {
                if s.inner.lock().poll_fcack.is_some() {
                    e.watch = None;
                    ok_or_return!(s.disarm_poll_fcack(ctx)?);
                }
            }
        }
        Ok(Ok(()))
    }
}

impl Connection {
    /// Nonblocking readiness check with a task-waker registration — the
    /// async front end's leaf. Computes the ready mask exactly like a
    /// [`PollSet::poll`] pass (consuming landed control traffic and
    /// credit returns); when it is empty, registers `waker` with every
    /// completion that could change it and returns [`Interest::EMPTY`]
    /// (= pending). If any watch source already fired during
    /// registration, readiness is recomputed instead of sleeping — the
    /// lost-wakeup race resolves toward a spurious recheck, never a hang.
    ///
    /// In unexpected-queue mode a pending write interest leaves the
    /// one-shot fc-ack descriptor armed (it *is* the wake source); a
    /// future that stops waiting must call [`Connection::cancel_ready`].
    pub fn poll_ready(
        &self,
        ctx: &ProcessCtx,
        interest: Interest,
        waker: &std::task::Waker,
    ) -> OpResult<Interest> {
        loop {
            let ready = ok_or_return!(conn_ready(ctx, &self.sock, interest)?);
            if !ready.is_empty() {
                // Mirror PollSet::finish: a ready return never leaves the
                // one-shot fc-ack descriptor armed behind it.
                if self.sock.inner.lock().poll_fcack.is_some() {
                    ok_or_return!(self.sock.disarm_poll_fcack(ctx)?);
                }
                return Ok(Ok(ready));
            }
            let target = Target::Conn(Arc::clone(&self.sock));
            let watch = collect_watch(ctx, &target, interest)?;
            if watch.is_empty() {
                // Nothing can ever produce a wake (PollSet reports the
                // same condition as an unwakeable wait).
                return Ok(Err(SockError::Invalid));
            }
            let mut fired = false;
            for c in &watch {
                fired |= !c.watch_waker(waker);
            }
            if fired {
                // Readiness already moved between the check and the
                // registration: consume it now (conn_ready reaps what
                // landed, so this converges).
                continue;
            }
            return Ok(Ok(Interest::EMPTY));
        }
    }

    /// Withdraw from a pending [`Connection::poll_ready`]: disarm the
    /// one-shot fc-ack descriptor it may have armed for write interest.
    /// Waker registrations themselves need no teardown — a fired waker
    /// for a dropped future is a no-op wake. Drop guards call this.
    pub fn cancel_ready(&self, ctx: &ProcessCtx) -> OpResult<()> {
        if self.sock.inner.lock().poll_fcack.is_some() {
            ok_or_return!(self.sock.disarm_poll_fcack(ctx)?);
        }
        Ok(Ok(()))
    }
}

impl Listener {
    /// Nonblocking accept-readiness with a task-waker registration: the
    /// listener-side analogue of [`Connection::poll_ready`]. Returns the
    /// ready mask ([`Interest::ACCEPTABLE`], [`Interest::ERROR`] for a
    /// closed listener, or [`Interest::EMPTY`] = pending with `waker`
    /// registered on the head-of-backlog completion).
    pub fn poll_acceptable(
        &self,
        ctx: &ProcessCtx,
        waker: &std::task::Waker,
    ) -> OpResult<Interest> {
        loop {
            let ready = listener_ready(&self.pending, Interest::ACCEPTABLE);
            if !ready.is_empty() {
                return Ok(Ok(ready));
            }
            let target = Target::Listener(Arc::clone(&self.pending));
            let watch = collect_watch(ctx, &target, Interest::ACCEPTABLE)?;
            if watch.is_empty() {
                return Ok(Err(SockError::Invalid));
            }
            let mut fired = false;
            for c in &watch {
                fired |= !c.watch_waker(waker);
            }
            if fired {
                continue;
            }
            return Ok(Ok(Interest::EMPTY));
        }
    }
}

/// Compute a connection's ready mask for the given interests.
/// Record one completed poll wait into the `core.poll_wait_ns` histogram.
fn record_poll_wait(ctx: &ProcessCtx, entered_ns: u64) {
    ctx.telemetry()
        .histogram("core.poll_wait_ns")
        .record(ctx.now().nanos().saturating_sub(entered_ns));
}

fn conn_ready(ctx: &ProcessCtx, sock: &SockShared, interest: Interest) -> OpResult<Interest> {
    let mut ready = Interest::EMPTY;
    // Flush-on-poll: staged coalesced writes go out before the poll
    // parks — a peer waiting on them would never make us readable.
    if sock.socket_type == SocketType::Stream {
        ok_or_return!(sock.try_flush_coalesced(ctx)?);
    }
    // Drain landed control traffic (close notifications, rendezvous
    // replies) so readiness reflects it; surface hard failures as ERROR.
    if sock.poll_ctrl(ctx)?.is_err() || sock.reap_sends().is_err() {
        ready |= Interest::ERROR;
    }
    if sock.inner.lock().closed {
        ready |= Interest::ERROR;
    }
    if interest.intersects(Interest::READABLE) && sock.readable_now() {
        ready |= Interest::READABLE;
    }
    if interest.intersects(Interest::WRITABLE) {
        match sock.socket_type {
            SocketType::Stream => {
                // Collect credit returns that already landed — pre-posted
                // descriptors, the unexpected pool, or the one-shot
                // descriptor a previous iteration armed.
                sock.reap_fcacks(ctx)?;
                if sock
                    .inner
                    .lock()
                    .poll_fcack
                    .as_ref()
                    .is_some_and(RecvHandle::is_done)
                {
                    ok_or_return!(sock.disarm_poll_fcack(ctx)?);
                }
                if sock.stream_writable_now() {
                    ready |= Interest::WRITABLE;
                }
            }
            // Eager datagram sends are fire-and-forget: always writable.
            SocketType::Datagram => ready |= Interest::WRITABLE,
        }
    }
    Ok(Ok(ready))
}

/// Compute a listener's ready mask: head-of-backlog completion means
/// acceptable; a drained backlog means the listener was closed.
fn listener_ready(pending: &Mutex<VecDeque<RecvHandle>>, interest: Interest) -> Interest {
    let p = pending.lock();
    match p.front() {
        None => Interest::ERROR,
        Some(h) if h.is_done() && interest.intersects(Interest::ACCEPTABLE) => Interest::ACCEPTABLE,
        Some(_) => Interest::EMPTY,
    }
}

/// Collect the completions that can make this entry ready, scoped to its
/// interests — watching a completion whose firing cannot change the
/// entry's readiness would wake (and re-park) the poll for nothing, or
/// worse, spin it when the completion is already done.
fn collect_watch(
    ctx: &ProcessCtx,
    target: &Target,
    interest: Interest,
) -> SimResult<Vec<Completion>> {
    let mut v = Vec::new();
    match target {
        Target::Conn(s) => {
            if interest.intersects(Interest::READABLE) {
                // Data front, datagram slot, rendezvous request, control.
                v.extend(s.watch_completions());
            }
            if interest.intersects(Interest::WRITABLE) && s.socket_type == SocketType::Stream {
                if s.proc_.cfg.acks_in_unexpected_queue {
                    // §6.4: arm the one-shot fc-ack descriptor (no-op with
                    // credits in hand) and watch it.
                    s.arm_poll_fcack(ctx)?;
                    if let Some(h) = &s.inner.lock().poll_fcack {
                        v.push(h.completion().clone());
                    }
                } else if let Some(h) = s.inner.lock().fcack_handles.front() {
                    v.push(h.completion().clone());
                }
                if !interest.intersects(Interest::READABLE) {
                    // Write-only interest still needs close notifications
                    // (a closing peer makes the write fail fast = ready).
                    v.push(s.ctrl_completion());
                }
            }
        }
        Target::Listener(p) => {
            if interest.intersects(Interest::ACCEPTABLE) {
                if let Some(h) = p.lock().front() {
                    v.push(h.completion().clone());
                }
            }
        }
    }
    Ok(v)
}
