//! Connection state and management.
//!
//! §5.1's adopted design: connection management by *data message exchange*.
//! `listen()` pre-posts `backlog` connection descriptors, `connect()` sends
//! an explicit request carrying the client's address and parameters, and
//! `accept()` blocks on the head of the backlog queue. Each established
//! connection owns EMP descriptors (data, flow-control-ack, rendezvous,
//! control) that the substrate must account for and explicitly release on
//! `close()` — §5.3's resource management.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use emp_proto::{EmpEndpoint, RecvHandle, SendHandle};
use hostsim::{VirtRange, PAGE_SIZE};
use parking_lot::Mutex;
use simnet::emp_trace::{self, EventKind};
use simnet::{wait_any, Completion, MacAddr, ProcessCtx, SimAccess, SimAccessExt, SimResult};

use crate::config::{SocketType, SubstrateConfig};
use crate::error::SockError;
use crate::proto::{Msg, DATA_HEADER, HEADER};
use crate::tags;

/// Per-process substrate state (behind `EmpSockets`).
pub(crate) struct ProcShared {
    pub(crate) ep: EmpEndpoint,
    pub(crate) cfg: SubstrateConfig,
    pub(crate) state: Mutex<ProcState>,
    /// For telemetry poll closures that walk the active-socket table.
    self_ref: Weak<ProcShared>,
}

pub(crate) struct ProcState {
    /// Recycled connection ids, reused only after the fresh space is
    /// exhausted (TIME_WAIT-like quarantine: immediate reuse would let
    /// stragglers from the previous connection match the new one's tags).
    free_cids: VecDeque<u16>,
    next_cid: u16,
    /// The active-socket table (§5.3): every open connection, so teardown
    /// can account for all NIC resources.
    pub(crate) active: HashMap<u16, Weak<SockShared>>,
    pub(crate) listeners: HashMap<u16, ()>,
    /// Unexpected-queue slots currently allocated across connections.
    pub(crate) unexpected_slots: usize,
    /// Whether the baseline unexpected slots have been configured.
    pub(crate) initialized: bool,
    /// Bump allocator for synthetic buffer addresses (stable per purpose,
    /// so the pin/translate cache behaves like reused real buffers).
    range_cursor: u64,
    /// Recycled buffer ranges by size: connections reuse the previous
    /// connection's (already pinned) buffers, so only the first connection
    /// of a given shape pays pin+translate syscalls — the way a real
    /// substrate would pool its registered temp buffers.
    range_pool: HashMap<u64, Vec<VirtRange>>,
}

impl ProcShared {
    pub(crate) fn new(ep: EmpEndpoint, cfg: SubstrateConfig) -> Arc<Self> {
        Arc::new_cyclic(|weak| ProcShared {
            ep,
            cfg,
            state: Mutex::new(ProcState {
                free_cids: VecDeque::new(),
                next_cid: 0,
                active: HashMap::new(),
                listeners: HashMap::new(),
                unexpected_slots: 0,
                initialized: false,
                range_cursor: 0x1000_0000,
                range_pool: HashMap::new(),
            }),
            self_ref: weak.clone(),
        })
    }

    pub(crate) fn alloc_cid(&self) -> Result<u16, SockError> {
        let mut st = self.state.lock();
        // Admission control: the per-process connection budget counts live
        // sockets (close() removes them from the active table), so a
        // refused connect costs nothing durable.
        if let Some(max) = self.cfg.max_connections {
            let live = st.active.values().filter(|w| w.strong_count() > 0).count();
            if live >= max {
                return Err(SockError::ResourceExhausted);
            }
        }
        if st.next_cid <= tags::MAX_CID {
            let cid = st.next_cid;
            st.next_cid += 1;
            return Ok(cid);
        }
        st.free_cids
            .pop_front()
            .ok_or_else(|| SockError::protocol("connection ids exhausted"))
    }

    pub(crate) fn free_cid(&self, cid: u16) {
        let mut st = self.state.lock();
        st.active.remove(&cid);
        st.free_cids.push_back(cid);
    }

    /// Allocate a page-aligned fake buffer range, reusing a pooled one of
    /// the same size when available (pin-cache hit).
    pub(crate) fn alloc_range(&self, len: usize) -> VirtRange {
        let mut st = self.state.lock();
        let key = len.max(1) as u64;
        if let Some(r) = st.range_pool.get_mut(&key).and_then(Vec::pop) {
            return r;
        }
        let pages = key.div_ceil(PAGE_SIZE).max(1);
        let addr = st.range_cursor;
        st.range_cursor += (pages + 1) * PAGE_SIZE; // guard page between buffers
        VirtRange::new(addr, key)
    }

    /// Return a buffer range to the pool for the next connection.
    pub(crate) fn free_range(&self, range: VirtRange) {
        let mut st = self.state.lock();
        st.range_pool.entry(range.len).or_default().push(range);
    }

    /// First-use initialization: allocate the process's baseline
    /// unexpected-queue slots.
    pub(crate) fn ensure_init(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let needs = {
            let mut st = self.state.lock();
            !std::mem::replace(&mut st.initialized, true)
        };
        if needs {
            self.adjust_unexpected(ctx, self.cfg.base_unexpected_slots as isize)?;
            self.register_telemetry(ctx);
        }
        Ok(())
    }

    /// Publish this process's substrate health as sampled time series:
    /// live connections, credits outstanding (in-flight, not yet
    /// returned), reorder-buffer occupancy, and staged coalescing bytes.
    /// Each series walks the active-socket table at sample time via a
    /// weak self reference, so telemetry never keeps the process alive.
    fn register_telemetry(&self, ctx: &dyn SimAccess) {
        let node = self.ep.addr().0;
        let reg = ctx.telemetry();
        type SockFn = Box<dyn Fn(&SockShared) -> i64 + Send>;
        let series: [(&str, SockFn); 4] = [
            ("conns_live", Box::new(|_| 1)),
            (
                "credits_out",
                Box::new(|s| {
                    let i = s.inner.lock();
                    i64::from(s.credits_max) - i64::from(i.credits)
                }),
            ),
            (
                "reorder_msgs",
                Box::new(|s| s.inner.lock().rx_ooo.len() as i64),
            ),
            (
                "staged_bytes",
                Box::new(|s| s.inner.lock().coalesce_buf.len() as i64),
            ),
        ];
        for (name, per_sock) in series {
            let weak = self.self_ref.clone();
            reg.register_sampled(&format!("sock.n{node}.{name}"), move |_| {
                let p = weak.upgrade()?;
                let socks: Vec<Arc<SockShared>> = p
                    .state
                    .try_lock()?
                    .active
                    .values()
                    .filter_map(Weak::upgrade)
                    .collect();
                // A parked process may hold a socket lock right now; skip
                // the whole tick rather than publish a partial sum.
                let mut total = 0i64;
                for s in &socks {
                    let i = s.inner.try_lock()?;
                    if !i.closed {
                        drop(i);
                        total += per_sock(s);
                    }
                }
                Some(total)
            });
        }
    }

    /// Grow/shrink this process's unexpected-queue allocation.
    pub(crate) fn adjust_unexpected(&self, ctx: &ProcessCtx, delta: isize) -> SimResult<()> {
        let slots = {
            let mut st = self.state.lock();
            st.unexpected_slots = st.unexpected_slots.saturating_add_signed(delta);
            st.unexpected_slots
        };
        self.ep.set_unexpected_slots(ctx, slots)
    }
}

/// Per-connection substrate counters, mirroring what a production sockets
/// library exposes for diagnosis (`getsockopt`-style).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// User bytes written on this connection.
    pub bytes_sent: u64,
    /// User bytes read on this connection.
    pub bytes_received: u64,
    /// Substrate data messages sent.
    pub msgs_sent: u64,
    /// Substrate data messages consumed.
    pub msgs_received: u64,
    /// Explicit flow-control acknowledgments sent.
    pub fcacks_sent: u64,
    /// Credit returns that rode on data messages (§6.1 piggy-back).
    pub piggybacked_credits: u64,
    /// Times a write blocked waiting for credits.
    pub credit_stalls: u64,
    /// Rendezvous round trips performed (datagram large sends).
    pub rendezvous: u64,
    /// §6.2 temp-buffer copies skipped by receiver-posted direct delivery.
    pub copies_avoided: u64,
    /// User bytes delivered straight into the reader's buffer.
    pub bytes_direct: u64,
    /// Writes absorbed into the coalescing staging buffer.
    pub writes_coalesced: u64,
    /// Coalesced flushes (substrate messages carrying staged writes).
    pub coalesce_flushes: u64,
}

impl std::ops::AddAssign for ConnStats {
    fn add_assign(&mut self, o: ConnStats) {
        self.bytes_sent += o.bytes_sent;
        self.bytes_received += o.bytes_received;
        self.msgs_sent += o.msgs_sent;
        self.msgs_received += o.msgs_received;
        self.fcacks_sent += o.fcacks_sent;
        self.piggybacked_credits += o.piggybacked_credits;
        self.credit_stalls += o.credit_stalls;
        self.rendezvous += o.rendezvous;
        self.copies_avoided += o.copies_avoided;
        self.bytes_direct += o.bytes_direct;
        self.writes_coalesced += o.writes_coalesced;
        self.coalesce_flushes += o.coalesce_flushes;
    }
}

/// A data descriptor slot: handle + the stable buffer range it reposts to.
pub(crate) struct DataSlot {
    pub(crate) handle: RecvHandle,
    pub(crate) range: VirtRange,
}

/// Mutable per-connection state (single-process discipline: one simulated
/// process drives each side of a connection, so this mutex is never
/// contended — it exists for `Send`/`Sync` plumbing).
pub(crate) struct SockInner {
    // ---- transmit ----
    /// Credits available to send (§6.1).
    pub(crate) credits: u32,
    /// Pre-posted flow-control-ack descriptors, completion order (empty in
    /// unexpected-queue mode).
    pub(crate) fcack_handles: VecDeque<RecvHandle>,
    /// One-shot fc-ack descriptor a `poll` with write interest arms in
    /// unexpected-queue mode, where there is otherwise no completion to
    /// watch for a credit return. Consumed or unposted before the poll
    /// returns (see `disarm_poll_fcack`), so it never races the blocking
    /// write path's own post.
    pub(crate) poll_fcack: Option<RecvHandle>,
    /// Fire-and-forget sends not yet known complete.
    pub(crate) inflight_sends: Vec<SendHandle>,
    /// The connection request (client side) — checked for refusal.
    pub(crate) conn_send: Option<SendHandle>,
    // ---- receive (stream) ----
    /// Pre-posted data descriptors in completion order.
    pub(crate) data_slots: VecDeque<DataSlot>,
    /// Reassembled byte stream awaiting `read()` (chunks + total length).
    pub(crate) stream_chunks: VecDeque<bytes::Bytes>,
    pub(crate) stream_len: usize,
    /// Messages consumed since the last credit return.
    pub(crate) consumed: u32,
    // ---- small-write coalescing ----
    /// Staged sub-threshold writes awaiting one flush.
    pub(crate) coalesce_buf: Vec<u8>,
    /// Writes currently staged in `coalesce_buf`.
    pub(crate) coalesce_count: u64,
    /// When the oldest staged byte was written (deadline trigger).
    pub(crate) coalesce_since: Option<simnet::SimTime>,
    // ---- receive (datagram) ----
    pub(crate) rndv_handle: Option<RecvHandle>,
    pub(crate) dgram_data: Option<DataSlot>,
    /// Rendezvous grant received and not yet consumed by a sender.
    pub(crate) rndv_granted: bool,
    /// Rendezvous refusal (receiver buffer too small), with its limit.
    pub(crate) rndv_refused: Option<usize>,
    // ---- message ordering (fault robustness) ----
    /// Sequence number the next outgoing data message will carry.
    pub(crate) tx_seq: u32,
    /// Sequence number the next in-order incoming data message must carry.
    pub(crate) rx_next_seq: u32,
    /// Payloads that arrived ahead of sequence (fabric reordering let a
    /// later message bind a descriptor first), parked until the gap fills.
    pub(crate) rx_ooo: BTreeMap<u32, Bytes>,
    /// Total data messages the peer sent before closing (from `Close`);
    /// EOF is surfaced only once `rx_next_seq` reaches it.
    pub(crate) peer_final_seq: Option<u32>,
    // ---- statistics ----
    pub(crate) stats: ConnStats,
    // ---- control ----
    pub(crate) ctrl_handle: Option<RecvHandle>,
    pub(crate) peer_closed: bool,
    /// Set when a resource budget tripped mid-stream (reorder-buffer cap):
    /// the byte stream can no longer be delivered intact, so every
    /// subsequent operation fails with
    /// [`SockError::ResourceExhausted`]. Sticky until `close()`.
    pub(crate) poisoned: bool,
    /// Local write side shut down (half-close); reads keep working.
    pub(crate) write_closed: bool,
    pub(crate) closed: bool,
    // ---- buffer ranges ----
    pub(crate) send_range: VirtRange,
    pub(crate) fcack_range: VirtRange,
    pub(crate) ctrl_range: VirtRange,
    pub(crate) rndv_range: VirtRange,
    pub(crate) user_range: VirtRange,
}

impl SockInner {
    /// True once the peer closed AND every data message it announced has
    /// been delivered in order — only then may reads surface EOF. A peer
    /// that vanished without a `Close` (failed sends) has no announced
    /// count; EOF is immediate then.
    pub(crate) fn peer_drained(&self) -> bool {
        self.peer_closed && self.peer_final_seq.is_none_or(|f| self.rx_next_seq >= f)
    }

    /// Claim the next outgoing data-message sequence number.
    pub(crate) fn claim_tx_seq(&mut self) -> u32 {
        let s = self.tx_seq;
        self.tx_seq += 1;
        s
    }
}

/// One side of a substrate connection.
pub(crate) struct SockShared {
    pub(crate) proc_: Arc<ProcShared>,
    /// The connection id (always the client's — it names both directions).
    pub(crate) cid: u16,
    /// The remote station.
    pub(crate) peer: MacAddr,
    /// Server port the connection targets (diagnostics).
    pub(crate) port: u16,
    /// Whether this side initiated the connection. Determines which tag
    /// direction it posts receives on and which it sends with.
    pub(crate) is_client: bool,
    /// Stream or datagram (negotiated by the connection request).
    pub(crate) socket_type: SocketType,
    /// Effective credit count (client's N, mirrored by the acceptor).
    pub(crate) credits_max: u32,
    /// Effective temp-buffer size.
    pub(crate) buf_size: usize,
    pub(crate) inner: Mutex<SockInner>,
}

impl SockShared {
    /// Build and wire up one side of a connection. For the client side
    /// this happens at `connect()`; for the server side at `accept()`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn establish(
        proc_: &Arc<ProcShared>,
        ctx: &ProcessCtx,
        cid: u16,
        peer: MacAddr,
        port: u16,
        is_client: bool,
        socket_type: SocketType,
        credits_max: u32,
        buf_size: usize,
    ) -> SimResult<Arc<SockShared>> {
        let sock = Arc::new(SockShared {
            proc_: Arc::clone(proc_),
            cid,
            peer,
            port,
            is_client,
            socket_type,
            credits_max,
            buf_size,
            inner: Mutex::new(SockInner {
                credits: credits_max,
                fcack_handles: VecDeque::new(),
                poll_fcack: None,
                inflight_sends: Vec::new(),
                conn_send: None,
                data_slots: VecDeque::new(),
                stream_chunks: VecDeque::new(),
                stream_len: 0,
                consumed: 0,
                coalesce_buf: Vec::new(),
                coalesce_count: 0,
                coalesce_since: None,
                rndv_handle: None,
                dgram_data: None,
                rndv_granted: false,
                rndv_refused: None,
                tx_seq: 0,
                rx_next_seq: 0,
                rx_ooo: BTreeMap::new(),
                peer_final_seq: None,
                stats: ConnStats::default(),
                ctrl_handle: None,
                peer_closed: false,
                poisoned: false,
                write_closed: false,
                closed: false,
                send_range: proc_.alloc_range(buf_size + DATA_HEADER),
                fcack_range: proc_.alloc_range(HEADER),
                ctrl_range: proc_.alloc_range(HEADER),
                rndv_range: proc_.alloc_range(HEADER),
                user_range: proc_.alloc_range(buf_size.max(1 << 20) + DATA_HEADER),
            }),
        });
        proc_.state.lock().active.insert(cid, Arc::downgrade(&sock));

        let ep = &proc_.ep;
        let cfg = &proc_.cfg;
        // Control descriptor: close notifications, rendezvous acks.
        {
            let range = sock.inner.lock().ctrl_range;
            let h = ep.post_recv(ctx, sock.rx_ctrl_tag(), Some(peer), HEADER, range)?;
            sock.inner.lock().ctrl_handle = Some(h);
        }
        match socket_type {
            SocketType::Stream => {
                // N data descriptors into temp buffers (§5.2 eager w/ flow
                // control), each with its own stable staging range — posted
                // as one batch behind a single doorbell.
                let mut posts = Vec::with_capacity(credits_max as usize);
                for _ in 0..credits_max {
                    let range = proc_.alloc_range(buf_size + DATA_HEADER);
                    posts.push((
                        sock.rx_data_tag(),
                        Some(peer),
                        buf_size + DATA_HEADER,
                        range,
                    ));
                }
                let handles = ep.post_recv_batch(ctx, &posts)?;
                for (h, (_, _, _, range)) in handles.into_iter().zip(posts) {
                    sock.inner
                        .lock()
                        .data_slots
                        .push_back(DataSlot { handle: h, range });
                }
                // Flow-control-ack descriptors: pre-posted, or routed via
                // the unexpected queue (§6.4).
                let fcack_range = sock.inner.lock().fcack_range;
                let posts: Vec<_> = (0..cfg.fcack_descriptors())
                    .map(|_| (sock.rx_fcack_tag(), Some(peer), HEADER, fcack_range))
                    .collect();
                for h in ep.post_recv_batch(ctx, &posts)? {
                    sock.inner.lock().fcack_handles.push_back(h);
                }
                let quota = cfg.unexpected_quota();
                if quota > 0 {
                    proc_.adjust_unexpected(ctx, quota as isize)?;
                }
            }
            SocketType::Datagram => {
                // One rendezvous-request descriptor (§5.2's rendezvous).
                let range = sock.inner.lock().rndv_range;
                let h = ep.post_recv(ctx, sock.rx_rndv_tag(), Some(peer), HEADER, range)?;
                sock.inner.lock().rndv_handle = Some(h);
            }
        }
        Ok(sock)
    }

    /// Record a trace event stamped with this station and connection id.
    /// Compiles to nothing without the `trace` feature.
    pub(crate) fn trace(&self, ctx: &ProcessCtx, kind: EventKind, a: u64, b: u64) {
        if emp_trace::ENABLED {
            ctx.tracer().emit(
                ctx.now().nanos(),
                self.proc_.ep.addr().0,
                u32::from(self.cid),
                kind,
                a,
                b,
            );
        }
    }

    // --- tag helpers -------------------------------------------------
    // Receives match traffic flowing *towards* this side; sends carry the
    // opposite direction.

    pub(crate) fn rx_data_tag(&self) -> emp_proto::Tag {
        tags::data_tag(self.cid, !self.is_client)
    }

    pub(crate) fn tx_data_tag(&self) -> emp_proto::Tag {
        tags::data_tag(self.cid, self.is_client)
    }

    pub(crate) fn rx_fcack_tag(&self) -> emp_proto::Tag {
        tags::fcack_tag(self.cid, !self.is_client)
    }

    pub(crate) fn tx_fcack_tag(&self) -> emp_proto::Tag {
        tags::fcack_tag(self.cid, self.is_client)
    }

    pub(crate) fn rx_rndv_tag(&self) -> emp_proto::Tag {
        tags::rndv_tag(self.cid, !self.is_client)
    }

    pub(crate) fn tx_rndv_tag(&self) -> emp_proto::Tag {
        tags::rndv_tag(self.cid, self.is_client)
    }

    pub(crate) fn rx_ctrl_tag(&self) -> emp_proto::Tag {
        tags::ctrl_tag(self.cid, !self.is_client)
    }

    pub(crate) fn tx_ctrl_tag(&self) -> emp_proto::Tag {
        tags::ctrl_tag(self.cid, self.is_client)
    }

    /// Send a substrate message on this connection, returning the handle.
    pub(crate) fn send_msg(
        &self,
        ctx: &ProcessCtx,
        tag: emp_proto::Tag,
        msg: &Msg,
    ) -> SimResult<SendHandle> {
        let range = self.inner.lock().send_range;
        self.proc_
            .ep
            .post_send(ctx, self.peer, tag, msg.encode(), range)
    }

    /// Like [`Self::send_msg`], but the message may never park in the
    /// receiver's unexpected queue: an unmatched delivery is refused with
    /// an explicit NACK and the handle fails with its `refused()` flag
    /// set. Used for connection requests under a configured connect
    /// policy — a full backlog (or absent listener) answers
    /// deterministically instead of camping in the receiver's pool.
    pub(crate) fn send_msg_refusable(
        &self,
        ctx: &ProcessCtx,
        tag: emp_proto::Tag,
        msg: &Msg,
    ) -> SimResult<SendHandle> {
        let range = self.inner.lock().send_range;
        self.proc_
            .ep
            .post_send_refusable(ctx, self.peer, tag, msg.encode(), range)
    }

    /// Send a data message as a header + payload pair: the NIC gathers the
    /// two segments itself, so the payload is never assembled into a fresh
    /// host buffer. The wire bytes are identical to
    /// `send_msg(.., &Msg::Data { .. })`.
    pub(crate) fn send_data_msg(
        &self,
        ctx: &ProcessCtx,
        tag: emp_proto::Tag,
        piggyback: u16,
        seq: u32,
        payload: Bytes,
    ) -> SimResult<SendHandle> {
        let range = self.inner.lock().send_range;
        let header = Msg::data_header(piggyback, seq, payload.len());
        self.proc_
            .ep
            .post_send_split(ctx, self.peer, tag, header, payload, range)
    }

    /// Drain the control descriptor if it completed: handles `Close` and
    /// rendezvous grants/refusals, reposting the descriptor while the
    /// connection stays open.
    pub(crate) fn poll_ctrl(&self, ctx: &ProcessCtx) -> SimResult<Result<(), SockError>> {
        loop {
            let handle = {
                let i = self.inner.lock();
                match &i.ctrl_handle {
                    Some(h) if h.is_done() => h.clone(),
                    _ => return Ok(Ok(())),
                }
            };
            let Some(msg) = self.proc_.ep.wait_recv(ctx, &handle)? else {
                // Unposted during close.
                self.inner.lock().ctrl_handle = None;
                return Ok(Ok(()));
            };
            let parsed = match Msg::decode(&msg.data) {
                Ok(m) => m,
                Err(e) => return Ok(Err(e)),
            };
            let mut repost = true;
            match parsed {
                Msg::Close { final_seq } => {
                    let mut i = self.inner.lock();
                    i.peer_closed = true;
                    i.peer_final_seq = Some(final_seq);
                    repost = false;
                }
                Msg::RndvAck => {
                    self.inner.lock().rndv_granted = true;
                }
                Msg::RndvNak { limit } => {
                    self.inner.lock().rndv_refused = Some(limit as usize);
                }
                other => {
                    return Ok(Err(SockError::protocol(format!(
                        "unexpected control message {other:?}"
                    ))))
                }
            }
            if repost {
                let range = self.inner.lock().ctrl_range;
                let h = self.proc_.ep.post_recv(
                    ctx,
                    self.rx_ctrl_tag(),
                    Some(self.peer),
                    HEADER,
                    range,
                )?;
                self.inner.lock().ctrl_handle = Some(h);
            } else {
                self.inner.lock().ctrl_handle = None;
                return Ok(Ok(()));
            }
        }
    }

    /// The completion of the control channel. After close (local, or the
    /// peer's `Close` consumed) the channel is gone and no further control
    /// event can arrive, so a never-completing completion is returned:
    /// every waiter re-checks `peer_closed`/`closed`/`peer_drained()`
    /// before blocking, and an already-done completion here would spin
    /// such a waiter at one instant of simulated time while lost data is
    /// still retransmitting toward it.
    pub(crate) fn ctrl_completion(&self) -> Completion {
        let i = self.inner.lock();
        match &i.ctrl_handle {
            Some(h) => h.completion().clone(),
            None => Completion::new(),
        }
    }

    /// Prune completed fire-and-forget sends; report a failed one.
    pub(crate) fn reap_sends(&self) -> Result<(), SockError> {
        let mut i = self.inner.lock();
        let conn_status = i.conn_send.as_ref().and_then(|h| h.status());
        match conn_status {
            Some(false) => return Err(SockError::ConnectionRefused),
            Some(true) => i.conn_send = None,
            None => {}
        }
        let mut failed = false;
        i.inflight_sends.retain(|h| match h.status() {
            Some(true) => false,
            Some(false) => {
                failed = true;
                false
            }
            None => true,
        });
        if failed {
            // The peer stopped posting descriptors: treat as closed.
            i.peer_closed = true;
            return Err(SockError::PeerClosed);
        }
        Ok(())
    }

    /// Half-close: notify the peer that no more data will flow this way
    /// (its reads will see EOF after draining), while this side keeps
    /// reading. The shutdown(SHUT_WR) of the sockets API.
    pub(crate) fn shutdown_write(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let already = {
            let mut i = self.inner.lock();
            std::mem::replace(&mut i.write_closed, true) || i.closed
        };
        if already {
            return Ok(());
        }
        // Staged coalesced writes must precede the Close (which carries
        // the final sequence count); an undeliverable flush is moot.
        let _ = self.flush_coalesced(ctx)?;
        let (peer_closed, final_seq) = {
            let i = self.inner.lock();
            (i.peer_closed, i.tx_seq)
        };
        if !peer_closed {
            let h = self.send_msg(ctx, self.tx_ctrl_tag(), &Msg::Close { final_seq })?;
            self.inner.lock().inflight_sends.push(h);
        }
        Ok(())
    }

    /// Tear down this side: notify the peer, explicitly unpost every
    /// descriptor (§5.3), release the unexpected-queue quota and recycle
    /// the connection id.
    pub(crate) fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let already = {
            let mut i = self.inner.lock();
            std::mem::replace(&mut i.closed, true)
        };
        if already {
            return Ok(());
        }
        // As in shutdown_write: staged writes go out before the Close.
        let _ = self.flush_coalesced(ctx)?;
        let (peer_closed, already_shut, final_seq) = {
            let i = self.inner.lock();
            (i.peer_closed, i.write_closed, i.tx_seq)
        };
        if !peer_closed && !already_shut {
            let h = self.send_msg(ctx, self.tx_ctrl_tag(), &Msg::Close { final_seq })?;
            self.inner.lock().inflight_sends.push(h);
        }
        // Unpost everything still on the NIC, recycling the buffers.
        let (handles, ranges) = {
            let mut i = self.inner.lock();
            let mut v: Vec<RecvHandle> = Vec::new();
            let mut r: Vec<VirtRange> = vec![
                i.send_range,
                i.fcack_range,
                i.ctrl_range,
                i.rndv_range,
                i.user_range,
            ];
            for slot in i.data_slots.drain(..) {
                v.push(slot.handle);
                r.push(slot.range);
            }
            v.extend(i.fcack_handles.drain(..));
            v.extend(i.poll_fcack.take());
            v.extend(i.rndv_handle.take());
            v.extend(i.ctrl_handle.take());
            if let Some(slot) = i.dgram_data.take() {
                v.push(slot.handle);
            }
            (v, r)
        };
        for h in handles {
            if !h.is_done() {
                self.proc_.ep.unpost_recv(ctx, &h)?;
            }
        }
        for r in ranges {
            self.proc_.free_range(r);
        }
        if self.socket_type == SocketType::Stream {
            let quota = self.proc_.cfg.unexpected_quota();
            if quota > 0 {
                self.proc_.adjust_unexpected(ctx, -(quota as isize))?;
            }
        }
        self.proc_.free_cid(self.cid);
        Ok(())
    }

    /// Would `read()` return without blocking?
    pub(crate) fn readable_now(&self) -> bool {
        let i = self.inner.lock();
        if i.stream_len > 0 || i.peer_drained() || i.closed || i.poisoned {
            return true;
        }
        if let Some(front) = i.data_slots.front() {
            if front.handle.is_done() {
                return true;
            }
        }
        if let Some(d) = &i.dgram_data {
            if d.handle.is_done() {
                return true;
            }
        }
        if let Some(r) = &i.rndv_handle {
            if r.is_done() {
                return true;
            }
        }
        false
    }

    /// Completions a `select()` should watch for this connection.
    pub(crate) fn watch_completions(&self) -> Vec<Completion> {
        let i = self.inner.lock();
        let mut v = Vec::new();
        if let Some(front) = i.data_slots.front() {
            v.push(front.handle.completion().clone());
        }
        if let Some(d) = &i.dgram_data {
            v.push(d.handle.completion().clone());
        }
        if let Some(r) = &i.rndv_handle {
            v.push(r.completion().clone());
        }
        if let Some(c) = &i.ctrl_handle {
            v.push(c.completion().clone());
        }
        v
    }

    /// Block until any of `watched` fires. With the ack-starvation
    /// watchdog armed ([`crate::SubstrateConfig::peer_gone_after`]), a wait
    /// that hears nothing from the peer for the configured patience fails
    /// with [`SockError::PeerGone`] instead of parking forever — the
    /// vanished-peer detection a production substrate needs (a crashed
    /// process never sends `Close`). Every call re-arms the full patience,
    /// so any completion progress resets the watchdog.
    pub(crate) fn wait_watched(
        &self,
        ctx: &ProcessCtx,
        watched: &[&Completion],
    ) -> SimResult<Result<(), SockError>> {
        let Some(patience) = self.proc_.cfg.peer_gone_after else {
            wait_any(ctx, watched)?;
            return Ok(Ok(()));
        };
        let timer = Completion::new();
        let t2 = timer.clone();
        ctx.schedule_after(patience, move |s| t2.complete(s));
        let mut all: Vec<&Completion> = Vec::with_capacity(watched.len() + 1);
        all.extend_from_slice(watched);
        all.push(&timer);
        wait_any(ctx, &all)?;
        if watched.iter().any(|c| c.is_done()) {
            Ok(Ok(()))
        } else {
            Ok(Err(SockError::PeerGone))
        }
    }

    /// Block until either the given completion or the control channel
    /// fires, then drain control.
    pub(crate) fn wait_data_or_ctrl(
        &self,
        ctx: &ProcessCtx,
        data: &Completion,
    ) -> SimResult<Result<(), SockError>> {
        self.wait_data_ctrl_or(ctx, data, None)
    }

    /// [`Self::wait_data_or_ctrl`] with an optional extra completion in
    /// the watch set — a deadline timer, typically. The caller checks the
    /// extra completion itself after waking.
    pub(crate) fn wait_data_ctrl_or(
        &self,
        ctx: &ProcessCtx,
        data: &Completion,
        extra: Option<&Completion>,
    ) -> SimResult<Result<(), SockError>> {
        let ctrl = self.ctrl_completion();
        let mut watched: Vec<&Completion> = vec![data, &ctrl];
        if let Some(t) = extra {
            watched.push(t);
        }
        if let Err(e) = self.wait_watched(ctx, &watched)? {
            return Ok(Err(e));
        }
        self.poll_ctrl(ctx)
    }
}
