//! Datagram sockets: data streaming disabled (§6.2).
//!
//! Message boundaries are preserved and delivery is zero-copy: `recv()`
//! posts a descriptor pointing at the user buffer, so small messages land
//! directly (the 28.5 µs path). Messages beyond one frame's worth use the
//! §5.2 rendezvous — request, grant, data — which also means the deadlock
//! of Figure 7 is reproducible here by design: two peers that both send
//! large messages before either receives will block forever ("the
//! responsibility to avoid a deadlock lies on the user").

use bytes::Bytes;
use simnet::emp_trace::EventKind;
use simnet::ProcessCtx;

use crate::conn::{DataSlot, SockShared};
use crate::error::SockError;
use crate::proto::{Msg, DATA_HEADER, HEADER};
use crate::stream::{ok_or_return, OpResult};

impl SockShared {
    /// Send one datagram. Small messages go eagerly (EMP retransmission
    /// covers the no-descriptor race); large ones rendezvous.
    pub(crate) fn dgram_send(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        self.trace(ctx, EventKind::SockWriteStart, data.len() as u64, 0);
        ctx.delay(self.proc_.cfg.dgram_overhead)?;
        ok_or_return!(self.reap_sends());
        {
            let i = self.inner.lock();
            if i.closed || i.write_closed {
                return Ok(Err(SockError::Closed));
            }
            // A received Close may be a half-close; writes flow until
            // sends actually fail (see `check_writable`'s note).
        }
        if data.len() <= self.proc_.cfg.dgram_eager_max {
            let msg = Msg::Data {
                piggyback: 0,
                seq: self.inner.lock().claim_tx_seq(),
                payload: Bytes::copy_from_slice(data),
            };
            let h = self.send_msg(ctx, self.tx_data_tag(), &msg)?;
            {
                let mut i = self.inner.lock();
                i.stats.bytes_sent += data.len() as u64;
                i.stats.msgs_sent += 1;
                i.inflight_sends.push(h);
            }
            return Ok(Ok(data.len()));
        }
        // Rendezvous: announce, await the grant, then send.
        self.trace(ctx, EventKind::RndvRequest, data.len() as u64, 0);
        let req = self.send_msg(
            ctx,
            self.tx_rndv_tag(),
            &Msg::RndvReq {
                size: data.len() as u32,
            },
        )?;
        self.inner.lock().inflight_sends.push(req);
        loop {
            {
                let mut i = self.inner.lock();
                if let Some(limit) = i.rndv_refused.take() {
                    return Ok(Err(SockError::MessageTooBig {
                        size: data.len(),
                        limit,
                    }));
                }
                if i.rndv_granted {
                    i.rndv_granted = false;
                    break;
                }
                if i.peer_closed {
                    return Ok(Err(SockError::PeerClosed));
                }
                if i.closed {
                    return Ok(Err(SockError::Closed));
                }
            }
            let ctrl = self.ctrl_completion();
            // Watchdog-aware wait: a peer that crashes between the request
            // and the grant must not hang the sender forever.
            ok_or_return!(self.wait_watched(ctx, &[&ctrl])?);
            ok_or_return!(self.poll_ctrl(ctx)?);
        }
        self.trace(ctx, EventKind::RndvData, data.len() as u64, 0);
        let msg = Msg::Data {
            piggyback: 0,
            seq: self.inner.lock().claim_tx_seq(),
            payload: Bytes::copy_from_slice(data),
        };
        let h = self.send_msg(ctx, self.tx_data_tag(), &msg)?;
        // Rendezvous sends are synchronous: the receiver's descriptor is
        // posted, so this completes without retransmission.
        let acked = self.proc_.ep.wait_send(ctx, &h)?;
        if !acked {
            self.inner.lock().peer_closed = true;
            return Ok(Err(SockError::PeerClosed));
        }
        {
            let mut i = self.inner.lock();
            i.stats.bytes_sent += data.len() as u64;
            i.stats.msgs_sent += 1;
            i.stats.rendezvous += 1;
        }
        Ok(Ok(data.len()))
    }

    /// Receive one whole datagram of up to `max` bytes, zero-copy into the
    /// (simulated) user buffer. Empty bytes = peer closed. Datagrams are
    /// delivered in send order: a message that overtook an earlier one on
    /// a reordering fabric parks in the reorder buffer until the gap fills.
    pub(crate) fn dgram_recv(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        ctx.delay(self.proc_.cfg.dgram_overhead)?;
        loop {
            // 0. Serve the next-in-order datagram if it already arrived
            // (ahead of sequence, parked by a previous iteration).
            let parked = {
                let mut i = self.inner.lock();
                if i.closed {
                    return Ok(Err(SockError::Closed));
                }
                let next = i.rx_next_seq;
                match i.rx_ooo.remove(&next) {
                    Some(p) => {
                        i.rx_next_seq += 1;
                        i.stats.bytes_received += p.len() as u64;
                        i.stats.msgs_received += 1;
                        Some(p)
                    }
                    None => None,
                }
            };
            if let Some(payload) = parked {
                self.trace(ctx, EventKind::SockReadEnd, payload.len() as u64, 0);
                return Ok(Ok(payload));
            }
            // 1. Post the user-buffer descriptor if none is outstanding.
            if self.inner.lock().dgram_data.is_none() {
                let range = self.inner.lock().user_range;
                let handle = self.proc_.ep.post_recv(
                    ctx,
                    self.rx_data_tag(),
                    Some(self.peer),
                    max + DATA_HEADER,
                    range,
                )?;
                self.inner.lock().dgram_data = Some(DataSlot { handle, range });
            }
            // 2. Data landed?
            let data_done = {
                let i = self.inner.lock();
                i.dgram_data.as_ref().is_some_and(|d| d.handle.is_done())
            };
            if data_done {
                let slot = self.inner.lock().dgram_data.take().expect("checked");
                let Some(msg) = self.proc_.ep.wait_recv(ctx, &slot.handle)? else {
                    return Ok(Err(SockError::Closed));
                };
                let parsed = ok_or_return!(Msg::decode(&msg.data));
                let Msg::Data { seq, payload, .. } = parsed else {
                    return Ok(Err(SockError::protocol("non-data message on data tag")));
                };
                let deliver = {
                    let mut i = self.inner.lock();
                    if seq == i.rx_next_seq {
                        i.rx_next_seq += 1;
                        i.stats.bytes_received += payload.len() as u64;
                        i.stats.msgs_received += 1;
                        true
                    } else {
                        if seq > i.rx_next_seq {
                            i.rx_ooo.insert(seq, payload.clone());
                        }
                        false
                    }
                };
                if deliver {
                    self.trace(ctx, EventKind::SockReadEnd, payload.len() as u64, 0);
                    return Ok(Ok(payload));
                }
                // Out of order: repost (top of loop) and keep waiting for
                // the gap message, which EMP is still retransmitting.
                continue;
            }
            // 3. Rendezvous request?
            let rndv_done = {
                let i = self.inner.lock();
                i.rndv_handle.as_ref().is_some_and(|h| h.is_done())
            };
            if rndv_done {
                ok_or_return!(self.serve_rndv_request(ctx, max)?);
                continue;
            }
            // 4. Peer closed and every announced datagram delivered?
            {
                let i = self.inner.lock();
                if i.peer_drained() {
                    return Ok(Ok(Bytes::new()));
                }
            }
            // 5. Block on data, rendezvous request, or control (with the
            // ack-starvation watchdog when configured).
            let (data_c, rndv_c) = {
                let i = self.inner.lock();
                (
                    i.dgram_data
                        .as_ref()
                        .map(|d| d.handle.completion().clone())
                        .expect("posted above"),
                    i.rndv_handle.as_ref().map(|h| h.completion().clone()),
                )
            };
            let ctrl = self.ctrl_completion();
            let mut watch = vec![&data_c, &ctrl];
            if let Some(r) = &rndv_c {
                watch.push(r);
            }
            ok_or_return!(self.wait_watched(ctx, &watch)?);
            ok_or_return!(self.poll_ctrl(ctx)?);
        }
    }

    /// Nonblocking datagram send. Eager-sized messages are fire-and-forget
    /// already, so they go out as the blocking path would; larger messages
    /// need the §5.2 rendezvous round trip, which cannot complete without
    /// parking — those return [`SockError::Invalid`] (use the blocking
    /// `write` for rendezvous-sized datagrams).
    pub(crate) fn dgram_try_send(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        if data.len() > self.proc_.cfg.dgram_eager_max {
            return Ok(Err(SockError::Invalid));
        }
        self.dgram_send(ctx, data)
    }

    /// Nonblocking datagram receive: serve a parked or landed datagram,
    /// answer pending rendezvous requests, post the user-buffer descriptor
    /// so a later poll has something to wake on, and report
    /// [`SockError::WouldBlock`] when nothing is deliverable yet.
    pub(crate) fn dgram_try_recv(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        ctx.delay(self.proc_.cfg.dgram_overhead)?;
        loop {
            let parked = {
                let mut i = self.inner.lock();
                if i.closed {
                    return Ok(Err(SockError::Closed));
                }
                let next = i.rx_next_seq;
                match i.rx_ooo.remove(&next) {
                    Some(p) => {
                        i.rx_next_seq += 1;
                        i.stats.bytes_received += p.len() as u64;
                        i.stats.msgs_received += 1;
                        Some(p)
                    }
                    None => None,
                }
            };
            if let Some(payload) = parked {
                self.trace(ctx, EventKind::SockReadEnd, payload.len() as u64, 0);
                return Ok(Ok(payload));
            }
            if self.inner.lock().dgram_data.is_none() {
                let range = self.inner.lock().user_range;
                let handle = self.proc_.ep.post_recv(
                    ctx,
                    self.rx_data_tag(),
                    Some(self.peer),
                    max + DATA_HEADER,
                    range,
                )?;
                self.inner.lock().dgram_data = Some(DataSlot { handle, range });
            }
            let data_done = {
                let i = self.inner.lock();
                i.dgram_data.as_ref().is_some_and(|d| d.handle.is_done())
            };
            if data_done {
                let slot = self.inner.lock().dgram_data.take().expect("checked");
                let Some(msg) = self.proc_.ep.wait_recv(ctx, &slot.handle)? else {
                    return Ok(Err(SockError::Closed));
                };
                let parsed = ok_or_return!(Msg::decode(&msg.data));
                let Msg::Data { seq, payload, .. } = parsed else {
                    return Ok(Err(SockError::protocol("non-data message on data tag")));
                };
                let deliver = {
                    let mut i = self.inner.lock();
                    if seq == i.rx_next_seq {
                        i.rx_next_seq += 1;
                        i.stats.bytes_received += payload.len() as u64;
                        i.stats.msgs_received += 1;
                        true
                    } else {
                        if seq > i.rx_next_seq {
                            i.rx_ooo.insert(seq, payload.clone());
                        }
                        false
                    }
                };
                if deliver {
                    self.trace(ctx, EventKind::SockReadEnd, payload.len() as u64, 0);
                    return Ok(Ok(payload));
                }
                continue;
            }
            let rndv_done = {
                let i = self.inner.lock();
                i.rndv_handle.as_ref().is_some_and(|h| h.is_done())
            };
            if rndv_done {
                ok_or_return!(self.serve_rndv_request(ctx, max)?);
                continue;
            }
            // Drain a close notification a poll may not have consumed yet.
            ok_or_return!(self.poll_ctrl(ctx)?);
            {
                let i = self.inner.lock();
                if i.peer_drained() {
                    return Ok(Ok(Bytes::new()));
                }
                let ctrl_pending = i.ctrl_handle.as_ref().is_some_and(|h| h.is_done());
                let data_landed = i.dgram_data.as_ref().is_some_and(|d| d.handle.is_done());
                if !ctrl_pending && !data_landed {
                    return Ok(Err(SockError::WouldBlock));
                }
            }
        }
    }

    /// Answer a rendezvous request while a receive of capacity `max` is
    /// posted: grant if it fits, refuse otherwise; repost the request
    /// descriptor either way.
    fn serve_rndv_request(&self, ctx: &ProcessCtx, max: usize) -> OpResult<()> {
        let handle = self
            .inner
            .lock()
            .rndv_handle
            .take()
            .expect("caller checked rndv handle");
        let Some(msg) = self.proc_.ep.wait_recv(ctx, &handle)? else {
            return Ok(Ok(()));
        };
        let parsed = ok_or_return!(Msg::decode(&msg.data));
        let Msg::RndvReq { size } = parsed else {
            return Ok(Err(SockError::protocol(
                "non-rendezvous message on rendezvous tag",
            )));
        };
        // Repost the request descriptor for the next sender (§5.2: "posts
        // two descriptors - one for the expected data message and the
        // other for the next request").
        let range = self.inner.lock().rndv_range;
        let new_handle =
            self.proc_
                .ep
                .post_recv(ctx, self.rx_rndv_tag(), Some(self.peer), HEADER, range)?;
        self.inner.lock().rndv_handle = Some(new_handle);
        let reply = if size as usize <= max {
            self.trace(ctx, EventKind::RndvAck, u64::from(size), 0);
            Msg::RndvAck
        } else {
            Msg::RndvNak { limit: max as u32 }
        };
        let h = self.send_msg(ctx, self.tx_ctrl_tag(), &reply)?;
        self.inner.lock().inflight_sends.push(h);
        Ok(Ok(()))
    }
}
