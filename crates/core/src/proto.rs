//! Substrate message formats, carried as EMP message payloads.
//!
//! Every substrate message starts with an 8-byte header (kind, flags,
//! a 16-bit argument, a 32-bit argument); data messages append the user
//! payload. Encoding is explicit — this is the real wire format of the
//! substrate, exercised by every benchmark byte.

use bytes::{BufMut, Bytes, BytesMut};

use crate::config::SocketType;
use crate::error::SockError;

/// Bytes of substrate header preceding any payload.
pub const HEADER: usize = 8;

/// Bytes preceding the user payload of a data message: the common header
/// plus the 32-bit per-connection sequence number that lets the receiver
/// restore message order when the fabric reorders (injected faults; the
/// paper's fabric never does).
pub const DATA_HEADER: usize = HEADER + 4;

/// Largest user payload of an eager datagram: one EMP frame's worth after
/// the substrate data header, so small datagrams stay single-frame (the
/// 28.5 µs path of §7.1).
pub const MAX_EAGER_DGRAM: usize = emp_proto::MAX_CHUNK - DATA_HEADER;

const KIND_DATA: u8 = 1;
const KIND_FCACK: u8 = 2;
const KIND_CONN_REQ: u8 = 3;
const KIND_RNDV_REQ: u8 = 4;
const KIND_RNDV_ACK: u8 = 5;
const KIND_CLOSE: u8 = 6;
const KIND_RNDV_NAK: u8 = 7;

/// A substrate message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// User data with piggy-backed credit return (§6.1).
    Data {
        /// Credits returned to the receiver-of-this-message's send side.
        piggyback: u16,
        /// Per-connection, per-direction data-message sequence number.
        /// EMP preserves order *within* a message; under injected fabric
        /// reordering, consecutive messages on the same tag can still bind
        /// descriptors out of order, and this is what puts them back.
        seq: u32,
        /// The user bytes.
        payload: Bytes,
    },
    /// Explicit flow-control acknowledgment returning `credits` credits.
    FcAck {
        /// Credits returned.
        credits: u16,
    },
    /// Connection request (§5.1 "Data Message Exchange"): carries what
    /// TCP's SYN carries — who is connecting — plus the parameters the
    /// receive side needs to mirror.
    ConnReq {
        /// Client's connection id (names the connection in both
        /// directions' tags).
        cid: u16,
        /// Destination port.
        port: u16,
        /// Stream or datagram.
        socket_type: SocketType,
        /// Sender's credit count N.
        credits: u16,
        /// Sender's temp-buffer size.
        buf_size: u32,
    },
    /// Rendezvous request: "I want to send `size` bytes" (§5.2).
    RndvReq {
        /// Message size in bytes.
        size: u32,
    },
    /// Rendezvous grant: "descriptor posted, go ahead".
    RndvAck,
    /// Rendezvous refusal: the receiver's posted buffer is smaller than
    /// the announced message.
    RndvNak {
        /// What the receiver could take.
        limit: u32,
    },
    /// Orderly close notification (§5.3). Control rides a different lane
    /// than data, so under loss it can overtake in-flight (retransmitting)
    /// data messages; `final_seq` tells the receiver how many data
    /// messages the closer sent in total, so EOF is only surfaced once
    /// every one of them has been delivered.
    Close {
        /// Count of data messages sent on this connection before closing
        /// (i.e. one past the last sequence number used).
        final_seq: u32,
    },
}

impl Msg {
    /// Serialize to the wire form handed to EMP.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER);
        match self {
            Msg::Data {
                piggyback,
                seq,
                payload,
            } => {
                b.put_u8(KIND_DATA);
                b.put_u8(0);
                b.put_u16_le(*piggyback);
                b.put_u32_le(payload.len() as u32);
                b.put_u32_le(*seq);
                b.extend_from_slice(payload);
            }
            Msg::FcAck { credits } => {
                b.put_u8(KIND_FCACK);
                b.put_u8(0);
                b.put_u16_le(*credits);
                b.put_u32_le(0);
            }
            Msg::ConnReq {
                cid,
                port,
                socket_type,
                credits,
                buf_size,
            } => {
                b.put_u8(KIND_CONN_REQ);
                b.put_u8(match socket_type {
                    SocketType::Stream => 0,
                    SocketType::Datagram => 1,
                });
                b.put_u16_le(*cid);
                b.put_u32_le(*buf_size);
                b.put_u16_le(*port);
                b.put_u16_le(*credits);
            }
            Msg::RndvReq { size } => {
                b.put_u8(KIND_RNDV_REQ);
                b.put_u8(0);
                b.put_u16_le(0);
                b.put_u32_le(*size);
            }
            Msg::RndvAck => {
                b.put_u8(KIND_RNDV_ACK);
                b.put_u8(0);
                b.put_u16_le(0);
                b.put_u32_le(0);
            }
            Msg::RndvNak { limit } => {
                b.put_u8(KIND_RNDV_NAK);
                b.put_u8(0);
                b.put_u16_le(0);
                b.put_u32_le(*limit);
            }
            Msg::Close { final_seq } => {
                b.put_u8(KIND_CLOSE);
                b.put_u8(0);
                b.put_u16_le(0);
                b.put_u32_le(*final_seq);
            }
        }
        b.freeze()
    }

    /// The header bytes of a data message alone — the wire form of
    /// `Msg::Data` is exactly `data_header(..) ++ payload`, which lets the
    /// send path hand header and payload to the NIC as separate segments
    /// instead of assembling (copying) them into one buffer.
    pub fn data_header(piggyback: u16, seq: u32, payload_len: usize) -> Bytes {
        let mut b = BytesMut::with_capacity(DATA_HEADER);
        b.put_u8(KIND_DATA);
        b.put_u8(0);
        b.put_u16_le(piggyback);
        b.put_u32_le(payload_len as u32);
        b.put_u32_le(seq);
        b.freeze()
    }

    /// Parse a wire message.
    pub fn decode(raw: &Bytes) -> Result<Msg, SockError> {
        if raw.len() < HEADER {
            return Err(SockError::protocol("message shorter than header"));
        }
        let kind = raw[0];
        let arg16 = u16::from_le_bytes([raw[2], raw[3]]);
        let arg32 = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
        match kind {
            KIND_DATA => {
                let len = arg32 as usize;
                if raw.len() < DATA_HEADER + len {
                    return Err(SockError::protocol("data message truncated"));
                }
                let seq = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]);
                Ok(Msg::Data {
                    piggyback: arg16,
                    seq,
                    payload: raw.slice(DATA_HEADER..DATA_HEADER + len),
                })
            }
            KIND_FCACK => Ok(Msg::FcAck { credits: arg16 }),
            KIND_CONN_REQ => {
                if raw.len() < HEADER + 4 {
                    return Err(SockError::protocol("conn request truncated"));
                }
                let port = u16::from_le_bytes([raw[8], raw[9]]);
                let credits = u16::from_le_bytes([raw[10], raw[11]]);
                Ok(Msg::ConnReq {
                    cid: arg16,
                    port,
                    socket_type: if raw[1] == 0 {
                        SocketType::Stream
                    } else {
                        SocketType::Datagram
                    },
                    credits,
                    buf_size: arg32,
                })
            }
            KIND_RNDV_REQ => Ok(Msg::RndvReq { size: arg32 }),
            KIND_RNDV_ACK => Ok(Msg::RndvAck),
            KIND_RNDV_NAK => Ok(Msg::RndvNak { limit: arg32 }),
            KIND_CLOSE => Ok(Msg::Close { final_seq: arg32 }),
            other => Err(SockError::protocol(format!("unknown message kind {other}"))),
        }
    }

    /// Total wire length (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER
            + match self {
                Msg::Data { payload, .. } => 4 + payload.len(),
                Msg::ConnReq { .. } => 4,
                _ => 0,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let enc = m.encode();
        assert_eq!(enc.len(), m.wire_len());
        let dec = Msg::decode(&enc).expect("decodes");
        assert_eq!(dec, m);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Msg::Data {
            piggyback: 7,
            seq: 42,
            payload: Bytes::from_static(b"payload bytes"),
        });
        roundtrip(Msg::Data {
            piggyback: 0,
            seq: u32::MAX,
            payload: Bytes::new(),
        });
        roundtrip(Msg::FcAck { credits: 16 });
        roundtrip(Msg::ConnReq {
            cid: 0x1234,
            port: 80,
            socket_type: SocketType::Stream,
            credits: 32,
            buf_size: 65536,
        });
        roundtrip(Msg::ConnReq {
            cid: 1,
            port: 0xFFE,
            socket_type: SocketType::Datagram,
            credits: 4,
            buf_size: 1024,
        });
        roundtrip(Msg::RndvReq { size: 1 << 20 });
        roundtrip(Msg::RndvAck);
        roundtrip(Msg::RndvNak { limit: 4096 });
        roundtrip(Msg::Close { final_seq: 0 });
        roundtrip(Msg::Close { final_seq: 9_999 });
    }

    #[test]
    fn data_header_plus_payload_equals_encode() {
        for payload in [
            Bytes::new(),
            Bytes::from_static(b"x"),
            Bytes::from(vec![0xA5u8; 3000]),
        ] {
            let m = Msg::Data {
                piggyback: 9,
                seq: 77,
                payload: payload.clone(),
            };
            let mut split = Msg::data_header(9, 77, payload.len()).to_vec();
            split.extend_from_slice(&payload);
            assert_eq!(Bytes::from(split), m.encode());
        }
    }

    #[test]
    fn truncated_messages_rejected() {
        assert!(Msg::decode(&Bytes::from_static(b"abc")).is_err());
        let mut enc = Msg::Data {
            piggyback: 0,
            seq: 3,
            payload: Bytes::from_static(b"0123456789"),
        }
        .encode()
        .to_vec();
        // Cut into the payload (header + seq survive, bytes do not).
        enc.truncate(DATA_HEADER + 4);
        assert!(Msg::decode(&Bytes::from(enc)).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let raw = Bytes::from(vec![99u8, 0, 0, 0, 0, 0, 0, 0]);
        assert!(Msg::decode(&raw).is_err());
    }

    #[test]
    fn eager_dgram_fits_one_emp_frame() {
        let m = Msg::Data {
            piggyback: 0,
            seq: 0,
            payload: Bytes::from(vec![0u8; MAX_EAGER_DGRAM]),
        };
        assert_eq!(m.wire_len(), emp_proto::MAX_CHUNK);
    }
}
