//! The public sockets API of the substrate.
//!
//! [`EmpSockets`] is one process's sockets library instance; it hands out
//! [`Listener`]s and [`Connection`]s whose `read`/`write`/`close` behave
//! like their BSD counterparts — while everything underneath runs on EMP
//! in user space, kernel-free after buffer registration.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use emp_proto::{EmpEndpoint, RecvHandle};
use parking_lot::Mutex;
use simnet::{wait_any, MacAddr, ProcessCtx, SimAccess, SimAccessExt, SimDuration, SimResult};

use crate::config::{SocketType, SubstrateConfig};
use crate::conn::{ProcShared, SockShared};
use crate::error::SockError;
use crate::proto::{Msg, HEADER};
use crate::stream::{ok_or_return, OpResult};
use crate::tags;

/// A remote (or local) substrate address: station + port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SockAddr {
    /// Station address.
    pub host: MacAddr,
    /// Port (must fit the substrate's tag encoding, `<= tags::MAX_PORT`).
    pub port: u16,
}

impl SockAddr {
    /// Construct from host and port.
    pub fn new(host: MacAddr, port: u16) -> Self {
        SockAddr { host, port }
    }
}

/// One process's sockets-over-EMP library instance.
#[derive(Clone)]
pub struct EmpSockets {
    proc_: Arc<ProcShared>,
}

impl EmpSockets {
    /// Bind the substrate to a node's EMP endpoint with the given
    /// configuration.
    pub fn new(ep: EmpEndpoint, cfg: SubstrateConfig) -> Self {
        EmpSockets {
            proc_: ProcShared::new(ep, cfg),
        }
    }

    /// This station's address.
    pub fn local_host(&self) -> MacAddr {
        self.proc_.ep.addr()
    }

    /// The substrate configuration in force.
    pub fn cfg(&self) -> &SubstrateConfig {
        &self.proc_.cfg
    }

    /// The EMP endpoint underneath (stats, NIC access).
    pub fn endpoint(&self) -> &EmpEndpoint {
        &self.proc_.ep
    }

    /// Passive open: pre-post `backlog` connection-request descriptors on
    /// `port` (§5.1: the backlog "limits the number of connections that
    /// can be simultaneously waiting for an acceptance").
    pub fn listen(&self, ctx: &ProcessCtx, port: u16, backlog: usize) -> OpResult<Listener> {
        self.proc_.ensure_init(ctx)?;
        if port > tags::MAX_PORT {
            return Ok(Err(SockError::AddrInUse));
        }
        {
            let mut st = self.proc_.state.lock();
            if st.listeners.contains_key(&port) {
                return Ok(Err(SockError::AddrInUse));
            }
            st.listeners.insert(port, ());
        }
        let range = self.proc_.alloc_range(HEADER + 4);
        // The whole backlog goes down behind one doorbell.
        let posts = vec![(tags::conn_tag(port), None, HEADER + 4, range); backlog.max(1)];
        let pending: VecDeque<RecvHandle> = self.proc_.ep.post_recv_batch(ctx, &posts)?.into();
        Ok(Ok(Listener {
            proc_: Arc::clone(&self.proc_),
            port,
            pending: Arc::new(Mutex::new(pending)),
            range,
        }))
    }

    /// Active open: allocate a connection id, wire up the local side, and
    /// send the connection-request message. With no connect policy
    /// configured it returns immediately — the application may start
    /// writing data right away (§7.4 relies on the request/data
    /// pipelining); a refused connection surfaces as
    /// [`SockError::ConnectionRefused`] on a later operation. With a
    /// policy ([`SubstrateConfig::with_connect_timeout`] or
    /// [`SubstrateConfig::with_connect_retry`]) the call blocks and fails
    /// with a *typed* outcome: [`SockError::ConnectionRefused`] when the
    /// receiver positively refused the request (full backlog, no
    /// listener), [`SockError::Timeout`] when nobody answered within the
    /// policy's budget, [`SockError::ResourceExhausted`] past the local
    /// connection budget.
    pub fn connect(&self, ctx: &ProcessCtx, addr: SockAddr) -> OpResult<Connection> {
        self.connect_inner(ctx, addr, None)
    }

    /// [`Self::connect`] bounded by `deadline` for this one call,
    /// overriding (or standing in for) the configured policy: connects
    /// under [`crate::RetryPolicy::from_deadline`].
    pub fn connect_deadline(
        &self,
        ctx: &ProcessCtx,
        addr: SockAddr,
        deadline: SimDuration,
    ) -> OpResult<Connection> {
        self.connect_inner(
            ctx,
            addr,
            Some(crate::config::RetryPolicy::from_deadline(deadline)),
        )
    }

    fn connect_inner(
        &self,
        ctx: &ProcessCtx,
        addr: SockAddr,
        policy_override: Option<crate::config::RetryPolicy>,
    ) -> OpResult<Connection> {
        self.proc_.ensure_init(ctx)?;
        if addr.port > tags::MAX_PORT {
            return Ok(Err(SockError::AddrInUse));
        }
        let cid = ok_or_return!(self.proc_.alloc_cid());
        let cfg = &self.proc_.cfg;
        let sock = SockShared::establish(
            &self.proc_,
            ctx,
            cid,
            addr.host,
            addr.port,
            true, // we are the client
            cfg.socket_type,
            cfg.credits,
            cfg.temp_buf_size,
        )?;
        let req = Msg::ConnReq {
            cid,
            port: addr.port,
            socket_type: cfg.socket_type,
            credits: cfg.credits as u16,
            buf_size: cfg.temp_buf_size as u32,
        };
        let policy = policy_override.or_else(|| cfg.effective_connect_policy());
        // A blocking connect sends the request *refusably*: it must never
        // park in the receiver's unexpected queue — a full backlog (or no
        // listener at all) answers with a NACK that surfaces here as a
        // deterministic `ConnectionRefused`. A non-blocking connect keeps
        // the parking behaviour: hiding the request round trip behind
        // pipelined data (§7.4) depends on it.
        let h = if policy.is_some() {
            sock.send_msg_refusable(ctx, tags::conn_tag(addr.port), &req)?
        } else {
            sock.send_msg(ctx, tags::conn_tag(addr.port), &req)?
        };
        sock.inner.lock().conn_send = Some(h);
        if let Some(policy) = policy {
            ok_or_return!(self.await_connect(ctx, &sock, &req, addr, policy)?);
        }
        Ok(Ok(Connection { sock }))
    }

    /// The blocking half of `connect()` under a [`crate::RetryPolicy`]:
    /// wait for the connection request to be acknowledged, resending with
    /// the policy's (jittered) exponential backoff when EMP reports
    /// definitive failure, and give up with a typed error — refusal and
    /// silence are distinct outcomes. On failure the half-built
    /// connection is torn down (descriptors unposted, cid recycled)
    /// before the error is surfaced, so a refused connect leaks nothing.
    fn await_connect(
        &self,
        ctx: &ProcessCtx,
        sock: &Arc<SockShared>,
        req: &Msg,
        addr: SockAddr,
        policy: crate::config::RetryPolicy,
    ) -> OpResult<()> {
        let give_up_at = ctx.now() + policy.deadline;
        // Jitter seed: stable per (station, connection), so concurrent
        // connects from one storm decorrelate while the simulation stays
        // reproducible.
        let seed = (u64::from(self.proc_.ep.addr().0) << 16) | u64::from(sock.cid);
        let mut attempt: u32 = 1; // the initial request counts
        let failure = loop {
            let handle = {
                let i = sock.inner.lock();
                i.conn_send.clone().expect("request just sent")
            };
            match handle.status() {
                Some(true) => break None,
                Some(false) if handle.refused() => {
                    // The receiver positively refused the request: full
                    // backlog or nobody listening on the port. Retrying
                    // immediately would re-create the overload that
                    // refused us — surface it.
                    break Some(SockError::ConnectionRefused);
                }
                Some(false) => {
                    // EMP gave up without an answer (dead station,
                    // exhausted link retries): back off and resend while
                    // the policy allows.
                    if attempt >= policy.max_attempts {
                        break Some(SockError::Timeout);
                    }
                    let backoff = policy.backoff(attempt, seed);
                    if ctx.now() + backoff >= give_up_at {
                        break Some(SockError::Timeout);
                    }
                    ctx.delay(backoff)?;
                    attempt += 1;
                    let h = sock.send_msg_refusable(ctx, tags::conn_tag(addr.port), req)?;
                    sock.inner.lock().conn_send = Some(h);
                }
                None => {
                    let timer = simnet::Completion::new();
                    let t2 = timer.clone();
                    ctx.schedule_at(give_up_at, move |s| t2.complete(s));
                    wait_any(ctx, &[handle.completion(), &timer])?;
                    if !handle.is_done() {
                        break Some(SockError::Timeout);
                    }
                }
            }
        };
        if let Some(err) = failure {
            let series = match err {
                SockError::ConnectionRefused => "sock.connects_refused",
                _ => "sock.connects_timedout",
            };
            ctx.telemetry().counter(series).add(1);
            // Suppress the goodbye: there is nobody to say it to.
            sock.inner.lock().peer_closed = true;
            sock.close(ctx)?;
            return Ok(Err(err));
        }
        Ok(Ok(()))
    }

    /// Substrate-wide counters: every live connection's [`crate::conn::ConnStats`]
    /// summed, plus table sizes. Closed connections leave the active table,
    /// so this reflects the substrate's current working set.
    pub fn stats(&self) -> SubstrateStats {
        let (socks, listeners) = {
            let st = self.proc_.state.lock();
            let socks: Vec<Arc<SockShared>> = st
                .active
                .values()
                .filter_map(std::sync::Weak::upgrade)
                .collect();
            (socks, st.listeners.len())
        };
        let mut totals = crate::conn::ConnStats::default();
        for s in &socks {
            totals += s.inner.lock().stats;
        }
        SubstrateStats {
            connections: socks.len(),
            listeners,
            totals,
        }
    }

    /// `select()` for readability across connections: blocks until one
    /// would not block on `read`, returning its index. A one-shot
    /// [`crate::PollSet`] with `READABLE` interests underneath; an empty
    /// set is [`SockError::Invalid`] (it could never wake), not a panic.
    ///
    /// This is the readiness way to multiplex connections in one
    /// process; the completion model ([`crate::ring`]) is the other —
    /// there the application submits the reads themselves over
    /// registered buffers and waits on completions, never on readiness.
    pub fn select_readable(&self, ctx: &ProcessCtx, conns: &[&Connection]) -> OpResult<usize> {
        if conns.is_empty() {
            return Ok(Err(SockError::Invalid));
        }
        let mut set = crate::poll::PollSet::new();
        for (idx, c) in conns.iter().enumerate() {
            set.register_conn(c, idx, simnet::Interest::READABLE);
        }
        let events = ok_or_return!(set.poll(ctx, None)?);
        Ok(Ok(events[0].token))
    }
}

/// A listening substrate socket.
pub struct Listener {
    proc_: Arc<ProcShared>,
    port: u16,
    /// Pre-posted connection descriptors, completion order (shared with
    /// [`crate::PollSet`] registrations).
    pub(crate) pending: Arc<Mutex<VecDeque<RecvHandle>>>,
    range: hostsim::VirtRange,
}

impl Listener {
    /// The listening port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Block for the next connection request and build the server side of
    /// the connection (§5.1: "the substrate blocks on the completion of
    /// the descriptor at the head of the backlog queue").
    pub fn accept(&self, ctx: &ProcessCtx) -> OpResult<Connection> {
        let handle = {
            let mut p = self.pending.lock();
            match p.pop_front() {
                Some(h) => h,
                // The listener was closed (backlog drained).
                None => return Ok(Err(SockError::Closed)),
            }
        };
        // Keep the backlog depth constant.
        let replacement = self.proc_.ep.post_recv(
            ctx,
            tags::conn_tag(self.port),
            None,
            HEADER + 4,
            self.range,
        )?;
        self.pending.lock().push_back(replacement);

        let Some(msg) = self.proc_.ep.wait_recv(ctx, &handle)? else {
            return Ok(Err(SockError::Closed));
        };
        let parsed = ok_or_return!(Msg::decode(&msg.data));
        let Msg::ConnReq {
            cid,
            port,
            socket_type,
            credits,
            buf_size,
        } = parsed
        else {
            return Ok(Err(SockError::protocol(
                "non-connection message on a listen tag",
            )));
        };
        debug_assert_eq!(port, self.port);
        let sock = SockShared::establish(
            &self.proc_,
            ctx,
            cid,
            msg.src,
            port,
            false, // accepted side: we are the server
            socket_type,
            u32::from(credits),
            buf_size as usize,
        )?;
        Ok(Ok(Connection { sock }))
    }

    /// [`Self::accept`] bounded by `deadline`: blocks for the next
    /// connection request, failing with [`SockError::Timeout`] if none
    /// arrives in time. The bounded-patience accept a server's event loop
    /// uses to interleave admission with housekeeping (idle reaping).
    pub fn accept_deadline(&self, ctx: &ProcessCtx, deadline: SimDuration) -> OpResult<Connection> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_accept(ctx)? {
                Ok(c) => return Ok(Ok(c)),
                Err(SockError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
            let mut set = crate::poll::PollSet::new();
            set.register_listener(self, 0, simnet::Interest::ACCEPTABLE);
            let events = ok_or_return!(set.poll(ctx, Some(give_up_at.since(now)))?);
            if events.is_empty() {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
        }
    }

    /// Nonblocking accept: build the connection when a request already
    /// landed at the head of the backlog; [`SockError::WouldBlock`] when
    /// an `accept` would park, [`SockError::Closed`] on a closed
    /// listener. Poll with [`simnet::Interest::ACCEPTABLE`] to learn when
    /// to retry.
    pub fn try_accept(&self, ctx: &ProcessCtx) -> OpResult<Connection> {
        let front_done = {
            let p = self.pending.lock();
            match p.front() {
                Some(h) => h.is_done(),
                None => return Ok(Err(SockError::Closed)),
            }
        };
        if !front_done {
            return Ok(Err(SockError::WouldBlock));
        }
        // The head descriptor is complete: `accept` will not block.
        self.accept(ctx)
    }

    /// Stop listening: unpost the backlog descriptors and free the port.
    pub fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let handles: Vec<RecvHandle> = self.pending.lock().drain(..).collect();
        for h in handles {
            if !h.is_done() {
                self.proc_.ep.unpost_recv(ctx, &h)?;
            }
        }
        self.proc_.state.lock().listeners.remove(&self.port);
        Ok(())
    }
}

/// An established substrate connection (one side).
pub struct Connection {
    pub(crate) sock: Arc<SockShared>,
}

impl Connection {
    /// The remote station.
    pub fn peer(&self) -> MacAddr {
        self.sock.peer
    }

    /// The connection id (diagnostics).
    pub fn cid(&self) -> u16 {
        self.sock.cid
    }

    /// The server port this connection targets.
    pub fn port(&self) -> u16 {
        self.sock.port
    }

    /// The negotiated credit count N.
    pub fn credits(&self) -> u32 {
        self.sock.credits_max
    }

    /// Stream or datagram.
    pub fn socket_type(&self) -> SocketType {
        self.sock.socket_type
    }

    /// Write the whole buffer.
    ///
    /// * Stream sockets: fragments into temp-buffer-sized messages behind
    ///   credit-based flow control; blocking, zero-copy on the send side.
    /// * Datagram sockets: one message with preserved boundaries; eager if
    ///   it fits a frame, rendezvous otherwise.
    pub fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_write(ctx, data),
            SocketType::Datagram => self.sock.dgram_send(ctx, data),
        }
    }

    /// Read up to `max` bytes.
    ///
    /// * Stream sockets: any available prefix (TCP-style partial reads);
    ///   empty bytes = EOF after the peer closed.
    /// * Datagram sockets: exactly one whole message (which must fit
    ///   `max`); empty bytes = peer closed.
    pub fn read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_read(ctx, max),
            SocketType::Datagram => self.sock.dgram_recv(ctx, max),
        }
    }

    /// Read exactly `n` bytes (stream sockets); `None` on premature EOF.
    pub fn read_exact(&self, ctx: &ProcessCtx, n: usize) -> OpResult<Option<Bytes>> {
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let chunk = ok_or_return!(self.read(ctx, n - buf.len())?);
            if chunk.is_empty() {
                return Ok(Ok(None));
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Ok(Some(Bytes::from(buf))))
    }

    /// [`Self::read`] bounded by `deadline`: serves data the moment any
    /// is available, and fails with [`SockError::Timeout`] if none lands
    /// in time. A slow peer stops costing the caller unbounded patience.
    pub fn read_deadline(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        deadline: SimDuration,
    ) -> OpResult<Bytes> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_read(ctx, max)? {
                Ok(b) => return Ok(Ok(b)),
                Err(SockError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
            let mut set = crate::poll::PollSet::new();
            set.register_conn(self, 0, simnet::Interest::READABLE);
            let events = ok_or_return!(set.poll(ctx, Some(give_up_at.since(now)))?);
            if events.is_empty() {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
        }
    }

    /// [`Self::write`] bounded by `deadline`: accepts as many bytes as
    /// flow control allows the moment credits are available, and fails
    /// with [`SockError::Timeout`] if none free up in time — the
    /// per-operation form of the
    /// [`SubstrateConfig::with_write_stall_after`] detector. Returns the
    /// byte count accepted (possibly short, like a POSIX `write`).
    pub fn write_deadline(
        &self,
        ctx: &ProcessCtx,
        data: &[u8],
        deadline: SimDuration,
    ) -> OpResult<usize> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_write(ctx, data)? {
                Ok(n) => return Ok(Ok(n)),
                Err(SockError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
            let mut set = crate::poll::PollSet::new();
            set.register_conn(self, 0, simnet::Interest::WRITABLE);
            let events = ok_or_return!(set.poll(ctx, Some(give_up_at.since(now)))?);
            if events.is_empty() {
                ctx.telemetry().counter("sock.op_timeouts").add(1);
                return Ok(Err(SockError::Timeout));
            }
        }
    }

    /// Nonblocking write: accept what can be sent with the credits (or
    /// eager budget) in hand right now.
    ///
    /// * Stream sockets: sends up to `data.len()` bytes as credits allow
    ///   and returns the count accepted; [`SockError::WouldBlock`] when
    ///   the credits are exhausted before any byte is taken.
    /// * Datagram sockets: eager-sized messages go out as usual (they are
    ///   fire-and-forget); rendezvous-sized ones are
    ///   [`SockError::Invalid`] — the round trip cannot complete without
    ///   blocking.
    pub fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> OpResult<usize> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_try_write(ctx, data),
            SocketType::Datagram => self.sock.dgram_try_send(ctx, data),
        }
    }

    /// Nonblocking read: serve whatever is buffered or already landed;
    /// [`SockError::WouldBlock`] when a blocking `read` would park. Empty
    /// bytes = EOF. Poll with [`simnet::Interest::READABLE`] to learn
    /// when to retry.
    pub fn try_read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_try_read(ctx, max),
            SocketType::Datagram => self.sock.dgram_try_recv(ctx, max),
        }
    }

    /// Nonblocking read for the completion-ring path: the destination is
    /// a registered buffer the application posted in advance, so the
    /// direct-delivery fast path is forced on (the §6.2 temp-buffer copy
    /// is skipped and counted in `copies_avoided`) regardless of the
    /// `direct_delivery` config knob. Stream sockets only.
    pub(crate) fn ring_try_read(&self, ctx: &ProcessCtx, max: usize) -> OpResult<Bytes> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_ring_try_read(ctx, max),
            SocketType::Datagram => self.sock.dgram_try_recv(ctx, max),
        }
    }

    /// Would `read` return without blocking?
    pub fn readable(&self) -> bool {
        self.sock.readable_now()
    }

    /// Would `write` make progress without blocking? True with stream
    /// credits in hand or in any error state (the write fails fast —
    /// POSIX `POLLOUT` semantics); always true for datagrams.
    pub fn writable(&self) -> bool {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.stream_writable_now(),
            SocketType::Datagram => true,
        }
    }

    /// Flush writes staged by small-write coalescing
    /// ([`SubstrateConfig::with_coalescing`]) as one substrate message,
    /// blocking for a credit if none is in hand. No-op when coalescing is
    /// off, nothing is staged, or on a datagram socket.
    pub fn flush(&self, ctx: &ProcessCtx) -> OpResult<()> {
        match self.sock.socket_type {
            SocketType::Stream => self.sock.flush_coalesced(ctx),
            SocketType::Datagram => Ok(Ok(())),
        }
    }

    /// Half-close the write side (`shutdown(SHUT_WR)`): the peer sees EOF
    /// after draining, while this side keeps reading. Useful for
    /// request/response protocols that signal end-of-request by shutdown.
    pub fn shutdown_write(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.sock.shutdown_write(ctx)
    }

    /// Orderly close: notify the peer and release every descriptor this
    /// connection holds (§5.3).
    pub fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.sock.close(ctx)
    }

    /// Per-connection substrate counters.
    pub fn stats(&self) -> crate::conn::ConnStats {
        self.sock.inner.lock().stats
    }

    /// Diagnostic: the posted data descriptors in queue order.
    pub fn debug_slots(&self) -> Vec<SlotDebug> {
        let i = self.sock.inner.lock();
        i.data_slots
            .iter()
            .map(|s| SlotDebug {
                desc_id: s.handle.id(),
                done: s.handle.is_done(),
            })
            .collect()
    }

    /// Diagnostic snapshot of the connection's receive/flow-control state.
    pub fn debug_state(&self) -> ConnDebugState {
        let i = self.sock.inner.lock();
        let done_slots = i.data_slots.iter().filter(|s| s.handle.is_done()).count();
        ConnDebugState {
            data_slots: i.data_slots.len(),
            done_slots,
            stream_len: i.stream_len,
            credits: i.credits,
            consumed: i.consumed,
            peer_closed: i.peer_closed,
            closed: i.closed,
        }
    }
}

/// Diagnostic view of one posted data descriptor (see
/// [`Connection::debug_slots`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotDebug {
    /// NIC descriptor id (`u64::MAX` marks a handle satisfied from the
    /// unexpected pool).
    pub desc_id: u64,
    /// Whether a message has already landed in this descriptor.
    pub done: bool,
}

/// Diagnostic snapshot of a connection's receive and flow-control state
/// (see [`Connection::debug_state`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnDebugState {
    /// Data descriptors currently posted.
    pub data_slots: usize,
    /// How many of those already completed.
    pub done_slots: usize,
    /// Bytes buffered in the reassembled stream awaiting `read()`.
    pub stream_len: usize,
    /// Send credits currently available (§6.1).
    pub credits: u32,
    /// Messages consumed since the last credit return.
    pub consumed: u32,
    /// Peer sent a close notification.
    pub peer_closed: bool,
    /// This side is closed.
    pub closed: bool,
}

/// Substrate-wide counter aggregate (see [`EmpSockets::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstrateStats {
    /// Live (not yet closed) connections in the active-socket table.
    pub connections: usize,
    /// Open listeners.
    pub listeners: usize,
    /// Sum of every live connection's [`crate::conn::ConnStats`].
    pub totals: crate::conn::ConnStats,
}
