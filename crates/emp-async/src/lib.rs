//! # emp-async — a deterministic, sim-driven async/await executor
//!
//! The modern front end for the paper's user-level sockets substrate:
//! `async fn` handlers over the readiness ([`simnet::readiness`]) and
//! completion ([`simnet::ring`]) layers, scheduled by a single-threaded
//! executor that runs *inside* one simulated process and is woken only by
//! simulation events — never by a wall clock or an OS reactor.
//!
//! ## How a wake travels
//!
//! 1. A leaf future finds its operation would block and registers its
//!    [`std::task::Waker`] with a simulation-side wake source:
//!    [`simnet::Completion::watch_waker`] (one-shot; readiness
//!    completions, timers, ring progress) or
//!    [`simnet::SimCondvar::watch_waker`] (multi-shot; the kernel stack's
//!    activity condvar).
//! 2. When the source fires — always from a deterministic simulation
//!    event — the waker pushes its task onto the executor's ready queue
//!    and completes the executor's *doorbell* [`simnet::Completion`],
//!    which schedules a process wake at the current simulated instant.
//! 3. The executor process resumes, polls every ready task to quiescence,
//!    then installs a fresh doorbell and parks again.
//!
//! Every step is driven by the engine's `(time, sequence)` event order,
//! so same-seed runs produce byte-identical task schedules: determinism
//! is inherited, not re-implemented.
//!
//! ## Cancellation contract
//!
//! Dropping a future *is* cancellation, and drops run with the process
//! context still installed (see [`with_ctx`]), so drop guards can reach
//! the stack to disarm poll descriptors or cancel submitted ring ops.
//! Executor teardown via [`LocalExecutor::run`] drains naturally; tasks
//! that outlive an abandoned executor are dropped without a context and
//! must use [`try_with_ctx`] in their guards.

#![warn(missing_docs)]

mod executor;
mod timer;

pub use executor::{
    block_on, try_with_ctx, with_ctx, JoinHandle, LocalExecutor, SpawnHandleExt, Spawner,
};
pub use timer::{sleep, sleep_until, Sleep};

use simnet::{Completion, ProcessCtx, SimResult};

/// Await a [`simnet::Completion`]: resolves when it completes, immediately
/// if it already has. The bridge from one-shot simulation events (connect
/// results, helper-process handoffs, timers) into a future.
pub async fn wait_for(c: &Completion) {
    std::future::poll_fn(|cx| {
        if c.watch_waker(cx.waker()) {
            std::task::Poll::Pending
        } else {
            std::task::Poll::Ready(())
        }
    })
    .await
}

/// Yield to the executor once: resolves on its second poll. Lets a busy
/// task give siblings a turn without consuming simulated time.
pub async fn yield_now() {
    let mut yielded = false;
    std::future::poll_fn(move |cx| {
        if yielded {
            std::task::Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            std::task::Poll::Pending
        }
    })
    .await
}

/// Bound `fut` by a simulated-time budget: `Some(output)` when it
/// resolves in time, `None` when the deadline fires first. The losing
/// future is dropped — which under the cancellation contract *is* its
/// cancellation, drop guards included. This is how the facade's
/// deadline'd operations (PR 7's typed timeouts) surface in async code.
pub async fn timeout<T>(
    dur: simnet::SimDuration,
    fut: impl std::future::Future<Output = T>,
) -> Option<T> {
    use std::future::Future;
    let mut fut = std::pin::pin!(fut);
    let mut deadline = std::pin::pin!(sleep(dur));
    std::future::poll_fn(move |cx| {
        if let std::task::Poll::Ready(v) = fut.as_mut().poll(cx) {
            return std::task::Poll::Ready(Some(v));
        }
        if deadline.as_mut().poll(cx).is_ready() {
            return std::task::Poll::Ready(None);
        }
        std::task::Poll::Pending
    })
    .await
}

/// Run a blocking closure on a helper simulated process and await its
/// result — the escape hatch for operations that only exist in blocking
/// form (the substrate's policy-driven `connect`, for example). The
/// closure runs on its own process, so the executor keeps scheduling
/// other tasks while it parks.
pub async fn spawn_blocking<T, F>(name: impl Into<String>, f: F) -> SimResult<T>
where
    T: Send + 'static,
    F: FnOnce(&ProcessCtx) -> SimResult<T> + Send + 'static,
{
    let slot: std::sync::Arc<parking_lot::Mutex<Option<SimResult<T>>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(None));
    let done = Completion::new();
    let (slot2, done2) = (std::sync::Arc::clone(&slot), done.clone());
    with_ctx(|ctx| {
        ctx.spawn(name, move |helper| {
            *slot2.lock() = Some(f(helper));
            done2.complete(helper);
            Ok(())
        })
    });
    wait_for(&done).await;
    let result = slot.lock().take();
    result.expect("helper stored its result")
}
